"""Figs. 3/4/5 bench: the analytical resource/power model.

The model itself is what regenerates three paper figures; the benchmark
times a full Table-I sweep of it (it must stay interactive-fast since
experiment harnesses call it in loops) and prints the three artifacts.
"""

from repro.core.config import QTAccelConfig
from repro.device.power import power_mw
from repro.device.resources import estimate_resources
from repro.experiments import run_experiment
from repro.experiments.cases import STATE_SIZES

from .conftest import emit_once


def full_sweep():
    out = []
    for cfg in (QTAccelConfig.qlearning(), QTAccelConfig.sarsa()):
        for s in STATE_SIZES:
            rep = estimate_resources(s, 8, cfg)
            out.append((rep.bram_blocks, rep.dsp, power_mw(rep)))
    return out

def test_resource_model_sweep(benchmark):
    rows = benchmark(full_sweep)
    assert len(rows) == 2 * len(STATE_SIZES)
    # Constant-DSP claim across the whole sweep
    assert {dsp for _, dsp, _ in rows} == {4}
    for exp in ("fig3", "fig4", "fig5"):
        emit_once(exp, run_experiment(exp, quick=True).format())


def test_fig4_peak_allocation(benchmark):
    """Block allocation of the largest table set (the 78 % point)."""
    cfg = QTAccelConfig.qlearning()
    rep = benchmark(estimate_resources, 262144, 8, cfg)
    assert rep.bram_blocks == 2176
