"""Cache-model bench: the trace-driven hierarchy replay (table2_cache).

Times the set-associative L1/L2/L3 replay of the dict baseline's access
pattern at small and large working sets, and prints the cache analysis
of Table II's CPU decline.
"""

import pytest

from repro.envs.gridworld import GridWorld
from repro.experiments import run_experiment
from repro.experiments.cases import grid_side
from repro.reference.cache_model import CacheHierarchy, qlearning_trace_cycles

from .conftest import emit_once

TRACE = 6_000


@pytest.mark.parametrize("num_states", [64, 16384, 262144])
def test_trace_replay(benchmark, num_states):
    mdp = GridWorld.empty(grid_side(num_states), 4).to_mdp()

    def run():
        return qlearning_trace_cycles(mdp, TRACE, hierarchy=CacheHierarchy.paper_i5())

    cycles = benchmark(run)
    benchmark.extra_info["mem_cycles_per_sample"] = round(cycles, 1)
    if num_states == 64:
        assert cycles < 100  # fully cache-resident
    if num_states == 262144:
        assert cycles > 200  # capacity misses bite
    emit_once("table2_cache", run_experiment("table2_cache", quick=True).format())
