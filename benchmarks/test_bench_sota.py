"""Fig. 7 / §VI-F bench: QTAccel vs the baseline design [11].

Times the baseline's behavioural simulator against QTAccel's functional
engine on the same workload (like-for-like sample processing), checks
the modelled resource/throughput ratios, and prints Fig. 7 plus the
scalability comparison.
"""

from repro.baseline import FsmQLearningAccelerator, baseline_multipliers
from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.envs.gridworld import GridWorld
from repro.experiments import run_experiment

from .conftest import emit_once

SAMPLES = 10_000


def test_baseline_behavioural(benchmark, grid16_mdp):
    cfg = QTAccelConfig.qlearning(seed=5)

    def run():
        acc = FsmQLearningAccelerator(grid16_mdp, cfg)
        acc.run(SAMPLES)
        return acc.stats

    stats = benchmark(run)
    assert stats.samples == SAMPLES
    benchmark.extra_info["fsm_cycles"] = stats.cycles
    emit_once("fig7", run_experiment("fig7", quick=True).format())
    emit_once("sota", run_experiment("sota", quick=True).format())


def test_qtaccel_same_workload(benchmark, grid16_mdp):
    cfg = QTAccelConfig.qlearning(seed=5)

    def run():
        sim = FunctionalSimulator(grid16_mdp, cfg)
        sim.run(SAMPLES)
        return sim.stats

    stats = benchmark(run)
    assert stats.samples == SAMPLES


def test_multiplier_scaling_model(benchmark):
    cases = [(12, 4), (12, 8), (56, 4), (56, 8), (132, 4)]
    rows = benchmark(lambda: [baseline_multipliers(s, a) for s, a in cases])
    assert rows == [48, 96, 224, 448, 528]
