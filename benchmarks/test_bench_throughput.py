"""Fig. 6 bench: cycle-accurate pipeline throughput.

Times the cycle-accurate simulator retiring samples for both algorithms,
verifies the one-sample-per-cycle property that Fig. 6's MS/s numbers
rest on, and prints the regenerated figure.  A final case re-runs the
pipeline under telemetry and leaves a profile JSON artifact (CI uploads
it; ``QTACCEL_TELEMETRY_DIR`` overrides the destination).
"""

import json
import os
import pathlib

import pytest

from repro.core.config import QTAccelConfig
from repro.core.pipeline import QTAccelPipeline
from repro.experiments import run_experiment

from .conftest import emit_once

SAMPLES = 5_000


@pytest.mark.parametrize("algorithm", ["qlearning", "sarsa"])
def test_cycle_pipeline_rate(benchmark, grid16_mdp, algorithm):
    preset = QTAccelConfig.qlearning if algorithm == "qlearning" else QTAccelConfig.sarsa
    cfg = preset(seed=11, qmax_mode="follow")

    def run():
        pipe = QTAccelPipeline(grid16_mdp, cfg)
        pipe.run(SAMPLES)
        return pipe.stats

    stats = benchmark(run)
    assert stats.cycles_per_sample < 1.01  # the paper's headline property
    benchmark.extra_info["cycles_per_sample"] = stats.cycles_per_sample
    benchmark.extra_info["modelled_msps_at_189MHz"] = 189.0 / stats.cycles_per_sample
    emit_once("fig6", run_experiment("fig6", quick=True).format())


def test_functional_engine_rate(benchmark, grid64_mdp):
    """The fast path that convergence studies run on."""
    from repro.core.functional import FunctionalSimulator

    cfg = QTAccelConfig.qlearning(seed=11)

    def run():
        sim = FunctionalSimulator(grid64_mdp, cfg)
        sim.run(SAMPLES)
        return sim.stats

    stats = benchmark(run)
    assert stats.samples == SAMPLES


def test_telemetry_profile_artifact(grid16_mdp):
    """Export the telemetry profile of one instrumented run as an artifact."""
    from repro.device.resources import estimate_resources
    from repro.telemetry import TelemetrySession, verify_paper_invariants

    cfg = QTAccelConfig.qlearning(seed=11)
    with TelemetrySession() as session:
        pipe = QTAccelPipeline(grid16_mdp, cfg)
        pipe.run(SAMPLES)
    verify_paper_invariants(pipe, samples=SAMPLES, runs=1)
    session.record_device(
        estimate_resources(grid16_mdp.num_states, grid16_mdp.num_actions, cfg)
    )

    out_dir = pathlib.Path(
        os.environ.get("QTACCEL_TELEMETRY_DIR", "benchmarks/_artifacts")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "bench_throughput.profile.json"
    session.export_profile(path)
    session.export_chrome_trace(out_dir / "bench_throughput.trace.json")

    # The same run feeds the bench trajectory: a perf snapshot derived
    # from the profile's deterministic facts, uploaded by CI alongside
    # the telemetry profile (works even under --benchmark-disable).
    from repro.perf.snapshot import snapshot_from_profile, write_snapshot

    snap_path = write_snapshot(
        snapshot_from_profile(session.profile(), source="experiment:bench_throughput"),
        out_dir / "bench_throughput.perf.json",
    )
    snap = json.loads(snap_path.read_text())
    assert snap["cases"]["pipe0"]["cycles_per_sample"] < 1.01

    data = json.loads(path.read_text())
    assert data["totals"]["retired"] == SAMPLES
    assert data["pipes"]["pipe0"]["stats"]["stall_cycles"] == 0
    assert data["device"]["clock_mhz"] > 0
