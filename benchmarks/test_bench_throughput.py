"""Fig. 6 bench: cycle-accurate pipeline throughput.

Times the cycle-accurate simulator retiring samples for both algorithms,
verifies the one-sample-per-cycle property that Fig. 6's MS/s numbers
rest on, and prints the regenerated figure.
"""

import pytest

from repro.core.config import QTAccelConfig
from repro.core.pipeline import QTAccelPipeline
from repro.experiments import run_experiment

from .conftest import emit_once

SAMPLES = 5_000


@pytest.mark.parametrize("algorithm", ["qlearning", "sarsa"])
def test_cycle_pipeline_rate(benchmark, grid16_mdp, algorithm):
    preset = QTAccelConfig.qlearning if algorithm == "qlearning" else QTAccelConfig.sarsa
    cfg = preset(seed=11, qmax_mode="follow")

    def run():
        pipe = QTAccelPipeline(grid16_mdp, cfg)
        pipe.run(SAMPLES)
        return pipe.stats

    stats = benchmark(run)
    assert stats.cycles_per_sample < 1.01  # the paper's headline property
    benchmark.extra_info["cycles_per_sample"] = stats.cycles_per_sample
    benchmark.extra_info["modelled_msps_at_189MHz"] = 189.0 / stats.cycles_per_sample
    emit_once("fig6", run_experiment("fig6", quick=True).format())


def test_functional_engine_rate(benchmark, grid64_mdp):
    """The fast path that convergence studies run on."""
    from repro.core.functional import FunctionalSimulator

    cfg = QTAccelConfig.qlearning(seed=11)

    def run():
        sim = FunctionalSimulator(grid64_mdp, cfg)
        sim.run(SAMPLES)
        return sim.stats

    stats = benchmark(run)
    assert stats.samples == SAMPLES
