"""Fleet bench: the vectorised batch engine vs the scalar engine.

Times K-agent fleets on the batch engine against K sequential scalar
runs (same trajectories, bit for bit), quantifying the vectorisation
win, and prints the fleet experiment.
"""

import numpy as np
import pytest

from repro.core.batch import BatchIndependentSimulator
from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.policies import PolicyDraws
from repro.envs.gridworld import GridWorld
from repro.experiments import run_experiment

from .conftest import emit_once

SAMPLES = 2_000
WORLD = GridWorld.empty(16, 4).to_mdp()


@pytest.mark.parametrize("agents", [16, 64, 256])
def test_batch_engine(benchmark, agents):
    cfg = QTAccelConfig.qlearning(seed=17)

    def run():
        sim = BatchIndependentSimulator(WORLD, cfg, num_agents=agents)
        sim.run(SAMPLES)
        return sim

    sim = benchmark(run)
    assert sim.stats.samples_per_agent >= SAMPLES
    benchmark.extra_info["agent_samples_per_sec"] = round(
        agents * SAMPLES / benchmark.stats.stats.mean
    )
    emit_once("fleet", run_experiment("fleet", quick=True).format())


def test_scalar_engine_same_work(benchmark):
    """The per-lane scalar equivalent of a 16-agent batch step."""
    cfg = QTAccelConfig.qlearning(seed=17)

    def run():
        sims = [
            FunctionalSimulator(WORLD, cfg, draws=PolicyDraws.from_config(cfg, salt=k))
            for k in range(16)
        ]
        for s in sims:
            s.run(SAMPLES)
        return sims

    sims = benchmark(run)
    # spot-check bit parity against one batch lane
    batch = BatchIndependentSimulator(WORLD, cfg, num_agents=16)
    batch.run(SAMPLES)
    assert np.array_equal(batch.q[3], sims[3].tables.q.data)
