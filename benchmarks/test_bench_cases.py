"""Table I bench: environment construction across the paper's case sizes.

Measures how fast the grid-world substrate builds the on-chip table
inputs (transition + reward tables) for each Table I case, and prints the
regenerated Table I.
"""

import pytest

from repro.envs.gridworld import GridWorld
from repro.experiments import run_experiment
from repro.experiments.cases import STATE_SIZES, grid_side

from .conftest import emit_once


@pytest.mark.parametrize("num_states", STATE_SIZES)
def test_grid_build(benchmark, num_states):
    side = grid_side(num_states)

    def build():
        return GridWorld.empty(side, 8).to_mdp()

    mdp = benchmark(build)
    assert mdp.num_states == num_states
    benchmark.extra_info["pairs"] = mdp.num_pairs
    emit_once("table1", run_experiment("table1", quick=True).format())


def test_table_quantisation(benchmark, grid64_mdp):
    """Loading the reward table = one bulk quantisation pass."""
    from repro.core.config import QTAccelConfig
    from repro.fixedpoint import ops

    cfg = QTAccelConfig.qlearning()
    raw = benchmark(ops.quantize_array, grid64_mdp.rewards, cfg.q_format)
    assert raw.shape == grid64_mdp.rewards.shape
