"""Figs. 8/9 bench: multi-agent deployments.

Times the state-sharing dual pipeline (cycle-accurate, shared dual-port
tables with collision arbitration) and the N-tile independent learners,
asserting the paper's throughput-scaling claims and printing both
figures' artifacts.
"""

import pytest

from repro.core.config import QTAccelConfig
from repro.core.multi_pipeline import IndependentPipelines, SharedPipelines
from repro.envs.gridworld import GridWorld
from repro.envs.multi_agent import partition_grid
from repro.experiments import run_experiment

from .conftest import emit_once

SAMPLES = 3_000


def test_shared_dual_pipeline(benchmark):
    mdp = GridWorld.empty(16, 4).to_mdp()
    cfg = QTAccelConfig.qlearning(seed=21)

    def run():
        sp = SharedPipelines(mdp, cfg)
        return sp.run(SAMPLES)

    stats = benchmark(run)
    assert stats.samples_per_cycle > 1.99  # the Fig. 8 doubling
    benchmark.extra_info["samples_per_cycle"] = stats.samples_per_cycle
    benchmark.extra_info["write_collisions"] = stats.write_collisions
    emit_once("fig8", run_experiment("fig8", quick=True).format())


@pytest.mark.parametrize("n_tiles", [1, 4, 16])
def test_independent_pipelines(benchmark, n_tiles):
    tiles = partition_grid(32, n_tiles, 4)
    cfg = QTAccelConfig.qlearning(seed=31)

    def run():
        pipes = IndependentPipelines(tiles, cfg)
        return pipes.run(SAMPLES)

    stats = benchmark(run)
    assert stats.samples == SAMPLES * n_tiles
    est = IndependentPipelines(tiles, cfg).throughput_estimate()
    benchmark.extra_info["model_aggregate_msps"] = round(est.msps, 1)
    emit_once("fig9", run_experiment("fig9", quick=True).format())
