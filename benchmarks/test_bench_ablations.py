"""Ablation benches: the design choices DESIGN.md calls out.

* hazard handling (forward/stall/stale) — cycle cost of each strategy on
  a hazard-heavy workload;
* Qmax maintenance (monotonic/follow/exact) — per-sample cost of each
  write-path rule;
* fixed-point word length — datapath kernel cost across widths.
"""

import pytest

from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.pipeline import QTAccelPipeline
from repro.envs.random_mdp import random_dense_mdp
from repro.experiments import run_experiment
from repro.fixedpoint.format import FxpFormat

from .conftest import emit_once

SAMPLES = 3_000
LOOPY = random_dense_mdp(64, 4, seed=42, self_loop_bias=0.6)


@pytest.mark.parametrize("mode", ["forward", "stall", "stale"])
def test_hazard_mode_cycle_cost(benchmark, mode):
    cfg = QTAccelConfig.qlearning(seed=43, hazard_mode=mode)

    def run():
        pipe = QTAccelPipeline(LOOPY, cfg)
        pipe.run(SAMPLES)
        return pipe.stats

    stats = benchmark(run)
    benchmark.extra_info["cycles_per_sample"] = round(stats.cycles_per_sample, 3)
    if mode == "forward":
        assert stats.cycles_per_sample < 1.01
    if mode == "stall":
        assert stats.cycles_per_sample > 1.5
    emit_once("ablation_hazards", run_experiment("ablation_hazards", quick=True).format())


@pytest.mark.parametrize("qmax_mode", ["monotonic", "follow", "exact"])
def test_qmax_mode_cost(benchmark, qmax_mode):
    cfg = QTAccelConfig.qlearning(seed=7, qmax_mode=qmax_mode)

    def run():
        sim = FunctionalSimulator(LOOPY, cfg)
        sim.run(SAMPLES)
        return sim.stats

    stats = benchmark(run)
    assert stats.samples == SAMPLES
    emit_once("ablation_qmax", run_experiment("ablation_qmax", quick=True).format())


@pytest.mark.parametrize("wordlen,frac", [(8, 2), (16, 6), (32, 20)])
def test_wordlen_datapath_cost(benchmark, wordlen, frac):
    fmt = FxpFormat(wordlen=wordlen, frac=frac)
    cfg = QTAccelConfig.qlearning(seed=7, q_format=fmt)

    def run():
        sim = FunctionalSimulator(LOOPY, cfg)
        sim.run(SAMPLES)
        return sim.stats

    stats = benchmark(run)
    assert stats.samples == SAMPLES
    emit_once("ablation_wordlen", run_experiment("ablation_wordlen", quick=True).format())
