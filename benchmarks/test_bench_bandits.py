"""§VII-B bench: bandit accelerators on the 5G channel scenario.

Times e-greedy and EXP3 round processing (including LFSR reward
synthesis and, for EXP3, the quantised probability-table resampling) and
prints the MAB artifact.
"""

import numpy as np
import pytest

from repro.core.bandit_accel import (
    EpsilonGreedyBanditAccelerator,
    Exp3Accelerator,
)
from repro.envs.bandits import channel_selection_env
from repro.experiments import run_experiment

from .conftest import emit_once

PULLS = 3_000


@pytest.mark.parametrize("arms", [4, 8, 16])
def test_egreedy_bandit(benchmark, arms):
    def run():
        env = channel_selection_env(arms, seed=7)
        acc = EpsilonGreedyBanditAccelerator(env, epsilon=0.1, seed=7)
        return acc.run(PULLS), env

    (res, env) = benchmark(run)
    late = res.chosen[PULLS // 2 :]
    benchmark.extra_info["late_best_arm_rate"] = float(np.mean(late == env.best_arm))
    emit_once("mab", run_experiment("mab", quick=True).format())


@pytest.mark.parametrize("arms", [4, 8, 16])
def test_exp3_bandit(benchmark, arms):
    def run():
        env = channel_selection_env(arms, seed=7)
        acc = Exp3Accelerator(env, gamma_exp=0.15, reward_range=(0.0, 8.0), seed=7)
        return acc.run(PULLS), acc

    (res, acc) = benchmark(run)
    p = acc.probabilities()
    assert p.sum() == pytest.approx(1.0)
    benchmark.extra_info["selection_cycles_per_sample"] = acc.selection_cycles
