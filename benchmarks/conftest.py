"""Shared fixtures and reporting helpers for the benchmark harness.

Every module regenerates one paper artifact (see DESIGN.md's experiment
index): the benchmark measures the real computation behind it, and the
artifact's rows are attached to the benchmark's ``extra_info`` and
printed once at the end of the session, so
``pytest benchmarks/ --benchmark-only`` reproduces the paper's tables
and figures as a side effect of timing them.

Timed sessions also feed the repo's bench trajectory: at session end
every benchmark's stats + ``extra_info`` are folded into a
``BENCH_<n>.json`` snapshot (schema ``qtaccel-bench/1``, same as
``python -m repro.perf run``) under ``$QTACCEL_BENCH_DIR`` (default
``benchmarks/_artifacts``), comparable with the perf sentinel.
"""

from __future__ import annotations

import os

import pytest

_printed: set[str] = set()


def pytest_sessionfinish(session, exitstatus):
    """Emit the timed benchmarks as one perf snapshot.

    Quiet no-op when nothing was timed (``--benchmark-disable`` runs
    keep their artifacts elsewhere — see test_bench_throughput's
    telemetry test).
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    from repro.perf.snapshot import (
        next_bench_path,
        snapshot_from_pytest_benchmarks,
        write_snapshot,
    )

    snapshot = snapshot_from_pytest_benchmarks(bench_session.benchmarks)
    if not snapshot["cases"]:
        return
    out_dir = os.environ.get("QTACCEL_BENCH_DIR", "benchmarks/_artifacts")
    path = write_snapshot(snapshot, next_bench_path(out_dir))
    print(f"\n[bench snapshot: {path}]")


def emit_once(exp_id: str, text: str) -> None:
    """Print a regenerated artifact exactly once per session."""
    if exp_id not in _printed:
        _printed.add(exp_id)
        print()
        print(text)


@pytest.fixture(scope="session")
def grid16_mdp():
    from repro.envs.gridworld import GridWorld

    return GridWorld.empty(16, 8).to_mdp()


@pytest.fixture(scope="session")
def grid64_mdp():
    from repro.envs.gridworld import GridWorld

    return GridWorld.empty(64, 8).to_mdp()
