"""Shared fixtures and reporting helpers for the benchmark harness.

Every module regenerates one paper artifact (see DESIGN.md's experiment
index): the benchmark measures the real computation behind it, and the
artifact's rows are attached to the benchmark's ``extra_info`` and
printed once at the end of the session, so
``pytest benchmarks/ --benchmark-only`` reproduces the paper's tables
and figures as a side effect of timing them.
"""

from __future__ import annotations

import pytest

_printed: set[str] = set()


def emit_once(exp_id: str, text: str) -> None:
    """Print a regenerated artifact exactly once per session."""
    if exp_id not in _printed:
        _printed.add(exp_id)
        print()
        print(text)


@pytest.fixture(scope="session")
def grid16_mdp():
    from repro.envs.gridworld import GridWorld

    return GridWorld.empty(16, 8).to_mdp()


@pytest.fixture(scope="session")
def grid64_mdp():
    from repro.envs.gridworld import GridWorld

    return GridWorld.empty(64, 8).to_mdp()
