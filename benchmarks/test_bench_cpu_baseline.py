"""Table II bench: the paper's CPU baseline, measured for real.

This is the one benchmark whose *absolute* number is the artifact: the
nested-dict Python Q-Learning of §VI-E timed on this machine, across the
Table II sizes, against the modelled FPGA throughput.
"""

import pytest

from repro.core.config import QTAccelConfig
from repro.device.resources import estimate_resources
from repro.device.timing import throughput
from repro.envs.gridworld import GridWorld
from repro.experiments import run_experiment
from repro.experiments.cases import grid_side
from repro.reference.qlearning import DictQLearning

from .conftest import emit_once

SAMPLES = 30_000


@pytest.mark.parametrize("num_states", [64, 1024, 16384, 262144])
@pytest.mark.parametrize("num_actions", [4, 8])
def test_dict_qlearning_cpu(benchmark, num_states, num_actions):
    mdp = GridWorld.empty(grid_side(num_states), num_actions).to_mdp()
    learner = DictQLearning(mdp, seed=1)
    learner.run(2_000)  # warm the dict

    benchmark.pedantic(learner.run, args=(SAMPLES,), rounds=3, iterations=1)
    # samples/s from the benchmark's own stats
    sps = SAMPLES / benchmark.stats.stats.mean
    fpga = throughput(
        estimate_resources(num_states, num_actions, QTAccelConfig.qlearning())
    ).samples_per_sec
    benchmark.extra_info["cpu_samples_per_sec"] = round(sps)
    benchmark.extra_info["fpga_model_samples_per_sec"] = round(fpga)
    benchmark.extra_info["speedup"] = round(fpga / sps)
    assert fpga / sps > 50  # the orders-of-magnitude Table II gap
    emit_once("table2", run_experiment("table2", quick=True).format())
