#!/usr/bin/env python3
"""Quickstart: train a Q-Learning agent on QTAccel and inspect the design.

Builds the paper's grid-world application, runs the accelerator's fast
functional engine until the policy converges, then asks the device model
what this design would cost on the paper's FPGA.

Run:  python examples/quickstart.py
"""

from repro.core import QLearningAccelerator
from repro.envs import GridWorld

def main() -> None:
    # An 8x8 world with random obstacles; +255 at the goal, -255 on walls.
    world = GridWorld.random(8, num_actions=4, obstacle_density=0.15, seed=2)
    mdp = world.to_mdp()
    print(f"environment: {world}")
    print(world.render())
    print()

    acc = QLearningAccelerator(mdp, alpha=0.5, gamma=0.9, seed=7)
    acc.run(200_000)

    report = acc.convergence()
    print(f"after {acc.samples_processed:,} samples "
          f"({acc.episodes_completed:,} episodes): {report}")
    print()
    print("learned greedy policy:")
    print(world.render(acc.policy()))
    print()

    res = acc.resource_report()
    thr = acc.throughput_estimate()
    print(res.format())
    print(f"modelled clock {thr.clock_mhz:.1f} MHz -> {thr.msps:.1f} MS/s "
          f"at {thr.cycles_per_sample:.3f} cycles/sample; "
          f"~{acc.power_estimate_mw():.0f} mW")


if __name__ == "__main__":
    main()
