#!/usr/bin/env python3
"""Design-space exploration with the calibrated device models.

Answers the questions a deployer of QTAccel would ask before synthesis:

* How large a world fits each device, with and without URAM spill?
* What does the Q-word width buy (precision vs BRAM vs policy quality)?
* Where does the clock/throughput land across the whole Table I sweep?
* How does the design compare against the prior FSM-per-pair design?

Run:  python examples/design_space_exploration.py
"""

from repro.baseline import baseline_max_states, baseline_throughput_msps
from repro.core import QTAccelConfig, make_engine
from repro.core.metrics import convergence_report
from repro.device import (
    PARTS,
    estimate_resources,
    max_supported_states,
    power_mw,
    throughput,
)
from repro.envs import GridWorld
from repro.fixedpoint import FxpFormat


def capacity_table() -> None:
    print("-- capacity: largest |S| per device (4 actions) --")
    cfg = QTAccelConfig.qlearning()
    print(f"{'device':12s} {'QTAccel (BRAM)':>16s} {'QTAccel (+URAM)':>16s} "
          f"{'baseline [11]':>14s}")
    for name, part in PARTS.items():
        qt = max_supported_states(4, cfg, part=part)
        qt_uram = (
            max_supported_states(4, cfg, part=part, spill_to_uram=True)
            if part.uram
            else qt
        )
        base = baseline_max_states(4, part=part)
        print(f"{name:12s} {qt:16,d} {qt_uram:16,d} {base:14,d}")
    print(f"baseline throughput (any size): {baseline_throughput_msps():.1f} MS/s")
    print()


def sweep_table() -> None:
    print("-- Table I sweep on xcvu13p (8 actions) --")
    cfg = QTAccelConfig.qlearning()
    print(f"{'|S|':>8s} {'BRAM %':>8s} {'clock MHz':>10s} {'MS/s':>7s} {'mW':>6s}")
    for s in (64, 1024, 16384, 262144):
        rep = estimate_resources(s, 8, cfg)
        est = throughput(rep)
        print(f"{s:8,d} {rep.bram_pct:8.2f} {est.clock_mhz:10.1f} "
              f"{est.msps:7.1f} {power_mw(rep):6.1f}")
    print()


def wordlen_study() -> None:
    print("-- Q-word width: quality vs memory (8x8 world, 150k samples) --")
    mdp = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
    print(f"{'format':>8s} {'lsb':>9s} {'success':>8s} {'BRAM % @262144x8':>17s}")
    for wordlen, frac in ((8, 2), (12, 4), (16, 6), (24, 12)):
        fmt = FxpFormat(wordlen=wordlen, frac=frac)
        cfg = QTAccelConfig.qlearning(seed=7, q_format=fmt)
        sim = make_engine(cfg, mdp=mdp)  # engine="functional" default
        sim.run(150_000)
        rep = convergence_report(mdp, sim.q_float(), gamma=cfg.gamma, samples=150_000)
        big = estimate_resources(262144, 8, cfg)
        print(f"  s{wordlen}.{frac:<4d} {fmt.resolution:9.5f} {rep.success:8.3f} "
              f"{big.bram_pct:17.1f}")


if __name__ == "__main__":
    capacity_table()
    sweep_table()
    wordlen_study()
