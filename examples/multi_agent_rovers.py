#!/usr/bin/env python3
"""Multi-agent training: both §VII-A deployment modes.

1. **State-sharing learners** (Fig. 8): two agents explore the same
   world and write one dual-port Q table; simultaneous same-address
   writes are arbitrated by overwrite.  The cycle-accurate dual pipeline
   shows the throughput doubling and how rare collisions actually are.
2. **Independent learners** (Fig. 9): a fleet of rovers, each assigned a
   quadrant of the terrain with a private memory region, trained in
   parallel pipelines — bounded only by the device's BRAM.

Run:  python examples/multi_agent_rovers.py
"""

from repro.core import (
    IndependentPipelines,
    IndependentPipelinesCycle,
    QLearningAccelerator,
    QTAccelConfig,
    SharedPipelines,
    max_independent_pipelines,
)
from repro.core.metrics import convergence_report
from repro.envs import GridWorld, partition_grid


def shared_mode() -> None:
    print("-- state-sharing learners (Fig. 8) --")
    mdp = GridWorld.empty(16, 4).to_mdp()
    cfg = QTAccelConfig.qlearning(seed=21)

    shared = SharedPipelines(mdp, cfg)
    stats = shared.run(samples_per_pipe=30_000)
    rep2 = convergence_report(mdp, shared.q_float(), gamma=cfg.gamma,
                              samples=stats.samples)

    single = QLearningAccelerator(mdp, seed=21)
    single.run(stats.cycles)  # same wall-clock cycle budget, one pipeline
    rep1 = single.convergence()

    print(f"dual pipeline: {stats.samples:,} samples in {stats.cycles:,} cycles "
          f"({stats.samples_per_cycle:.3f}/cycle)")
    print(f"write collisions: {stats.write_collisions} "
          f"(state-collision rate {stats.collision_rate:.4f}, "
          f"1/|S| = {1 / mdp.num_states:.4f})")
    print(f"convergence at equal cycles - dual: success={rep2.success:.3f}, "
          f"single: success={rep1.success:.3f}")
    est = shared.throughput_estimate()
    print(f"device model: {est.msps:.0f} MS/s aggregate (2 pipelines)")
    print()


def independent_mode() -> None:
    print("-- independent learners (Fig. 9) --")
    cfg = QTAccelConfig.qlearning(seed=31)
    tiles = partition_grid(32, num_parts=4, num_actions=4,
                           obstacle_density=0.1, seed=5)
    fleet = IndependentPipelines(tiles, cfg)
    fleet.run(samples_per_pipe=120_000)

    for i, tile in enumerate(tiles):
        rep = convergence_report(tile, fleet.q_float(i), gamma=cfg.gamma,
                                 samples=120_000)
        print(f"rover {i} ({tile.name}): success={rep.success:.3f}")

    est = fleet.throughput_estimate()
    print(f"aggregate model throughput: {est.msps:.0f} MS/s over "
          f"{fleet.num_pipelines} pipelines (fits device: {fleet.fits_device()})")

    bound = max_independent_pipelines(tiles[0], cfg)
    print(f"BRAM bound: up to {bound} such pipelines fit an xcvu13p")

    # Cycle-accurate cross-check on a smaller budget: four pipelines on
    # one shared clock really do retire four samples per cycle.
    cyc = IndependentPipelinesCycle(tiles, cfg)
    cyc.run(2_000)
    print(f"cycle-accurate: {cyc.samples_per_cycle:.2f} samples/cycle "
          f"across {cyc.num_pipelines} pipelines")


if __name__ == "__main__":
    shared_mode()
    independent_mode()
