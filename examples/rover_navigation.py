#!/usr/bin/env python3
"""Rover navigation: the paper's motivating robotics workload at scale.

A planetary rover (the paper's §VI-C "space rovers" application) learns
to cross a 32x32 terrain map with craters (obstacles), comparing the two
algorithms QTAccel implements:

* Q-Learning — the paper's off-policy customisation (§V-A);
* SARSA with the `follow` Qmax write path — the on-policy customisation
  (§V-B) with this library's fix for the monotonic-Qmax exploit-pinning
  artifact (see EXPERIMENTS.md, ablation_qmax).

Also demonstrates the cycle-accurate engine cross-checking the fast one.

Run:  python examples/rover_navigation.py
"""

import numpy as np

from repro.core import QLearningAccelerator, SarsaAccelerator
from repro.core.metrics import greedy_rollout
from repro.envs import GridWorld


def train_and_report(name, acc, samples):
    acc.run(samples)
    rep = acc.convergence()
    print(f"{name:28s} success={rep.success:.3f} agreement={rep.agreement:.3f} "
          f"episodes={acc.episodes_completed:,}")
    return acc


def show_path(world, mdp, q, start_xy, gamma):
    enc = world.encoding
    start = enc.encode(*start_xy)
    ret, steps, ok = greedy_rollout(mdp, q, start, gamma=gamma)
    status = "reached the goal" if ok else "FAILED"
    print(f"  greedy rollout from {start_xy}: {status} in {steps} steps "
          f"(discounted return {ret:.1f})")


def main() -> None:
    # Shaped rewards (every reward-table entry is programmable on the
    # hardware): -1 per move, -20 on crater/boundary bumps, +255 at the
    # goal.  Gentler than the paper's +/-255 extremes, which on-policy
    # SARSA needs to explore effectively.
    world = GridWorld.random(
        16, num_actions=8, obstacle_density=0.12, seed=11,
        wall_penalty=-20.0, step_reward=-1.0,
    )
    mdp = world.to_mdp()
    print(f"terrain: {world} ({mdp.num_pairs:,} state-action pairs)")
    print()

    gamma = 0.95
    samples = 800_000

    ql = train_and_report(
        "Q-Learning",
        QLearningAccelerator(mdp, alpha=0.5, gamma=gamma, seed=3),
        samples,
    )
    sarsa = train_and_report(
        "SARSA (follow Qmax)",
        SarsaAccelerator(mdp, alpha=0.5, gamma=gamma, epsilon=0.15, seed=3,
                         qmax_mode="follow"),
        samples,
    )
    print()

    for name, acc in (("Q-Learning", ql), ("SARSA", sarsa)):
        print(f"{name} paths:")
        for start in ((0, 0), (0, 15), (8, 8)):
            show_path(world, mdp, acc.q_values(), start, gamma)
    print()

    # Cross-check: the cycle-accurate pipeline produces bit-identical
    # results to the fast engine used above (on a smaller budget).
    fast = QLearningAccelerator(mdp, alpha=0.5, gamma=gamma, seed=9)
    fast.run(20_000)
    cyc = QLearningAccelerator(mdp, alpha=0.5, gamma=gamma, seed=9)
    res = cyc.run(20_000, engine="cycle")
    identical = np.array_equal(fast.q_values(), cyc.q_values())
    print(f"cycle-accurate cross-check: bit-identical={identical}, "
          f"{res.cycles_per_sample:.4f} cycles/sample "
          f"(the paper's one-sample-per-clock claim)")

    thr = ql.throughput_estimate()
    print(f"device model: {thr.msps:.0f} MS/s on xcvu13p -> "
          f"{samples / (thr.samples_per_sec):.1e} s of FPGA time for this "
          f"whole training run")


if __name__ == "__main__":
    main()
