#!/usr/bin/env python3
"""A live client session against the ``repro.serve`` gateway.

Boots a gateway in-process (no separate server needed — the same code
path ``python -m repro.serve`` runs), then walks one tenant through
the full session lifecycle over real loopback TCP:

* **connect + open** — lease a fleet lane; the gateway replies with
  the session id, the lane, and the salt that makes the lane's LFSR
  draw stream unique to this tenant;
* **train** — stream ``(s, a, r, s')`` transitions from a toy
  corridor task through the bit-exact 4-stage datapath;
* **query** — ask for actions (``explore=False`` reads the committed
  argmax; ``explore=True`` runs the e-greedy single-draw circuit);
* **checkpoint / restore** — snapshot the lane server-side, keep
  training, then roll back and verify the table is bit-identical to
  the snapshot point;
* **bit-identity** — replay the same transition stream on a local
  :class:`~repro.core.functional.FunctionalSimulator` with the
  session's salt and compare raw Q tables integer for integer.

Run:  python examples/serve_client.py
"""

import asyncio
import random

from repro.core.config import QTAccelConfig
from repro.core.functional import FunctionalSimulator
from repro.core.policies import PolicyDraws
from repro.serve import (
    Gateway,
    ServeClient,
    SessionManager,
    build_serve_backend,
    run_gateway_in_thread,
    serve_world,
)

STATES, ACTIONS = 12, 4
GOAL = STATES - 1
TRAIN_STEPS = 1500


def corridor_step(rng: random.Random, s: int, a: int) -> tuple[float, int, bool]:
    """A toy corridor: action 1 moves right, others drift; goal pays 1."""
    if a == 1:
        ns = min(s + 1, GOAL)
    elif a == 0:
        ns = max(s - 1, 0)
    else:
        ns = s if rng.random() < 0.5 else min(s + 1, GOAL)
    if ns == GOAL:
        return 1.0, ns, True
    return -0.01, ns, False


def main() -> None:
    cfg = QTAccelConfig.qlearning(seed=7)
    backend = build_serve_backend(
        cfg, engine="vectorized", lanes=8, num_states=STATES, num_actions=ACTIONS
    )
    manager = SessionManager(backend)
    gateway = Gateway(manager, port=0)
    thread, loop = run_gateway_in_thread(gateway)
    print(f"-- gateway up on 127.0.0.1:{gateway.port} "
          f"({backend.K} lanes, {manager.max_sessions} session slots) --")

    try:
        with ServeClient(port=gateway.port) as client:
            sess = client.open_session()
            print(f"opened {sess.sid}: lane {sess.lane}, salt {sess.salt}")

            # Train: episodes on the corridor, mirroring every op locally
            # so we can verify bit-identity afterwards.
            rng = random.Random(3)
            journal = []
            s = 0
            for _ in range(TRAIN_STEPS):
                # Off-policy behavior: mostly random moves (the corridor
                # needs exploring), salted with gateway recommendations.
                if rng.random() < 0.2:
                    a = sess.act(s, explore=True)
                    journal.append(("act", s))
                else:
                    a = rng.randrange(ACTIONS)
                r, ns, done = corridor_step(rng, s, a)
                sess.learn(s, a, r, ns, done)
                journal.append(("learn", s, a, r, ns, done))
                s = 0 if done else ns
            stats = sess.stats()
            print(f"trained: {stats['samples']} transitions, "
                  f"{stats['queries']} action queries")

            # Near the goal the committed greedy policy should walk right
            # (action 1); value takes longer to propagate back to state 0.
            near_goal = list(range(GOAL - 6, GOAL))
            greedy = [sess.act(st, explore=False) for st in near_goal]
            print(f"greedy actions for states {near_goal[0]}..{near_goal[-1]}: {greedy}")

            # Checkpoint, keep training, restore, compare.
            tag = sess.checkpoint("after-train")
            table_at_tag = sess.table()
            for _ in range(100):
                a = rng.randrange(ACTIONS)
                r, ns, done = corridor_step(rng, s, a)
                sess.learn(s, a, r, ns, done)
                s = 0 if done else ns
            drifted = sess.table() != table_at_tag
            sess.restore(tag)
            restored = sess.table() == table_at_tag
            print(f"checkpoint '{tag}': table drifted after more training: "
                  f"{drifted}; bit-identical after restore: {restored}")

            # Bit-identity vs a dedicated scalar simulator with our salt.
            ref = FunctionalSimulator(
                serve_world(STATES, ACTIONS), cfg,
                draws=PolicyDraws.from_config(cfg, salt=sess.salt),
            )
            for entry in journal:
                if entry[0] == "learn":
                    _, es, ea, er, ens, et = entry
                    ref.apply_transition(es, ea, er, ens, et)
                else:
                    ref.query_action(entry[1], explore=True)
            # Replay stops at the checkpoint we restored to, so compare
            # against the table captured at the tag.
            match = table_at_tag == [int(v) for v in ref.tables.q.data]
            print(f"gateway table bit-identical to local scalar replay: {match}")

            sess.close()
            print(f"closed; server now: {client.server_info()['open_sessions']} "
                  "open sessions (lane recycled)")
    finally:
        asyncio.run_coroutine_threadsafe(gateway.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


if __name__ == "__main__":
    main()
