#!/usr/bin/env python3
"""5G channel selection with QTAccel's bandit customisations (§VII-B).

A radio must pick one of M channels each slot; each channel's achievable
rate is its Shannon capacity perturbed by fading.  Rewards are
synthesised on chip by the CLT normal sampler (summed LFSR uniforms).
Compares the single-cycle e-greedy bandit against EXP3's
probability-table policy (which pays ceil(log2 M) cycles of binary
search per decision), plus a stateful bandit where channels degrade and
recover over time.

Run:  python examples/spectrum_sharing_bandits.py
"""

import numpy as np

from repro.core import (
    EpsilonGreedyBanditAccelerator,
    Exp3Accelerator,
    StatefulBanditAccelerator,
    Ucb1Accelerator,
    bandit_cycles_per_sample,
)
from repro.core.config import QTAccelConfig
from repro.device import estimate_resources, throughput
from repro.envs import StatefulBanditEnv, channel_selection_env


def stateless_comparison(num_channels: int = 8, pulls: int = 20_000) -> None:
    print(f"-- stateless bandits: {num_channels} channels, {pulls:,} slots --")
    env = channel_selection_env(num_channels, seed=7)
    means = [a.expected() for a in env.arms]
    print("channel rates (bits/s/Hz):",
          " ".join(f"{m:.2f}" for m in means),
          f"(best: ch{env.best_arm})")

    for name, acc in (
        ("e-greedy", EpsilonGreedyBanditAccelerator(
            channel_selection_env(num_channels, seed=7), epsilon=0.1, seed=7)),
        ("EXP3", Exp3Accelerator(
            channel_selection_env(num_channels, seed=7),
            gamma_exp=0.15, reward_range=(0.0, 8.0), seed=7)),
        ("UCB1", Ucb1Accelerator(
            channel_selection_env(num_channels, seed=7), c=2.0)),
    ):
        res = acc.run(pulls)
        regret = res.cumulative_regret(acc.env)
        best_rate = float(np.mean(res.chosen[pulls // 2:] == acc.env.best_arm))
        print(f"  {name:9s} final regret {regret[-1]:8.1f}   "
              f"best-channel rate (late half) {best_rate:.2f}   "
              f"mean reward {res.mean_reward:.2f}")

    # Throughput cost of the probability-table policy.
    rep = estimate_resources(1, num_channels, QTAccelConfig.qlearning())
    for policy, prob in (("e-greedy", False), ("prob-table", True)):
        cps = bandit_cycles_per_sample(num_channels, probability_policy=prob)
        est = throughput(rep, cycles_per_sample=cps)
        print(f"  model: {policy:10s} {cps:.0f} cycle(s)/decision -> "
              f"{est.msps:.0f} M decisions/s")
    print()


def stateful_channels(pulls: int = 30_000) -> None:
    print("-- stateful bandits: channels degrade and recover --")
    env = StatefulBanditEnv(
        good_means=[6.0, 2.0, 4.0],
        bad_means=[1.0, 2.0, 0.5],
        std=0.5,
        flip_p=0.01,
        seed=9,
    )
    acc = StatefulBanditAccelerator(env, alpha=0.25, gamma=0.3, epsilon=0.1, seed=9)
    res = acc.run(pulls)
    print(f"  mean reward {res.mean_reward:.2f} over {pulls:,} slots "
          f"({env.num_joint_states} joint channel states tracked)")
    q = acc.q_float()
    print(f"  learned Q (state 'all good'):  {np.round(q[0], 2)}")
    print(f"  learned Q (state 'ch0 bad') :  {np.round(q[1], 2)}")


if __name__ == "__main__":
    stateless_comparison()
    stateful_channels()
