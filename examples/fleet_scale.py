#!/usr/bin/env python3
"""Fleet-scale training through the unified engine API.

Runs the same 256-learner fleet through ``repro.make_engine`` on the
pure-Python scalar lane loop, the vectorized numpy backend, and the
process-parallel sharded backend — and shows:

* all backends produce bit-identical Q-tables lane for lane (each lane
  also matches a standalone functional simulator with the same salt),
  whatever the sharded worker count;
* the vectorized backend's throughput advantage, which grows with the
  lane count, and the sharded backend's multi-core scaling on hosts
  with more than one CPU (see ``python -m repro.perf fleet`` and
  ``--workers`` for the full sweeps);
* checkpoint round-trips (``state_dict``/``load_state_dict``) work the
  same through the Engine interface on every backend.

Run:  python examples/fleet_scale.py
"""

import os
import time

import numpy as np

from repro import make_engine
from repro.core import QTAccelConfig
from repro.envs import GridWorld

LANES = 256
STEPS = 60  # per-lane updates; scalar baseline keeps this affordable


def main() -> None:
    mdp = GridWorld.empty(16, 4).to_mdp()
    cfg = QTAccelConfig.qlearning(seed=5, qmax_mode="follow")

    print(f"-- {LANES}-lane fleet, {STEPS} updates/lane per backend --")
    engines = {}
    for backend in ("scalar", "vectorized"):
        fleet = make_engine(
            cfg, engine="batch", mdps=mdp, num_agents=LANES, backend=backend
        )
        t0 = time.perf_counter()
        fleet.run(STEPS)
        dt = time.perf_counter() - t0
        engines[backend] = fleet
        print(
            f"{backend:>11s}: {LANES * STEPS / dt / 1e3:8.0f} K-updates/s "
            f"({dt * 1e3:.1f} ms)"
        )

    # The sharded backend runs the same lanes across worker processes
    # over shared memory; worker count never changes the bits.
    workers = min(2, os.cpu_count() or 1)
    sharded = make_engine(
        cfg, engine="sharded", mdps=mdp, num_agents=LANES, num_workers=workers
    )
    try:
        t0 = time.perf_counter()
        sharded.run(STEPS)
        dt = time.perf_counter() - t0
        print(
            f"{'sharded':>11s}: {LANES * STEPS / dt / 1e3:8.0f} K-updates/s "
            f"({dt * 1e3:.1f} ms, {workers} worker(s))"
        )
        identical = (
            np.array_equal(engines["scalar"].q, engines["vectorized"].q)
            and np.array_equal(engines["vectorized"].q, sharded.q)
        )
    finally:
        sharded.close()
    print(f"Q tables bit-identical across backends: {identical}")

    # Checkpoint round-trip through the Engine interface.
    fleet = engines["vectorized"]
    ckpt = fleet.state_dict()
    fleet.run(STEPS)
    q_after = fleet.q.copy()
    fleet.load_state_dict(ckpt)
    fleet.run(STEPS)
    print(f"checkpoint replay reproduces the run: {np.array_equal(fleet.q, q_after)}")
    print(f"fleet stats: {fleet.stats.as_dict()}")


if __name__ == "__main__":
    main()
