"""Scalar fixed-point value type.

:class:`Fxp` wraps a raw integer together with its :class:`FxpFormat` and
provides arithmetic with hardware semantics: every operation renormalises
into the *left operand's* format (the destination register), applying the
format's rounding and overflow rules.  It exists for readable tests,
examples and the cycle-accurate simulator's scalar datapath; the bulk
vectorised kernels live in :mod:`repro.fixedpoint.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .format import FxpFormat, Real


@dataclass(frozen=True)
class Fxp:
    """An immutable fixed-point number: raw integer + format."""

    raw: int
    fmt: FxpFormat

    def __post_init__(self) -> None:
        if not (self.fmt.raw_min <= self.raw <= self.fmt.raw_max):
            raise ValueError(
                f"raw value {self.raw} outside {self.fmt.describe()}"
            )

    # ------------------------------------------------------------------ #
    # Construction / conversion
    # ------------------------------------------------------------------ #

    @classmethod
    def from_float(cls, value: Real, fmt: FxpFormat) -> "Fxp":
        """Quantise a real number into ``fmt``."""
        return cls(fmt.quantize(value), fmt)

    def to_float(self) -> float:
        """The real value this word represents."""
        return self.fmt.to_float(self.raw)

    def cast(self, fmt: FxpFormat) -> "Fxp":
        """Re-quantise into another format (shift + round + clamp)."""
        shift = self.fmt.frac - fmt.frac
        if shift >= 0:
            raw = fmt.rshift_round(self.raw, shift)
        else:
            raw = self.raw << -shift
        return Fxp(fmt.clamp_raw(raw), fmt)

    # ------------------------------------------------------------------ #
    # Arithmetic (result in the left operand's format)
    # ------------------------------------------------------------------ #

    def _coerce(self, other: Union["Fxp", Real]) -> "Fxp":
        if isinstance(other, Fxp):
            return other
        return Fxp.from_float(other, self.fmt)

    def __add__(self, other: Union["Fxp", Real]) -> "Fxp":
        rhs = self._coerce(other)
        f = max(self.fmt.frac, rhs.fmt.frac)
        a = self.raw << (f - self.fmt.frac)
        b = rhs.raw << (f - rhs.fmt.frac)
        raw = self.fmt.rshift_round(a + b, f - self.fmt.frac)
        return Fxp(self.fmt.clamp_raw(raw), self.fmt)

    def __sub__(self, other: Union["Fxp", Real]) -> "Fxp":
        rhs = self._coerce(other)
        return self + Fxp(rhs.fmt.clamp_raw(-rhs.raw), rhs.fmt)

    def __mul__(self, other: Union["Fxp", Real]) -> "Fxp":
        """Full-precision product, renormalised into ``self.fmt``.

        This is exactly one DSP multiply followed by one shift-round and
        one saturation stage, the datapath pattern used in QTAccel's third
        pipeline stage.
        """
        rhs = self._coerce(other)
        full = self.raw * rhs.raw  # frac = self.frac + rhs.frac
        shift = rhs.fmt.frac  # bring back to self.frac
        raw = self.fmt.rshift_round(full, shift) if shift >= 0 else full << -shift
        return Fxp(self.fmt.clamp_raw(raw), self.fmt)

    def __neg__(self) -> "Fxp":
        return Fxp(self.fmt.clamp_raw(-self.raw), self.fmt)

    # ------------------------------------------------------------------ #
    # Comparisons compare the represented real values.
    # ------------------------------------------------------------------ #

    def _cmp_raws(self, other: Union["Fxp", Real]) -> tuple[int, int]:
        rhs = self._coerce(other)
        f = max(self.fmt.frac, rhs.fmt.frac)
        return self.raw << (f - self.fmt.frac), rhs.raw << (f - rhs.fmt.frac)

    def __eq__(self, other: object) -> bool:  # type: ignore[override]
        if not isinstance(other, (Fxp, int, float)):
            return NotImplemented
        a, b = self._cmp_raws(other)  # type: ignore[arg-type]
        return a == b

    def __lt__(self, other: Union["Fxp", Real]) -> bool:
        a, b = self._cmp_raws(other)
        return a < b

    def __le__(self, other: Union["Fxp", Real]) -> bool:
        a, b = self._cmp_raws(other)
        return a <= b

    def __gt__(self, other: Union["Fxp", Real]) -> bool:
        a, b = self._cmp_raws(other)
        return a > b

    def __ge__(self, other: Union["Fxp", Real]) -> bool:
        a, b = self._cmp_raws(other)
        return a >= b

    def __hash__(self) -> int:
        return hash((self.raw, self.fmt.frac))

    def __repr__(self) -> str:
        return f"Fxp({self.to_float():g} raw={self.raw} {self.fmt.describe().split()[0]})"
