"""Fixed-point arithmetic substrate for the QTAccel datapath.

Public surface:

* :class:`FxpFormat` — word description (width, fractional bits, rounding,
  overflow) with scalar conversion helpers.
* :class:`Fxp` — immutable scalar fixed-point value with operator overloads.
* :mod:`repro.fixedpoint.ops` — vectorised numpy kernels, including
  :func:`~repro.fixedpoint.ops.q_update`, the single shared implementation
  of the accelerator's stage-3 update datapath.
* ``Q_FORMAT`` / ``COEF_FORMAT`` — the calibrated default formats.
"""

from .format import COEF_FORMAT, Q_FORMAT, FxpFormat
from .scalar import Fxp
from . import ops

__all__ = ["FxpFormat", "Fxp", "Q_FORMAT", "COEF_FORMAT", "ops"]
