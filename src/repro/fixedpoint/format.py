"""Fixed-point number formats for the QTAccel datapath.

The FPGA datapath of QTAccel stores Q-values, rewards and the learning
coefficients (``alpha``, ``gamma``, their products) as two's-complement
fixed-point words held in BRAM and multiplied on DSP slices.  This module
defines :class:`FxpFormat`, the value-level description of such a word:
total width, number of fractional bits, signedness, plus the quantisation
(rounding) and overflow (saturation/wrap) behaviour used when a real number
is converted into the format.

All raw values are plain Python ``int`` (or integer numpy arrays in
:mod:`repro.fixedpoint.ops`); a raw value ``r`` in format ``(w, f)``
represents the real number ``r * 2**-f``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

Real = Union[int, float]

#: Supported rounding modes for float -> fixed conversion and for
#: right-shifts after multiplication.
ROUNDING_MODES = ("truncate", "nearest")

#: Supported overflow behaviours.
OVERFLOW_MODES = ("saturate", "wrap")


@dataclass(frozen=True)
class FxpFormat:
    """A two's-complement (or unsigned) fixed-point format.

    Parameters
    ----------
    wordlen:
        Total number of bits in the stored word (sign bit included when
        ``signed``).
    frac:
        Number of fractional bits.  May exceed ``wordlen`` (pure-fractional
        formats) or be negative (coarse integer grids); both are valid in
        hardware and supported here.
    signed:
        Whether the word is two's complement (default) or unsigned.
    rounding:
        ``"truncate"`` (floor, the cheap hardware default) or ``"nearest"``
        (round half away from zero, matching a DSP round bit).
    overflow:
        ``"saturate"`` (clamp to the representable range, default) or
        ``"wrap"`` (modular wrap-around, what an unprotected adder does).
    """

    wordlen: int
    frac: int
    signed: bool = True
    rounding: str = "truncate"
    overflow: str = "saturate"

    def __post_init__(self) -> None:
        if self.wordlen < 1:
            raise ValueError(f"wordlen must be >= 1, got {self.wordlen}")
        if self.signed and self.wordlen < 2:
            raise ValueError("signed formats need at least 2 bits")
        if self.rounding not in ROUNDING_MODES:
            raise ValueError(f"unknown rounding mode {self.rounding!r}")
        if self.overflow not in OVERFLOW_MODES:
            raise ValueError(f"unknown overflow mode {self.overflow!r}")

    # ------------------------------------------------------------------ #
    # Range properties
    # ------------------------------------------------------------------ #

    @property
    def int_bits(self) -> int:
        """Bits left of the binary point (sign bit excluded)."""
        return self.wordlen - self.frac - (1 if self.signed else 0)

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer."""
        return -(1 << (self.wordlen - 1)) if self.signed else 0

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer."""
        if self.signed:
            return (1 << (self.wordlen - 1)) - 1
        return (1 << self.wordlen) - 1

    @property
    def resolution(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac)

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min * self.resolution

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max * self.resolution

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    def clamp_raw(self, raw: int) -> int:
        """Apply this format's overflow behaviour to an out-of-range raw."""
        if self.raw_min <= raw <= self.raw_max:
            return raw
        if self.overflow == "saturate":
            return self.raw_min if raw < self.raw_min else self.raw_max
        # modular wrap into [raw_min, raw_max]
        span = 1 << self.wordlen
        raw &= span - 1
        if self.signed and raw > self.raw_max:
            raw -= span
        return raw

    def quantize(self, value: Real) -> int:
        """Convert a real number to a raw integer in this format."""
        if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
            raise ValueError(f"cannot quantise non-finite value {value!r}")
        scaled = value * (1 << self.frac) if self.frac >= 0 else value / (1 << -self.frac)
        if self.rounding == "truncate":
            raw = math.floor(scaled)
        else:  # nearest, half away from zero (DSP round bit semantics)
            raw = math.floor(scaled + 0.5) if scaled >= 0 else math.ceil(scaled - 0.5)
        return self.clamp_raw(raw)

    def to_float(self, raw: int) -> float:
        """Interpret a raw integer in this format as a float."""
        return raw * self.resolution

    def rshift_round(self, raw: int, shift: int) -> int:
        """Arithmetic right shift with this format's rounding mode.

        Used to renormalise full-precision products back into the format.
        ``shift`` must be non-negative; ``shift == 0`` is the identity.
        The result is *not* clamped — callers clamp once after the whole
        datapath operation (matching a single saturation stage in hardware).
        """
        if shift < 0:
            raise ValueError("shift must be non-negative")
        if shift == 0:
            return raw
        if self.rounding == "truncate":
            return raw >> shift
        # round half away from zero
        half = 1 << (shift - 1)
        if raw >= 0:
            return (raw + half) >> shift
        return -((-raw + half) >> shift)

    def with_(self, **changes) -> "FxpFormat":
        """Return a copy of the format with some fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)

    def describe(self) -> str:
        """Human-readable Q-format string, e.g. ``s16.6 [-512, 511.98]``."""
        sign = "s" if self.signed else "u"
        return (
            f"{sign}{self.wordlen}.{self.frac} "
            f"[{self.min_value:g}, {self.max_value:g}] lsb={self.resolution:g}"
        )


#: Default storage format for Q-values and rewards: 16-bit signed, 6
#: fractional bits.  Range [-512, 511.98] covers the paper's +/-255 grid
#: world rewards with headroom; 16-bit entries are what calibrates the
#: Fig. 4 BRAM curve (see repro.device.resources).
Q_FORMAT = FxpFormat(wordlen=16, frac=6)

#: Default format for the learning coefficients alpha, gamma, alpha*gamma
#: and (1 - alpha): 18-bit signed with 16 fractional bits, i.e. a DSP48
#: 18-bit operand that represents 1.0 exactly (raw 1 << 16).
COEF_FORMAT = FxpFormat(wordlen=18, frac=16)
