"""Vectorised fixed-point kernels (the QTAccel datapath, in numpy).

Every numerical operation the accelerator performs on Q-values goes through
the functions in this module, for scalars (plain ``int``) and arrays alike.
Keeping a single implementation guarantees that the cycle-accurate pipeline
simulator (:mod:`repro.core.pipeline`) and the fast functional simulator
(:mod:`repro.core.functional`) are bit-identical — an equivalence the test
suite asserts.

Raw values are ``int64``; the widest intermediate (an 18x16-bit product
accumulated three-way) needs 36 bits, so ``int64`` never overflows.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .format import FxpFormat

RawLike = Union[int, np.ndarray]

_I64 = np.int64


def quantize_array(values, fmt: FxpFormat) -> np.ndarray:
    """Quantise an array of reals into raw integers of ``fmt``."""
    values = np.asarray(values, dtype=np.float64)
    scaled = values * float(2.0 ** fmt.frac)
    if fmt.rounding == "truncate":
        raw = np.floor(scaled)
    else:
        raw = np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
    return clamp_raw(raw.astype(_I64), fmt)


def to_float_array(raw: RawLike, fmt: FxpFormat) -> np.ndarray:
    """Interpret raw integers of ``fmt`` as floats."""
    return np.asarray(raw, dtype=np.float64) * fmt.resolution


def clamp_raw(raw: RawLike, fmt: FxpFormat) -> RawLike:
    """Apply ``fmt``'s overflow behaviour (saturate or wrap) elementwise."""
    if fmt.overflow == "saturate":
        if isinstance(raw, np.ndarray):
            return np.clip(raw, fmt.raw_min, fmt.raw_max)
        return int(min(max(raw, fmt.raw_min), fmt.raw_max))
    # wrap
    span = 1 << fmt.wordlen
    wrapped = np.bitwise_and(np.asarray(raw, dtype=_I64), span - 1)
    if fmt.signed:
        wrapped = np.where(wrapped > fmt.raw_max, wrapped - span, wrapped)
    return int(wrapped) if np.isscalar(raw) or isinstance(raw, int) else wrapped


def rshift_round(raw: RawLike, shift: int, fmt: FxpFormat) -> RawLike:
    """Arithmetic right shift with ``fmt``'s rounding mode, elementwise."""
    if shift < 0:
        raise ValueError("shift must be non-negative")
    if shift == 0:
        return raw
    arr = np.asarray(raw, dtype=_I64)
    if fmt.rounding == "truncate":
        out = arr >> shift
    else:
        half = _I64(1 << (shift - 1))
        out = np.where(arr >= 0, (arr + half) >> shift, -((-arr + half) >> shift))
    return int(out) if isinstance(raw, int) else out


def fxp_mul(
    a: RawLike, a_fmt: FxpFormat, b: RawLike, b_fmt: FxpFormat, out_fmt: FxpFormat
) -> RawLike:
    """One DSP multiply: full product, renormalise to ``out_fmt``, clamp."""
    full = np.asarray(a, dtype=_I64) * np.asarray(b, dtype=_I64)
    shift = a_fmt.frac + b_fmt.frac - out_fmt.frac
    if shift >= 0:
        raw = rshift_round(full, shift, out_fmt)
    else:
        raw = full << -shift
    raw = clamp_raw(raw, out_fmt)
    if isinstance(a, int) and isinstance(b, int):
        return int(raw)
    return raw


def fxp_add(
    a: RawLike, a_fmt: FxpFormat, b: RawLike, b_fmt: FxpFormat, out_fmt: FxpFormat
) -> RawLike:
    """One adder: align binary points, add, renormalise, clamp."""
    f = max(a_fmt.frac, b_fmt.frac)
    aa = np.asarray(a, dtype=_I64) << (f - a_fmt.frac)
    bb = np.asarray(b, dtype=_I64) << (f - b_fmt.frac)
    total = aa + bb
    shift = f - out_fmt.frac
    if shift >= 0:
        raw = rshift_round(total, shift, out_fmt)
    else:
        raw = total << -shift
    raw = clamp_raw(raw, out_fmt)
    if isinstance(a, int) and isinstance(b, int):
        return int(raw)
    return raw


def q_update(
    q: RawLike,
    r: RawLike,
    q_next: RawLike,
    *,
    alpha: int,
    one_minus_alpha: int,
    alpha_gamma: int,
    coef_fmt: FxpFormat,
    q_fmt: FxpFormat,
) -> RawLike:
    """The stage-3 datapath of QTAccel (eq. 3 of the paper), elementwise.

    ``Q_new = (1 - a) * Q(s,a) + a * R + (a * g) * Q(s', a')``

    Three DSP products are accumulated at full precision in a wide adder
    tree, then renormalised once into ``q_fmt`` and saturated once — the
    single-rounding/single-saturation structure of the hardware datapath.

    Parameters are raw integers: ``q``, ``r``, ``q_next`` in ``q_fmt``;
    ``alpha``, ``one_minus_alpha`` and ``alpha_gamma`` in ``coef_fmt``
    (``alpha_gamma`` is the stage-1 product, already renormalised to
    ``coef_fmt`` — quantisation there is part of the hardware behaviour).
    """
    if type(q) is int and type(r) is int and type(q_next) is int:
        # Pure-int fast path: this is the per-sample hot spot of the
        # functional simulator (profiled), so it avoids numpy scalar
        # overhead entirely.  Semantics are bit-identical to the array
        # path below (asserted by the test suite).
        acc = one_minus_alpha * q + alpha * r + alpha_gamma * q_next
        shift = coef_fmt.frac
        if shift == 0:
            raw = acc
        elif q_fmt.rounding == "truncate":
            raw = acc >> shift  # Python's >> floors, like the array path
        else:
            half = 1 << (shift - 1)
            raw = (acc + half) >> shift if acc >= 0 else -((-acc + half) >> shift)
        if q_fmt.overflow == "saturate":
            lo, hi = q_fmt.raw_min, q_fmt.raw_max
            return lo if raw < lo else hi if raw > hi else raw
        return clamp_raw(raw, q_fmt)

    q64 = np.asarray(q, dtype=_I64)
    r64 = np.asarray(r, dtype=_I64)
    qn64 = np.asarray(q_next, dtype=_I64)
    acc = (
        _I64(one_minus_alpha) * q64
        + _I64(alpha) * r64
        + _I64(alpha_gamma) * qn64
    )  # frac = coef_fmt.frac + q_fmt.frac
    raw = rshift_round(acc, coef_fmt.frac, q_fmt)
    return clamp_raw(raw, q_fmt)


def q_update_into(
    q: np.ndarray,
    r: np.ndarray,
    q_next: np.ndarray,
    *,
    out: np.ndarray,
    scratch: np.ndarray,
    mask_scratch: np.ndarray,
    alpha: int,
    one_minus_alpha: int,
    alpha_gamma: int,
    coef_fmt: FxpFormat,
    q_fmt: FxpFormat,
) -> np.ndarray:
    """:func:`q_update` (array path) into preallocated buffers.

    Bit-identical to :func:`q_update` (asserted by the test suite), but
    every intermediate lands in ``out``/``scratch`` (int64, same shape
    as the operands) and ``mask_scratch`` (bool) — the vectorized fleet
    backend calls this once per lock-step step with zero allocations.
    ``out`` must not alias ``q``/``r``/``q_next``.
    """
    # acc = (1-a)*q + a*r + (a*g)*q_next at full precision.
    np.multiply(q, _I64(one_minus_alpha), out=scratch)
    np.multiply(r, _I64(alpha), out=out)
    np.add(scratch, out, out=scratch)
    np.multiply(q_next, _I64(alpha_gamma), out=out)
    np.add(scratch, out, out=scratch)
    _shift_round_clamp_into(
        scratch, out, mask_scratch, coef_fmt.frac, q_fmt
    )
    return out


def _shift_round_clamp_into(
    scratch: np.ndarray,
    out: np.ndarray,
    mask_scratch: np.ndarray,
    shift: int,
    q_fmt: FxpFormat,
) -> None:
    """Shared allocation-free tail of every ``*_into`` kernel: one
    renormalising shift of the wide accumulator in ``scratch`` (with
    ``q_fmt``'s rounding mode) into ``out``, then one saturate/wrap.
    ``scratch`` is clobbered."""
    if shift == 0:
        np.copyto(out, scratch)
    elif q_fmt.rounding == "truncate":
        np.right_shift(scratch, shift, out=out)
    else:  # round-to-nearest, ties away from zero (matches rshift_round)
        half = _I64(1 << (shift - 1))
        neg = np.less(scratch, 0, out=mask_scratch)
        np.negative(scratch, out=out)
        np.copyto(scratch, out, where=neg)  # scratch = |acc|
        np.add(scratch, half, out=scratch)
        np.right_shift(scratch, shift, out=out)
        np.negative(out, out=scratch)
        np.copyto(out, scratch, where=neg)
    # Single saturate/wrap (matches clamp_raw).
    if q_fmt.overflow == "saturate":
        np.clip(out, q_fmt.raw_min, q_fmt.raw_max, out=out)
    else:
        span = 1 << q_fmt.wordlen
        np.bitwise_and(out, _I64(span - 1), out=out)
        if q_fmt.signed:
            over = np.greater(out, q_fmt.raw_max, out=mask_scratch)
            np.subtract(out, _I64(span), out=scratch)
            np.copyto(out, scratch, where=over)


def q_update_momentum(
    q: RawLike,
    r: RawLike,
    q_next: RawLike,
    m: RawLike,
    *,
    alpha: int,
    one_minus_alpha: int,
    alpha_gamma: int,
    beta: int,
    coef_fmt: FxpFormat,
    q_fmt: FxpFormat,
) -> RawLike:
    """Momentum-accelerated stage-3 datapath (arXiv:1910.11673), elementwise.

    ``Q_new = (1 - a) * Q(s,a) + a * R + (a * g) * Q(s', a')
              + b * (Q(s,a) - M(s,a))``

    ``M`` holds the historical iterate — the previous Q-value written to
    ``(s, a)`` — so ``b * (Q - M)`` is the per-entry momentum term
    ``b * (Q_t - Q_{t-1})``.  One extra DSP product joins the wide adder
    tree; the single-rounding/single-saturation structure of
    :func:`q_update` is unchanged.  All operands are raw integers:
    ``q``, ``r``, ``q_next``, ``m`` in ``q_fmt``; the coefficients
    (including raw ``beta``) in ``coef_fmt``.
    """
    if (
        type(q) is int
        and type(r) is int
        and type(q_next) is int
        and type(m) is int
    ):
        # Pure-int fast path, mirroring q_update (per-sample hot spot).
        acc = (
            one_minus_alpha * q
            + alpha * r
            + alpha_gamma * q_next
            + beta * (q - m)
        )
        shift = coef_fmt.frac
        if shift == 0:
            raw = acc
        elif q_fmt.rounding == "truncate":
            raw = acc >> shift
        else:
            half = 1 << (shift - 1)
            raw = (acc + half) >> shift if acc >= 0 else -((-acc + half) >> shift)
        if q_fmt.overflow == "saturate":
            lo, hi = q_fmt.raw_min, q_fmt.raw_max
            return lo if raw < lo else hi if raw > hi else raw
        return clamp_raw(raw, q_fmt)

    q64 = np.asarray(q, dtype=_I64)
    r64 = np.asarray(r, dtype=_I64)
    qn64 = np.asarray(q_next, dtype=_I64)
    m64 = np.asarray(m, dtype=_I64)
    acc = (
        _I64(one_minus_alpha) * q64
        + _I64(alpha) * r64
        + _I64(alpha_gamma) * qn64
        + _I64(beta) * (q64 - m64)
    )
    raw = rshift_round(acc, coef_fmt.frac, q_fmt)
    return clamp_raw(raw, q_fmt)


def q_update_momentum_into(
    q: np.ndarray,
    r: np.ndarray,
    q_next: np.ndarray,
    m: np.ndarray,
    *,
    out: np.ndarray,
    scratch: np.ndarray,
    mask_scratch: np.ndarray,
    alpha: int,
    one_minus_alpha: int,
    alpha_gamma: int,
    beta: int,
    coef_fmt: FxpFormat,
    q_fmt: FxpFormat,
) -> np.ndarray:
    """:func:`q_update_momentum` (array path) into preallocated buffers.

    Same buffer contract as :func:`q_update_into`; ``out`` must not
    alias any operand.
    """
    # acc = b*(q - m) + (1-a)*q + a*r + (a*g)*q_next at full precision.
    np.subtract(q, m, out=out)
    np.multiply(out, _I64(beta), out=out)
    np.multiply(q, _I64(one_minus_alpha), out=scratch)
    np.add(scratch, out, out=scratch)
    np.multiply(r, _I64(alpha), out=out)
    np.add(scratch, out, out=scratch)
    np.multiply(q_next, _I64(alpha_gamma), out=out)
    np.add(scratch, out, out=scratch)
    _shift_round_clamp_into(
        scratch, out, mask_scratch, coef_fmt.frac, q_fmt
    )
    return out


def polyak_update(
    t: RawLike,
    q_new: RawLike,
    *,
    tau: int,
    one_minus_tau: int,
    coef_fmt: FxpFormat,
    q_fmt: FxpFormat,
) -> RawLike:
    """Polyak (soft) target-table update (arXiv:1905.02841), elementwise.

    ``T_new = (1 - tau) * T(s,a) + tau * Q_new``

    The stage-4 read-modify-write applied to the target-table entry of
    the pair being written back: two DSP products into the wide adder,
    one renormalising shift, one saturation — the same structure as the
    stage-3 datapath.  ``t``/``q_new`` are raw in ``q_fmt``; ``tau`` and
    ``one_minus_tau`` raw in ``coef_fmt``.
    """
    if type(t) is int and type(q_new) is int:
        acc = one_minus_tau * t + tau * q_new
        shift = coef_fmt.frac
        if shift == 0:
            raw = acc
        elif q_fmt.rounding == "truncate":
            raw = acc >> shift
        else:
            half = 1 << (shift - 1)
            raw = (acc + half) >> shift if acc >= 0 else -((-acc + half) >> shift)
        if q_fmt.overflow == "saturate":
            lo, hi = q_fmt.raw_min, q_fmt.raw_max
            return lo if raw < lo else hi if raw > hi else raw
        return clamp_raw(raw, q_fmt)

    t64 = np.asarray(t, dtype=_I64)
    q64 = np.asarray(q_new, dtype=_I64)
    acc = _I64(one_minus_tau) * t64 + _I64(tau) * q64
    raw = rshift_round(acc, coef_fmt.frac, q_fmt)
    return clamp_raw(raw, q_fmt)


def polyak_update_into(
    t: np.ndarray,
    q_new: np.ndarray,
    *,
    out: np.ndarray,
    scratch: np.ndarray,
    mask_scratch: np.ndarray,
    tau: int,
    one_minus_tau: int,
    coef_fmt: FxpFormat,
    q_fmt: FxpFormat,
) -> np.ndarray:
    """:func:`polyak_update` (array path) into preallocated buffers.

    Same buffer contract as :func:`q_update_into`; ``out`` must not
    alias any operand.
    """
    np.multiply(t, _I64(one_minus_tau), out=scratch)
    np.multiply(q_new, _I64(tau), out=out)
    np.add(scratch, out, out=scratch)
    _shift_round_clamp_into(
        scratch, out, mask_scratch, coef_fmt.frac, q_fmt
    )
    return out


def is_saturated(raw: int, fmt: FxpFormat) -> bool:
    """Whether a raw value sits on a rail of ``fmt``.

    The divergence guards use this as the hardware-observable proxy for
    overflow: after the single saturation stage, a clipped result is
    exactly ``raw_min`` or ``raw_max``.  (A legitimately computed rail
    value is indistinguishable — which is why the guards act on *streaks*,
    not single hits.)
    """
    return raw == fmt.raw_min or raw == fmt.raw_max


def saturation_mask(raw: np.ndarray, fmt: FxpFormat) -> np.ndarray:
    """Elementwise :func:`is_saturated` over an array of raw values."""
    arr = np.asarray(raw, dtype=_I64)
    return (arr == fmt.raw_min) | (arr == fmt.raw_max)


def coefficient_set(
    alpha: float, gamma: float, coef_fmt: FxpFormat
) -> tuple[int, int, int, int]:
    """Quantise (alpha, gamma) and derive the three datapath coefficients.

    Returns raw ``(alpha, gamma, one_minus_alpha, alpha_gamma)`` exactly as
    stage 1 of the pipeline computes them: ``1 - alpha`` by subtraction from
    the exact raw 1.0, ``alpha * gamma`` by one DSP multiply renormalised to
    ``coef_fmt``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    one = 1 << coef_fmt.frac
    if one > coef_fmt.raw_max:
        raise ValueError(f"coef format {coef_fmt.describe()} cannot represent 1.0")
    a_raw = coef_fmt.quantize(alpha)
    g_raw = coef_fmt.quantize(gamma)
    one_minus_a = clamp_raw(one - a_raw, coef_fmt)
    ag = fxp_mul(a_raw, coef_fmt, g_raw, coef_fmt, coef_fmt)
    return a_raw, g_raw, int(one_minus_a), int(ag)


def complement_coefficient(value: float, coef_fmt: FxpFormat) -> tuple[int, int]:
    """Quantise a [0, 1] coefficient and derive raw ``(value, 1 - value)``.

    The complement is computed the same way stage 1 derives
    ``1 - alpha``: subtraction from the exact raw 1.0 of ``coef_fmt``.
    Used for the Polyak ``tau`` pair and any future blend coefficient.
    """
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"coefficient must be in [0, 1], got {value}")
    one = 1 << coef_fmt.frac
    if one > coef_fmt.raw_max:
        raise ValueError(f"coef format {coef_fmt.describe()} cannot represent 1.0")
    raw = coef_fmt.quantize(value)
    return int(raw), int(clamp_raw(one - raw, coef_fmt))
