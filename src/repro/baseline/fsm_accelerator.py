"""Behavioural model of the baseline accelerator (Da Silva et al. [11]).

The state-of-the-art design QTAccel compares against instantiates one
finite-state machine — with its own multiplier — *per state-action pair*,
plus a comparator tree over the ``|A|`` Q-values of the next state to
find the greedy maximum.  In any iteration only one pair's FSM performs a
useful update (the paper's "wasted computation" critique), and each
update takes the FSM several cycles.

Behaviourally the design is plain Q-Learning with a true row maximum
(no Qmax cache — the comparator tree reads the actual entries), which we
model with the same fixed-point datapath as QTAccel so the two designs'
learning outcomes are comparable like for like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..envs.base import DenseMdp
from ..fixedpoint import ops
from ..core.config import QTAccelConfig
from ..core.policies import PolicyDraws, draw_start_state

#: FSM cycles per Q-value update in the baseline design (idle ->
#: read -> compare tree -> multiply-accumulate -> write), the §VI-F
#: calibration that yields QTAccel's reported >15x throughput edge at the
#: two devices' achievable clocks.
FSM_CYCLES_PER_UPDATE = 8


@dataclass
class FsmStats:
    """Counters of a baseline run."""

    samples: int = 0
    episodes: int = 0

    @property
    def cycles(self) -> int:
        return self.samples * FSM_CYCLES_PER_UPDATE


class FsmQLearningAccelerator:
    """Functional simulator of the FSM-per-pair baseline design."""

    def __init__(self, mdp: DenseMdp, config: Optional[QTAccelConfig] = None):
        self.mdp = mdp
        self.config = config if config is not None else QTAccelConfig.qlearning()
        if self.config.update_policy != "greedy":
            raise ValueError("the baseline design implements greedy Q-Learning only")
        qf = self.config.q_format
        self.q = np.full(
            (mdp.num_states, mdp.num_actions), qf.quantize(self.config.q_init), dtype=np.int64
        )
        self.rewards = ops.quantize_array(mdp.rewards, qf)
        self.draws = PolicyDraws.from_config(self.config)
        (_, _, self._one_minus_alpha, self._alpha_gamma) = self.config.coefficients()
        self._alpha = self.config.coefficients()[0]
        self.stats = FsmStats()
        self._state: Optional[int] = None

    def run(self, num_samples: int) -> FsmStats:
        """Process ``num_samples`` updates (each costing
        :data:`FSM_CYCLES_PER_UPDATE` cycles in the timing model)."""
        mdp = self.mdp
        cfg = self.config
        q = self.q
        state = self._state
        episodes0 = self.stats.episodes
        for _ in range(num_samples):
            if state is None:
                state = draw_start_state(self.draws, mdp.start_states)
            action = self.draws.action.below(mdp.num_actions)
            nxt = int(mdp.next_state[state, action])
            r = int(self.rewards[state, action])
            # Comparator tree: the true maximum over the next state's row.
            q_next = 0 if mdp.terminal[nxt] else int(q[nxt].max())
            q[state, action] = ops.q_update(
                int(q[state, action]),
                r,
                q_next,
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=self._alpha_gamma,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
            if mdp.terminal[nxt]:
                state = None
                self.stats.episodes += 1
            else:
                state = nxt
        self._state = state
        self.stats.samples += num_samples
        return self.stats

    def q_float(self) -> np.ndarray:
        """Learned Q table as floats."""
        return ops.to_float_array(self.q, self.config.q_format)
