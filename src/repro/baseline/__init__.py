"""Model of the state-of-the-art comparator: the FSM-per-state-action-pair
Q-Learning accelerator of Da Silva et al. (IEEE Access 2019), ref. [11]
of the paper.  Behavioural simulator plus resource/throughput scaling
model, for Fig. 7 and the §VI-F comparison.
"""

from .fsm_accelerator import FSM_CYCLES_PER_UPDATE, FsmQLearningAccelerator, FsmStats
from .model import (
    BASELINE_CLOCK_MHZ,
    BaselineReport,
    baseline_max_states,
    baseline_multipliers,
    baseline_report,
    baseline_throughput_msps,
)

__all__ = [
    "FsmQLearningAccelerator",
    "FsmStats",
    "FSM_CYCLES_PER_UPDATE",
    "BaselineReport",
    "baseline_report",
    "baseline_multipliers",
    "baseline_throughput_msps",
    "baseline_max_states",
    "BASELINE_CLOCK_MHZ",
]
