"""Resource and throughput scaling model of the baseline design [11].

§VI-F fully specifies the scaling law: "the number of multipliers
required by their design is equal to the number of state-action pairs",
and per-pair FSM logic consumes LUTs/FFs proportionally.  The per-pair
logic constants are calibrated so that (132 states, 4 actions) — the
largest configuration [11] reports — saturates the Virtex-6 LX240T's
logic, matching the paper's "fully utilized the DSP and logic" remark.

Throughput: one update takes :data:`FSM_CYCLES_PER_UPDATE` FSM cycles at
a clock that does not benefit from deep pipelining; with the calibrated
100 MHz clock the model lands at ~12.5 MS/s, which is the ">15x" deficit
§VI-F reports against QTAccel's 180+ MS/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.parts import FpgaPart, XC6VLX240T
from .fsm_accelerator import FSM_CYCLES_PER_UPDATE

#: Per state-action pair logic of one update FSM (calibrated; see module
#: docstring).
LUT_PER_PAIR = 280
FF_PER_PAIR = 120
#: One multiplier (DSP) per pair (§VI-F, explicit).
DSP_PER_PAIR = 1
#: Achievable clock of the unpipelined FSM design (MHz).
BASELINE_CLOCK_MHZ = 100.0


@dataclass(frozen=True)
class BaselineReport:
    """Resource usage of the baseline design for one problem size."""

    part: FpgaPart
    num_states: int
    num_actions: int

    @property
    def pairs(self) -> int:
        return self.num_states * self.num_actions

    @property
    def dsp(self) -> int:
        return DSP_PER_PAIR * self.pairs

    @property
    def lut(self) -> int:
        return LUT_PER_PAIR * self.pairs

    @property
    def ff(self) -> int:
        return FF_PER_PAIR * self.pairs

    @property
    def dsp_pct(self) -> float:
        return 100.0 * self.dsp / self.part.dsp

    @property
    def lut_pct(self) -> float:
        return 100.0 * self.lut / self.part.luts

    @property
    def fits(self) -> bool:
        return (
            self.dsp <= self.part.dsp
            and self.lut <= self.part.luts
            and self.ff <= self.part.ffs
        )


def baseline_report(
    num_states: int, num_actions: int, *, part: FpgaPart = XC6VLX240T
) -> BaselineReport:
    """Resource report of the baseline design on ``part``."""
    return BaselineReport(part=part, num_states=num_states, num_actions=num_actions)


def baseline_multipliers(num_states: int, num_actions: int) -> int:
    """Fig. 7's baseline bar: multipliers = state-action pairs."""
    return DSP_PER_PAIR * num_states * num_actions


def baseline_throughput_msps(*, clock_mhz: float = BASELINE_CLOCK_MHZ) -> float:
    """Modelled baseline throughput in MS/s (size-independent: only one
    FSM is active per update regardless of how many are instantiated)."""
    return clock_mhz / FSM_CYCLES_PER_UPDATE


def baseline_max_states(num_actions: int, *, part: FpgaPart = XC6VLX240T) -> int:
    """Largest ``|S|`` the baseline fits on ``part`` (§VI-F scalability).

    The binding constraint is whichever of DSPs and LUTs runs out first.
    """
    by_dsp = part.dsp // (DSP_PER_PAIR * num_actions)
    by_lut = part.luts // (LUT_PER_PAIR * num_actions)
    by_ff = part.ffs // (FF_PER_PAIR * num_actions)
    return max(0, min(by_dsp, by_lut, by_ff))
