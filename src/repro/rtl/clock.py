"""Cycle-loop driver for clocked components.

A minimal synchronous-simulation harness: components expose ``eval()``
(combinational work for the current cycle, evaluated in registration
order) and ``tick()`` (the clock edge).  The QTAccel pipeline is itself a
single component; the driver earns its keep when several pipelines share
tables (multi-agent modes) and must see a consistent cycle boundary.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Clocked(Protocol):
    """Anything that participates in the synchronous cycle loop."""

    def eval(self) -> None:
        """Combinational phase: compute this cycle's outputs."""
        ...

    def tick(self) -> None:
        """Sequential phase: latch state at the clock edge."""
        ...


class Simulation:
    """Drives a set of :class:`Clocked` components cycle by cycle.

    ``eval`` order follows registration order, which lets callers express
    same-cycle combinational dependencies (e.g. SARSA's stage-2 to stage-1
    action forwarding evaluates producer pipelines before consumers).
    """

    def __init__(self) -> None:
        self._components: list[Clocked] = []
        self.cycle = 0

    def add(self, component: Clocked) -> None:
        if not isinstance(component, Clocked):
            raise TypeError(f"{component!r} does not implement eval()/tick()")
        self._components.append(component)

    def step(self) -> None:
        """Advance exactly one clock cycle."""
        for c in self._components:
            c.eval()
        for c in self._components:
            c.tick()
        self.cycle += 1

    def run(self, cycles: int) -> int:
        """Advance ``cycles`` clock cycles; returns the new cycle count."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        for _ in range(cycles):
            self.step()
        return self.cycle

    def telemetry_snapshot(self) -> dict:
        """Cycle counter for telemetry profiles."""
        return {"cycle": self.cycle, "components": len(self._components)}

    def run_until(self, predicate, max_cycles: int = 10_000_000) -> int:
        """Step until ``predicate()`` is true; returns cycles consumed.

        Raises ``RuntimeError`` if ``max_cycles`` elapse first, so stalled
        configurations fail loudly in tests.
        """
        start = self.cycle
        while not predicate():
            if self.cycle - start >= max_cycles:
                raise RuntimeError(f"predicate not reached within {max_cycles} cycles")
            self.step()
        return self.cycle - start
