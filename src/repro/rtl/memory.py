"""On-chip memory models: BRAM/URAM blocks and multi-block tables.

The scalability story of QTAccel (Fig. 4, §VI-F) is a memory story: the Q,
reward and Qmax tables live entirely in on-chip block RAM, and the number
of blocks a table consumes — allocated at block granularity by the
synthesis tool — is what bounds the supported state-action size.

This module models:

* :class:`BlockKind` — a RAM primitive (BRAM18 / BRAM36 / URAM288) with its
  legal depth x width aspect ratios;
* :func:`blocks_for_table` — the block-granular ``ceil`` allocation the
  tools perform, minimised over aspect ratios;
* :class:`TableRam` — a functional dual-port memory holding raw
  fixed-point words, with clock-edge write commit, same-address write
  arbitration (the §VII-A "one pipeline arbitrarily overwrites the other"
  behaviour) and access counters feeding the power model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class BlockKind:
    """A block-RAM primitive and its legal aspect-ratio configurations."""

    name: str
    capacity_bits: int
    #: (depth, width) configurations the primitive supports.
    aspects: tuple[tuple[int, int], ...]
    ports: int = 2

    def blocks_for(self, depth: int, width: int) -> int:
        """Blocks needed for a ``depth x width`` table, best aspect ratio.

        Tables wider than a configuration are bit-sliced across blocks;
        deeper tables are address-sliced.  This is how Vivado maps a
        logical RAM onto primitives.
        """
        if depth <= 0 or width <= 0:
            raise ValueError("depth and width must be positive")
        best = None
        for d, w in self.aspects:
            blocks = math.ceil(width / w) * math.ceil(depth / d)
            if best is None or blocks < best:
                best = blocks
        assert best is not None
        return best


#: Xilinx RAMB36E2: 36 Kb true-dual-port block.
BRAM36 = BlockKind(
    name="BRAM36",
    capacity_bits=36 * 1024,
    aspects=((32768, 1), (16384, 2), (8192, 4), (4096, 9), (2048, 18), (1024, 36), (512, 72)),
)

#: Xilinx RAMB18E2: 18 Kb half block.
BRAM18 = BlockKind(
    name="BRAM18",
    capacity_bits=18 * 1024,
    aspects=((16384, 1), (8192, 2), (4096, 4), (2048, 9), (1024, 18), (512, 36)),
)

#: UltraScale+ URAM288: 288 Kb, native 4K x 72 aspect.  Narrow entries
#: are packed several-to-a-word with slice muxes (standard memory-compiler
#: practice; it is what makes the paper's "10 million state-action pairs
#: in 360 Mb of URAM" arithmetic work), modelled as virtual aspects.
URAM288 = BlockKind(
    name="URAM288",
    capacity_bits=288 * 1024,
    aspects=((4096, 72), (8192, 36), (16384, 18), (32768, 9)),
)


def blocks_for_table(depth: int, width: int, kind: BlockKind = BRAM36) -> int:
    """Convenience wrapper over :meth:`BlockKind.blocks_for`."""
    return kind.blocks_for(depth, width)


def mask_raw(value: int, width: int) -> int:
    """The ``width`` low bits of a raw word (two's-complement pattern)."""
    return value & ((1 << width) - 1)


def sign_extend(pattern: int, width: int, signed: bool = True) -> int:
    """Reinterpret a ``width``-bit pattern as the stored raw integer."""
    if signed and pattern & (1 << (width - 1)):
        return pattern - (1 << width)
    return pattern


def flip_raw_bit(value: int, bit: int, width: int, signed: bool = True) -> int:
    """Flip one physical bit of a stored word, as an SEU would.

    Works on the two's-complement bit pattern (what the BRAM actually
    holds), then maps back to the raw integer domain: flipping bit
    ``width-1`` of a signed word toggles its sign.
    """
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} outside a {width}-bit word")
    return sign_extend(mask_raw(value, width) ^ (1 << bit), width, signed)


def table_bits(depth: int, width: int) -> int:
    """Raw payload bits of a ``depth x width`` table (bit-granular view,
    what the paper's Fig. 4 percentages are computed from at small sizes)."""
    return depth * width


@dataclass
class AccessStats:
    """Cumulative port activity of one :class:`TableRam`."""

    reads: int = 0
    writes: int = 0
    write_collisions: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.write_collisions = 0

    def as_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "write_collisions": self.write_collisions,
        }


class TableRam:
    """A functional dual-port on-chip table of raw fixed-point words.

    Reads are combinational from the *committed* array (BRAM read-first
    semantics: a read issued in the same cycle as a write to the same
    address returns the old word).  Writes are staged with
    :meth:`write` and applied at the clock edge by :meth:`commit`.

    When two ports write the same address in one cycle — possible only in
    the state-sharing dual-pipeline mode — one write arbitrarily overwrites
    the other (paper §VII-A); the loser is counted in
    ``stats.write_collisions``.
    """

    __slots__ = ("name", "depth", "width", "kind", "data", "stats", "_pending")

    def __init__(
        self,
        depth: int,
        width: int,
        *,
        name: str = "ram",
        kind: BlockKind = BRAM36,
        fill: int = 0,
    ):
        if depth <= 0:
            raise ValueError("depth must be positive")
        if not 1 <= width <= 64:
            raise ValueError("width must be in [1, 64]")
        self.name = name
        self.depth = depth
        self.width = width
        self.kind = kind
        self.data = np.full(depth, fill, dtype=np.int64)
        self.stats = AccessStats()
        self._pending: list[tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # Resource view
    # ------------------------------------------------------------------ #

    @property
    def blocks(self) -> int:
        """Block-granular allocation on this table's primitive kind."""
        return self.kind.blocks_for(self.depth, self.width)

    @property
    def bits(self) -> int:
        """Bit-granular payload size."""
        return table_bits(self.depth, self.width)

    # ------------------------------------------------------------------ #
    # Port operations
    # ------------------------------------------------------------------ #

    def read(self, addr: int) -> int:
        """Combinational read of the committed word at ``addr``."""
        self.stats.reads += 1
        return int(self.data[addr])

    def read_many(self, addrs) -> np.ndarray:
        """Vectorised gather (functional-simulator path)."""
        addrs = np.asarray(addrs)
        self.stats.reads += int(addrs.size)
        return self.data[addrs]

    def write(self, addr: int, value: int) -> None:
        """Stage a write; it lands at the next :meth:`commit`."""
        if not 0 <= addr < self.depth:
            raise IndexError(f"{self.name}: address {addr} out of range")
        self._pending.append((addr, value))

    def write_now(self, addr: int, value: int) -> None:
        """Immediate write (functional-simulator path, no clocking)."""
        self.stats.writes += 1
        self.data[addr] = value

    def write_many_now(self, addrs, values) -> None:
        """Vectorised scatter; later duplicates win (sequential order)."""
        addrs = np.asarray(addrs)
        self.stats.writes += int(addrs.size)
        self.data[addrs] = values

    def commit(self) -> int:
        """Apply staged writes (clock edge).  Returns collisions this cycle.

        If more than ``kind.ports`` writes are staged, the configuration is
        invalid — the caller scheduled more traffic than the primitive has
        ports — and we fail loudly rather than silently serialise.
        """
        pending, self._pending = self._pending, []
        if len(pending) > self.kind.ports:
            raise RuntimeError(
                f"{self.name}: {len(pending)} writes in one cycle exceeds "
                f"{self.kind.ports} ports"
            )
        collisions = 0
        seen: dict[int, int] = {}
        for addr, value in pending:
            if addr in seen:
                collisions += 1  # later port overwrites earlier one
            seen[addr] = value
        for addr, value in seen.items():
            self.data[addr] = value
        self.stats.writes += len(pending)
        self.stats.write_collisions += collisions
        return collisions

    def snapshot(self) -> np.ndarray:
        """Copy of the committed contents (for tests/metrics)."""
        return self.data.copy()

    def state_dict(self) -> dict:
        """Checkpoint of the committed contents.

        Only architectural state is captured: staged (uncommitted)
        writes and access counters are deliberately excluded, so
        checkpoints must be taken at a drained clock boundary.
        """
        return {"data": self.data.copy()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        self.data[:] = state["data"]
        self._pending.clear()

    def telemetry_snapshot(self) -> dict:
        """Access counters for telemetry profiles (feeds the memory-traffic
        section; also what the activity power model would integrate)."""
        return {
            "depth": self.depth,
            "width": self.width,
            "blocks": self.blocks,
            **self.stats.as_dict(),
        }

    def __repr__(self) -> str:
        return (
            f"TableRam({self.name!r}, {self.depth}x{self.width}b, "
            f"{self.blocks} {self.kind.name})"
        )
