"""Hardware-primitive models: LFSRs, derived RNGs, block RAM, registers,
and the synchronous cycle-loop driver.

These are the building blocks the cycle-accurate QTAccel simulator is
assembled from, each modelling one FPGA primitive the paper's design
instantiates (§IV-A device model).
"""

from .clock import Clocked, Simulation
from .lfsr import MAXIMAL_TAPS, Lfsr, taps_to_mask
from .lfsr_batch import LfsrBank
from .memory import (
    BRAM18,
    BRAM36,
    URAM288,
    AccessStats,
    BlockKind,
    TableRam,
    blocks_for_table,
    table_bits,
)
from .register import PipelineRegister
from .rng import CltNormal, UniformSource

__all__ = [
    "Clocked",
    "Simulation",
    "Lfsr",
    "MAXIMAL_TAPS",
    "taps_to_mask",
    "LfsrBank",
    "BlockKind",
    "BRAM18",
    "BRAM36",
    "URAM288",
    "TableRam",
    "AccessStats",
    "blocks_for_table",
    "table_bits",
    "PipelineRegister",
    "UniformSource",
    "CltNormal",
]
