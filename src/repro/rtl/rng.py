"""Random-value generators derived from LFSRs.

These model the small combinational circuits the paper builds around its
LFSRs:

* power-of-two and modulo range reduction for action / start-state draws;
* the e-greedy threshold comparison (an N-bit compare against
  ``(1 - eps) * 2**N``, §V-B);
* the central-limit normal sampler for bandit rewards — a sum of uniform
  LFSR outputs (§VII-B, ref. [31]).
"""

from __future__ import annotations

import math

import numpy as np

from .lfsr import Lfsr


#: LFSR clocks per draw.  One Galois step only shifts the register by a
#: single bit, so *successive* draws share all but one bit — a walk whose
#: actions come from the low bits can then never produce certain action
#: pairs (e.g. ``up`` directly after ``left``) and whole regions of a
#: grid become unreachable.  Real designs clock the LFSR several times
#: per sample (or use a leap-forward LFSR, the same circuit unrolled);
#: eight steps refresh a full byte of state between draws.
DECIMATION = 8


class UniformSource:
    """Uniform integer/float draws from one LFSR.

    A maximal LFSR emits every value in ``[1, 2**width - 1]`` exactly once
    per period, which is uniform enough for the accelerator's purposes
    (the hardware makes the same approximation).  Every draw advances the
    register :data:`DECIMATION` times (see note there) so consecutive
    draws are bit-decorrelated.
    """

    __slots__ = ("lfsr", "decimation")

    def __init__(self, lfsr: Lfsr, decimation: int = DECIMATION):
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        self.lfsr = lfsr
        self.decimation = decimation

    @property
    def width(self) -> int:
        return self.lfsr.width

    def bits(self) -> int:
        """One raw ``width``-bit draw (a decimated register read, via the
        leap-forward table)."""
        return self.lfsr.leap(self.decimation)

    def below(self, m: int) -> int:
        """An integer in ``[0, m)``.

        Power-of-two ``m`` uses the low bits (a wire selection in
        hardware); other ``m`` use modulo reduction, whose slight bias at
        LFSR widths >= 16 is far below anything the algorithms can sense —
        and is exactly what the hardware would do.
        """
        if m <= 0:
            raise ValueError("m must be positive")
        u = self.bits()
        if m & (m - 1) == 0:
            return u & (m - 1)
        return u % m

    def unit_float(self) -> float:
        """A float in ``[0, 1)`` (state scaled by ``2**-width``)."""
        return self.bits() / (1 << self.width)

    def threshold(self, p: float) -> bool:
        """True with probability ~``p``: compare a draw against
        ``p * 2**width`` (the paper's e-greedy comparator)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        cut = int(p * (1 << self.width))
        return self.bits() < cut

    def bits_batch(self, n: int) -> np.ndarray:
        """``n`` decimated draws as an int64 array."""
        return self.lfsr.leap_batch(n, self.decimation)

    def below_batch(self, m: int, n: int) -> np.ndarray:
        """``n`` draws in ``[0, m)`` as an int64 array."""
        states = self.bits_batch(n)
        if m & (m - 1) == 0:
            return states & (m - 1)
        return states % m


class CltNormal:
    """Normally distributed samples from summed LFSR uniforms.

    Summing ``k`` independent uniforms on ``[0, 1)`` gives mean ``k/2`` and
    variance ``k/12``; normalising yields an approximate standard normal
    (exactly the Irwin-Hall construction referenced in §VII-B).  ``k = 12``
    makes the variance correction trivial (``sqrt(12/12) = 1``) and is the
    classic hardware choice.
    """

    __slots__ = ("source", "k", "mean", "std", "_scale")

    def __init__(self, lfsr: Lfsr, k: int = 12, mean: float = 0.0, std: float = 1.0):
        if k < 1:
            raise ValueError("k must be >= 1")
        if std < 0:
            raise ValueError("std must be non-negative")
        self.source = UniformSource(lfsr)
        self.k = k
        self.mean = mean
        self.std = std
        self._scale = std / math.sqrt(k / 12.0)

    def sample(self) -> float:
        """One approximately normal draw."""
        total = 0.0
        for _ in range(self.k):
            total += self.source.unit_float()
        return (total - self.k / 2.0) * self._scale + self.mean

    def sample_batch(self, n: int) -> np.ndarray:
        """``n`` draws as a float64 array (one LFSR batch, reshaped)."""
        states = self.source.bits_batch(n * self.k).astype(np.float64)
        u = states / (1 << self.source.width)
        sums = u.reshape(n, self.k).sum(axis=1)
        return (sums - self.k / 2.0) * self._scale + self.mean
