"""Pipeline registers with valid bits.

The cycle-accurate simulator models the flip-flop banks between pipeline
stages explicitly: a :class:`PipelineRegister` holds the payload a stage
produced, plus a valid bit; ``tick()`` is the clock edge that moves the
staged next-value into the visible slot.  Payloads are plain dataclasses
defined by the pipeline.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

T = TypeVar("T")


class PipelineRegister(Generic[T]):
    """One inter-stage flip-flop bank: visible value + staged next value."""

    __slots__ = ("name", "value", "valid", "_next_value", "_next_valid")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[T] = None
        self.valid: bool = False
        self._next_value: Optional[T] = None
        self._next_valid: bool = False

    def stage(self, value: T) -> None:
        """Drive the register inputs for this cycle (captured at tick)."""
        self._next_value = value
        self._next_valid = True

    def stage_bubble(self) -> None:
        """Drive an invalid (bubble) input for this cycle."""
        self._next_value = None
        self._next_valid = False

    def hold(self) -> None:
        """Keep the current contents through the next edge (stall)."""
        self._next_value = self.value
        self._next_valid = self.valid

    def tick(self) -> None:
        """Clock edge: captured inputs become visible; inputs reset to
        bubble so a stage that doesn't drive the register inserts one."""
        self.value = self._next_value
        self.valid = self._next_valid
        self._next_value = None
        self._next_valid = False

    def flush(self) -> None:
        """Clear both visible and staged contents."""
        self.value = None
        self.valid = False
        self._next_value = None
        self._next_valid = False

    def __repr__(self) -> str:
        return f"PipelineRegister({self.name!r}, valid={self.valid}, value={self.value!r})"
