"""Linear feedback shift registers (LFSRs).

QTAccel sources all of its randomness — random start states, random action
draws for the behaviour policy, the epsilon threshold comparison of
SARSA's e-greedy selection, and the uniform summands of the CLT normal
sampler used for bandit rewards — from LFSRs (paper §IV-A, §V-B, §VII-B).

This module implements Galois-form LFSRs with maximal-length feedback
polynomials (tap tables per Xilinx XAPP 052), so every width yields the
full period ``2**n - 1``.  The same generator objects drive both the
cycle-accurate and the functional simulators, which keeps their decision
streams bit-identical.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

#: Maximal-length feedback tap positions (1-based bit indices, MSB = n),
#: from Xilinx XAPP 052.  The XNOR/XOR of these bits feeds the register.
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
    33: (33, 20),
    34: (34, 27, 2, 1),
    35: (35, 33),
    36: (36, 25),
    40: (40, 38, 21, 19),
    48: (48, 47, 21, 20),
    64: (64, 63, 61, 60),
}


def taps_to_mask(width: int, taps: tuple[int, ...]) -> int:
    """Convert 1-based tap positions to the Galois feedback mask.

    Bit ``t - 1`` of the mask is set for every tap ``t``; since every
    polynomial includes the degree-``n`` term, bit ``width - 1`` is always
    set, which is what re-injects the shifted-out bit at the MSB in the
    right-shift Galois update.
    """
    mask = 0
    for t in taps:
        if not 1 <= t <= width:
            raise ValueError(f"tap {t} out of range for width {width}")
        mask |= 1 << (t - 1)
    if not mask & (1 << (width - 1)):
        raise ValueError(f"taps {taps} must include the degree-{width} term")
    return mask


class Lfsr:
    """A Galois-form (right-shift) LFSR of ``width`` bits.

    One :meth:`step` models one clock of the hardware shift register:

    .. code-block:: text

        lsb = state & 1 ; state >>= 1 ; if lsb: state ^= mask

    The register never holds the all-zeros lock-up state; seeds are mapped
    into ``[1, 2**width - 1]``.  The sequence of register states has the
    full period ``2**width - 1`` for every width in :data:`MAXIMAL_TAPS`
    (asserted by the test suite for small widths).
    """

    __slots__ = ("width", "mask", "_state")

    def __init__(self, width: int, seed: int = 1, taps: tuple[int, ...] | None = None):
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise ValueError(
                    f"no maximal tap table for width {width}; pass taps= explicitly"
                )
            taps = MAXIMAL_TAPS[width]
        self.width = width
        self.mask = taps_to_mask(width, taps)
        seed &= (1 << width) - 1
        if seed == 0:
            seed = 1
        self._state = seed

    @property
    def state(self) -> int:
        """Current register contents (also the last output word)."""
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        """Restore register contents (checkpoint path).  The all-zeros
        lock-up state is rejected rather than silently remapped: a
        checkpoint can only ever hold reachable states."""
        value &= (1 << self.width) - 1
        if value == 0:
            raise ValueError("cannot restore the all-zeros LFSR lock-up state")
        self._state = value

    @property
    def period(self) -> int:
        """Sequence period for a maximal-length polynomial."""
        return (1 << self.width) - 1

    def step(self) -> int:
        """Advance one clock; return the new register contents."""
        s = self._state
        lsb = s & 1
        s >>= 1
        if lsb:
            s ^= self.mask
        self._state = s
        return s

    # Per-(mask, d) leap tables, shared across instances.
    _leap_tables: dict[tuple[int, int], list[int]] = {}

    def _leap_table(self, d: int) -> list[int]:
        key = (self.mask, d)
        table = Lfsr._leap_tables.get(key)
        if table is None:
            # f^d(b) for every d-bit b, by plain stepping.  The Galois
            # update is GF(2)-linear, and the high part (b = 0) shifts
            # down without ever presenting a 1 at the LSB, so
            # f^d(s) = (s >> d) ^ f^d(s & (2^d - 1)) exactly.
            mask = self.mask
            table = []
            for b in range(1 << d):
                s = b
                for _ in range(d):
                    lsb = s & 1
                    s >>= 1
                    if lsb:
                        s ^= mask
                table.append(s)
            Lfsr._leap_tables[key] = table
        return table

    def leap(self, d: int) -> int:
        """Advance ``d`` clocks in one operation (leap-forward LFSR).

        Bit-identical to ``d`` calls of :meth:`step` (tested); this is
        the classic LUT circuit real designs use to emit ``d`` fresh
        bits per cycle.  ``d`` must be at most the register width.
        """
        if not 1 <= d <= self.width:
            raise ValueError(f"leap distance must be in [1, {self.width}]")
        table = self._leap_table(d)
        s = self._state
        s = (s >> d) ^ table[s & ((1 << d) - 1)]
        self._state = s
        return s

    def batch(self, n: int) -> np.ndarray:
        """Generate ``n`` successive register states as an int64 array.

        The update is inherently sequential, so this is a tight local
        pure-Python loop writing into a preallocated array (the standard
        idiom for unvectorisable hot loops).
        """
        out = np.empty(n, dtype=np.int64)
        s = self._state
        mask = self.mask
        for i in range(n):
            lsb = s & 1
            s >>= 1
            if lsb:
                s ^= mask
            out[i] = s
        self._state = s
        return out

    def leap_batch(self, n: int, d: int) -> np.ndarray:
        """``n`` successive ``d``-step leaps as an int64 array."""
        table = self._leap_table(d)
        low = (1 << d) - 1
        out = np.empty(n, dtype=np.int64)
        s = self._state
        for i in range(n):
            s = (s >> d) ^ table[s & low]
            out[i] = s
        self._state = s
        return out

    def fork(self, salt: int) -> "Lfsr":
        """A new LFSR of the same polynomial, decorrelated by ``salt``.

        Used to derive independent per-pipeline streams in multi-agent
        mode without sharing register state.
        """
        seed = (self._state * 0x9E3779B1 + salt * 0x85EBCA77 + 1) & ((1 << self.width) - 1)
        return Lfsr(self.width, seed=seed or 1)

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.step()

    def __repr__(self) -> str:
        return f"Lfsr(width={self.width}, state=0x{self._state:x})"
