"""Vectorised banks of Galois LFSRs.

The batch independent-learner simulator (:mod:`repro.core.batch`) steps
one LFSR *per agent* per draw.  Doing that through K Python objects
would dominate the runtime, so this module keeps K registers of the same
polynomial in one int64 numpy array and steps them with three vector
ops.  A masked step advances only the selected lanes — needed because an
agent only consumes a draw when its per-sample condition (episode
restart, explore, ...) holds, and lane k's stream must stay bit-exact
with a scalar :class:`repro.rtl.lfsr.Lfsr` stepped the same number of
times (asserted by the test suite).
"""

from __future__ import annotations

import numpy as np

from .lfsr import MAXIMAL_TAPS, Lfsr, taps_to_mask

#: Cached numpy leap tables keyed by (mask, distance), shared by banks.
_LEAP_TABLES_NP: dict[tuple[int, int], np.ndarray] = {}


class LfsrBank:
    """K parallel Galois LFSRs of one polynomial, stepped vectorised.

    All draw/step methods mutate ``states`` **in place** through two
    preallocated scratch vectors: the hot loop of the vectorized fleet
    backend allocates nothing per step, and callers may rebind
    ``states`` to any writable int64 view (e.g. a shared-memory slice,
    as the sharded backend does) — the bank keeps advancing that exact
    storage.  Scratch is (re)sized lazily on the first draw after a
    rebind.
    """

    __slots__ = ("width", "mask", "states", "_t1", "_t2")

    def __init__(self, width: int, seeds, taps: tuple[int, ...] | None = None):
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise ValueError(f"no maximal tap table for width {width}")
            taps = MAXIMAL_TAPS[width]
        self.width = width
        self.mask = np.int64(taps_to_mask(width, taps))
        seeds = np.asarray(seeds, dtype=np.int64) & ((1 << width) - 1)
        seeds = np.where(seeds == 0, 1, seeds)
        self.states = seeds.copy()
        self._t1 = None
        self._t2 = None

    def _scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """The two scratch vectors, (re)allocated to match ``states``."""
        t1 = self._t1
        if t1 is None or t1.shape != self.states.shape:
            self._t1 = t1 = np.empty_like(self.states)
            self._t2 = np.empty_like(self.states)
        return t1, self._t2

    @classmethod
    def from_scalar_seeds(cls, width: int, seeds) -> "LfsrBank":
        """Bank whose lane k starts where ``Lfsr(width, seed=seeds[k])``
        starts (the zero-seed remap applied identically)."""
        return cls(width, seeds)

    @property
    def lanes(self) -> int:
        return int(self.states.size)

    def step_all(self) -> np.ndarray:
        """Advance every lane one clock; returns the new states."""
        s = self.states
        t, _ = self._scratch()
        np.bitwise_and(s, 1, out=t)
        np.multiply(t, self.mask, out=t)
        np.right_shift(s, 1, out=s)
        np.bitwise_xor(s, t, out=s)
        return s

    def step_where(self, mask: np.ndarray) -> np.ndarray:
        """Advance only lanes where ``mask`` is True.

        Returns the *current* states (advanced lanes show their new
        value, held lanes their old one), matching "draw if needed".
        """
        s = self.states
        t, nxt = self._scratch()
        np.bitwise_and(s, 1, out=t)
        np.multiply(t, self.mask, out=t)
        np.right_shift(s, 1, out=nxt)
        np.bitwise_xor(nxt, t, out=nxt)
        np.copyto(s, nxt, where=mask)
        return s

    def _leap_table_np(self, d: int) -> np.ndarray:
        """The (mask, d) leap table as an int64 array, cached."""
        key = (int(self.mask), d)
        table = _LEAP_TABLES_NP.get(key)
        if table is None:
            scalar = Lfsr(self.width, seed=1)
            scalar.mask = int(self.mask)
            table = np.asarray(scalar._leap_table(d), dtype=np.int64)
            _LEAP_TABLES_NP[key] = table
        return table

    def draw_all(self, decimation: int) -> np.ndarray:
        """One decimated draw per lane (the vectorised twin of
        :meth:`repro.rtl.rng.UniformSource.bits`): a single leap-forward
        table gather instead of ``decimation`` shift rounds."""
        table = self._leap_table_np(decimation)
        s = self.states
        t, _ = self._scratch()
        np.bitwise_and(s, (1 << decimation) - 1, out=t)
        np.take(table, t, out=t)  # mode='raise' buffers, so t may alias
        np.right_shift(s, decimation, out=s)
        np.bitwise_xor(s, t, out=s)
        return s

    def draw_where(self, mask: np.ndarray, decimation: int) -> np.ndarray:
        """Decimated draw on selected lanes; held lanes keep their state."""
        table = self._leap_table_np(decimation)
        s = self.states
        t, nxt = self._scratch()
        np.bitwise_and(s, (1 << decimation) - 1, out=t)
        np.take(table, t, out=t)
        np.right_shift(s, decimation, out=nxt)
        np.bitwise_xor(nxt, t, out=nxt)
        np.copyto(s, nxt, where=mask)
        return s

    def below(self, m: int, decimation: int = 1) -> np.ndarray:
        """Draw all lanes and reduce into ``[0, m)`` (the scalar
        :meth:`repro.rtl.rng.UniformSource.below` rule, vectorised)."""
        s = self.draw_all(decimation)
        if m & (m - 1) == 0:
            return s & (m - 1)
        return s % m

    def lane(self, k: int) -> Lfsr:
        """A scalar LFSR continuing lane ``k``'s stream (for tests)."""
        return Lfsr(self.width, seed=int(self.states[k]))
