"""Accelerated update rules: convergence versus samples (ROADMAP item 2).

The update-rule API (:mod:`repro.algorithms`) adds two accelerated
stage-3 variants to the paper's Q-Learning/SARSA pair: momentum-based
accelerated Q-Learning (arXiv:1910.11673 — one extra table holding the
historical iterate, one extra DSP product) and target-table Q-Learning
(arXiv:1905.02841 — a Polyak-averaged second table, two extra DSP
products).  The hardware claim is that both are *drop-in* stage-3/4
customisations: same pipeline, same forwarding network, one more BRAM
pair table.  This experiment asks the algorithmic question the paper
never does — do the extra resources buy convergence in fewer samples?

Protocol: every rule trains on the same environment through the
bit-exact functional simulator, checkpointing the greedy policy's
quality every ``total/points`` samples.  The scalar reported is
*samples-to-baseline*: the first checkpoint at which the rule's metric
reaches the plain Q-Learning run's **final** value (so the baseline row
always reads its own total budget or the point where it saturates).
Each row also carries the rule's device cost — stage-3/4 DSP multipliers
and block-granular BRAM at the |S|=4096, |A|=4 reference size — so the
samples/resources trade reads off one table.
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..core.functional import FunctionalSimulator
from ..core.metrics import greedy_rollout, q_rmse
from ..device.resources import datapath_dsps, table_blocks
from ..envs.cliff import cliff_mdp
from ..envs.gridworld import GridWorld
from ..envs.random_mdp import random_dense_mdp
from .registry import ExperimentResult, register

#: Penalised return for a greedy rollout that never reaches a terminal
#: (looping policies must rank below any successful one).
_FAIL = -1e4


def _avg_return(mdp, q, gamma: float, *, max_steps: int = 256, max_starts: int = 64) -> float:
    """Mean greedy discounted return over (a subsample of) start states."""
    starts = mdp.start_states
    if len(starts) > max_starts:
        starts = starts[:: max(1, len(starts) // max_starts)][:max_starts]
    total = 0.0
    for s in starts:
        ret, _, ok = greedy_rollout(mdp, q, int(s), gamma=gamma, max_steps=max_steps)
        total += ret if ok else _FAIL
    return total / len(starts)


def _rule_rows(mdp, gamma, rules, total, points, metric):
    """Train every rule, returning ``(name, curve)`` pairs."""
    chunk = total // points
    out = []
    for name, cfg in rules:
        sim = FunctionalSimulator(mdp, cfg)
        curve = []
        for _ in range(points):
            sim.run(chunk)
            curve.append(metric(mdp, sim.q_float(), gamma))
        out.append((name, cfg, curve, chunk))
    return out


def _samples_to(curve, chunk, baseline) -> int | None:
    for i, v in enumerate(curve):
        if v >= baseline - 1e-9:
            return (i + 1) * chunk
    return None


@register("algorithms", "Accelerated update rules: convergence vs samples")
def run(*, quick: bool = False) -> ExperimentResult:
    points = 15 if quick else 30
    grid_total = 120_000 if quick else 240_000
    rand_total = 120_000 if quick else 240_000
    # The cliff baseline needs ~440k samples to converge at all, so its
    # budget does not shrink in quick mode (only the resolution does).
    cliff_total = 600_000

    def ret_metric(mdp, q, gamma):
        return _avg_return(mdp, q, gamma)

    grid = GridWorld.random(
        16, 4, obstacle_density=0.15, seed=2, wall_penalty=-20.0, step_reward=-1.0
    ).to_mdp()
    cliff = cliff_mdp(16, 4)
    rand = random_dense_mdp(64, 4, seed=5, terminal_fraction=0.15)
    rand_qstar = rand.optimal_q(0.9)

    def rmse_metric(mdp, q, gamma):
        # Random MDPs have no meaningful rollout goal; negated RMSE
        # against the value-iteration oracle is the monotone-better
        # stand-in for return.
        return -q_rmse(q, rand_qstar, mask=~mdp.terminal)

    suites = [
        (
            "grid16",
            grid,
            0.9,
            grid_total,
            ret_metric,
            [
                ("qlearning", QTAccelConfig.qlearning(seed=7)),
                ("momentum b=.30", QTAccelConfig.momentum(seed=7)),
                ("target t=.05", QTAccelConfig.target_q(seed=7)),
                ("sarsa (follow)", QTAccelConfig.sarsa(seed=7, qmax_mode="follow")),
            ],
        ),
        (
            "cliff16x4",
            cliff,
            1.0,
            cliff_total,
            ret_metric,
            [
                ("qlearning", QTAccelConfig.qlearning(seed=7, alpha=0.5, gamma=1.0)),
                (
                    "momentum b=.15",
                    QTAccelConfig.momentum(
                        seed=7, alpha=0.5, gamma=1.0, momentum_beta=0.15
                    ),
                ),
                (
                    "target t=.05",
                    QTAccelConfig.target_q(seed=7, alpha=0.5, gamma=1.0),
                ),
                (
                    "sarsa (follow)",
                    QTAccelConfig.sarsa(
                        seed=7, alpha=0.125, gamma=1.0, qmax_mode="follow"
                    ),
                ),
            ],
        ),
        (
            "random64x4",
            rand,
            0.9,
            rand_total,
            rmse_metric,
            [
                ("qlearning", QTAccelConfig.qlearning(seed=7)),
                ("momentum b=.30", QTAccelConfig.momentum(seed=7)),
                ("target t=.05", QTAccelConfig.target_q(seed=7)),
                ("sarsa (follow)", QTAccelConfig.sarsa(seed=7, qmax_mode="follow")),
            ],
        ),
    ]

    rows = []
    wins = []
    for env_name, mdp, gamma, total, metric, rules in suites:
        trained = _rule_rows(mdp, gamma, rules, total, points, metric)
        baseline = next(c for n, _, c, _ in trained if n == "qlearning")[-1]
        base_s2b = None
        for name, cfg, curve, chunk in trained:
            s2b = _samples_to(curve, chunk, baseline)
            if name == "qlearning":
                base_s2b = s2b
            speedup = (
                round(base_s2b / s2b, 2)
                if s2b is not None and base_s2b is not None
                else None
            )
            if (
                cfg.rule.kind != "plain"
                and s2b is not None
                and base_s2b is not None
                and s2b < base_s2b
            ):
                wins.append((env_name, name))
            blocks = table_blocks(4096, 4, cfg)
            rows.append(
                (
                    env_name,
                    name,
                    round(float(curve[-1]), 2),
                    s2b,
                    speedup,
                    datapath_dsps(cfg),
                    blocks,
                )
            )

    notes = [
        "samples-to-baseline = first checkpoint whose metric reaches the "
        "plain-Q run's FINAL value; speedup = qlearning's samples-to-"
        "baseline / the rule's (>1 means the rule needs fewer samples).",
        "metric: mean greedy discounted return over starts (failed "
        "rollouts pinned to -10000) on grid16/cliff16x4; negated "
        "Q-RMSE against the value-iteration oracle on random64x4 "
        "(random MDPs have no rollout goal).",
        "device cost: DSP multipliers (stage 3 + stage-4 Polyak) and "
        "block-granular BRAM36 at the |S|=4096, |A|=4 reference size — "
        "momentum pays +1 DSP and one pair table, target +2 DSPs, one "
        "pair table and the argmax array.",
        f"accelerated-rule wins (fewer samples than plain Q-Learning): "
        f"{', '.join(f'{r} on {e}' for e, r in wins) if wins else 'none'}.",
        "cliff keeps its full 600k budget even in quick mode: the "
        "baseline only converges at ~440k samples.",
    ]
    return ExperimentResult(
        exp_id="algorithms",
        title="Accelerated update rules: convergence vs samples",
        headers=[
            "env",
            "rule",
            "final metric",
            "samples-to-baseline",
            "speedup",
            "DSPs",
            "BRAM36@4096x4",
        ],
        rows=rows,
        notes=notes,
    )
