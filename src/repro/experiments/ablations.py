"""Ablations of the design choices DESIGN.md calls out.

* ``ablation_hazards`` — what the forwarding network buys: cycles/sample
  and learning quality under ``forward`` / ``stall`` / ``stale``.
* ``ablation_qmax`` — the cost of the single-cycle Qmax cache: the
  paper's monotonic rule vs our follow rule vs the exact (non-hardware)
  row maximum, on Q-Learning and SARSA.
* ``ablation_wordlen`` — fixed-point width vs learning quality vs BRAM.
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..core.functional import FunctionalSimulator
from ..core.metrics import convergence_report
from ..core.pipeline import QTAccelPipeline
from ..device.resources import estimate_resources
from ..envs.gridworld import GridWorld
from ..envs.random_mdp import random_dense_mdp
from ..fixedpoint.format import FxpFormat
from .registry import ExperimentResult, register


@register("ablation_hazards", "Hazard handling: forward vs stall vs stale")
def run_hazards(*, quick: bool = False) -> ExperimentResult:
    samples = 5_000 if quick else 60_000
    envs = {
        "grid16": GridWorld.random(16, 4, obstacle_density=0.1, seed=41).to_mdp(),
        "loopy-mdp": random_dense_mdp(64, 4, seed=42, self_loop_bias=0.6),
    }
    rows = []
    for env_name, mdp in envs.items():
        for mode in ("forward", "stall", "stale"):
            cfg = QTAccelConfig.qlearning(seed=43, hazard_mode=mode)
            pipe = QTAccelPipeline(mdp, cfg)
            pipe.run(samples)
            conv = convergence_report(
                mdp, pipe.q_float(), gamma=cfg.gamma, samples=samples
            )
            rows.append(
                (
                    env_name,
                    mode,
                    round(pipe.stats.cycles_per_sample, 3),
                    pipe.stats.stall_cycles,
                    round(conv.agreement, 3),
                    round(conv.rmse, 1),
                    round(conv.success, 3),
                )
            )
    return ExperimentResult(
        exp_id="ablation_hazards",
        title="Hazard-handling ablation",
        headers=["env", "mode", "cycles/sample", "stalls", "agreement", "rmse", "success"],
        rows=rows,
        notes=[
            "forward: the paper's design - 1.0 cycles/sample with exact "
            "sequential semantics.",
            "stall: same trajectory, 2-4x the cycles (what the forwarding "
            "network is worth).",
            "stale: full speed but reads may be stale; the trajectory "
            "diverges bit-level (asserted in tests) even when the "
            "contraction of the update washes it out of the aggregate "
            "metrics - correctness by luck, which the forwarding network "
            "removes for free.",
        ],
    )


@register("ablation_qmax", "Qmax maintenance: monotonic vs follow vs exact")
def run_qmax(*, quick: bool = False) -> ExperimentResult:
    samples = 20_000 if quick else 200_000
    mdp = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
    rows = []
    for alg, preset in (("qlearning", QTAccelConfig.qlearning), ("sarsa", QTAccelConfig.sarsa)):
        for mode in ("monotonic", "follow", "exact"):
            cfg = preset(seed=7, qmax_mode=mode, epsilon=0.2)
            sim = FunctionalSimulator(mdp, cfg)
            sim.run(samples)
            conv = convergence_report(mdp, sim.q_float(), gamma=cfg.gamma, samples=samples)
            rows.append(
                (
                    alg,
                    mode,
                    sim.stats.episodes,
                    round(conv.agreement, 3),
                    round(conv.rmse, 1),
                    round(conv.success, 3),
                )
            )
    return ExperimentResult(
        exp_id="ablation_qmax",
        title="Qmax-cache ablation",
        headers=["algorithm", "qmax mode", "episodes", "agreement", "rmse", "success"],
        rows=rows,
        notes=[
            "monotonic (the paper's write path) pins SARSA's exploit action "
            "when updates lower the cached maximum: with -255 wall "
            "penalties the agent never reaches the goal (0 episodes).",
            "follow - our one-extra-comparator fix - restores SARSA "
            "learning at hardware cost indistinguishable from monotonic.",
            "exact is the non-implementable upper bound (needs a full row "
            "scan per write).",
            "Q-Learning is insensitive: its uniform-random behaviour "
            "policy does not consult the cached argmax action.",
        ],
    )


@register("ablation_wordlen", "Fixed-point word length vs quality vs BRAM")
def run_wordlen(*, quick: bool = False) -> ExperimentResult:
    samples = 20_000 if quick else 150_000
    mdp = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
    rows = []
    for wordlen, frac in ((8, 2), (12, 4), (16, 6), (24, 12), (32, 20)):
        fmt = FxpFormat(wordlen=wordlen, frac=frac)
        cfg = QTAccelConfig.qlearning(seed=7, q_format=fmt)
        sim = FunctionalSimulator(mdp, cfg)
        sim.run(samples)
        conv = convergence_report(mdp, sim.q_float(), gamma=cfg.gamma, samples=samples)
        rep = estimate_resources(262144, 8, cfg)
        rows.append(
            (
                f"s{wordlen}.{frac}",
                round(fmt.resolution, 5),
                round(conv.agreement, 3),
                round(conv.rmse, 1),
                round(conv.success, 3),
                round(rep.bram_pct, 1),
            )
        )
    return ExperimentResult(
        exp_id="ablation_wordlen",
        title="Word-length ablation",
        headers=["format", "lsb", "agreement", "rmse", "success", "BRAM % @262144x8"],
        rows=rows,
        notes=[
            "The default s16.6 is the calibration point of the Fig. 4 BRAM "
            "curve; 8-bit entries halve memory but lose the +/-255 reward "
            "range (saturation) and the policy with it.",
            "BRAM column shows the Fig. 4 peak case re-estimated at each "
            "width: the linear memory/precision trade.",
        ],
    )
