"""Experiment registry: one entry per paper table/figure (see DESIGN.md).

Every experiment module registers a function returning an
:class:`ExperimentResult` — a titled table of rows, with paper reference
values alongside measured/modelled ones wherever the paper prints a
number, plus free-form notes recording calibration caveats.  The runner
(`python -m repro.experiments`) and the pytest benches both go through
this registry, so the printed artifact is identical everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


@dataclass
class ExperimentResult:
    """A regenerated paper artifact."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        """Fixed-width rendering of the table plus notes."""
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        sep = "-+-".join("-" * w for w in widths)
        out = [f"== {self.exp_id}: {self.title} =="]
        out.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        out.append(sep)
        for row in cells:
            out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


#: exp_id -> (title, runner).  Runners accept ``quick`` to trade fidelity
#: for wall time (used by the pytest benches).
_REGISTRY: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {}


def register(exp_id: str, title: str):
    """Decorator adding an experiment to the registry."""

    def deco(fn: Callable[..., ExperimentResult]):
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = (title, fn)
        return fn

    return deco


def experiment_ids() -> list[str]:
    """All registered experiment ids, registration order."""
    _load_all()
    return list(_REGISTRY)


def run_experiment(
    exp_id: str, *, quick: bool = False, telemetry=None
) -> ExperimentResult:
    """Run one experiment by id.

    With ``telemetry`` (a :class:`~repro.telemetry.TelemetrySession`),
    the experiment runs inside the session's ambient window, so every
    engine it constructs attaches automatically — no experiment module
    needs to know telemetry exists.
    """
    _load_all()
    if exp_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(_REGISTRY)}"
        )
    _, fn = _REGISTRY[exp_id]
    if telemetry is None:
        return fn(quick=quick)
    with telemetry.activate():
        return fn(quick=quick)


def experiment_title(exp_id: str) -> str:
    _load_all()
    return _REGISTRY[exp_id][0]


_loaded = False


def _load_all() -> None:
    """Import every experiment module exactly once (registration side
    effects)."""
    global _loaded
    if _loaded:
        return
    from . import (  # noqa: F401
        ablations,
        algorithms,
        chaos_campaign,
        cliff,
        convergence,
        fault_campaign,
        fig3,
        fig4,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        fleet,
        mab,
        prob_policy,
        sota,
        table1,
        table2,
        table2_cache,
    )

    _loaded = True
