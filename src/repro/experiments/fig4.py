"""Fig. 4 — BRAM utilisation vs state size (both algorithms).

The paper's bars grow ~4x per size step (linear in ``|S| x |A|``),
reaching 78.12 % at |S| = 262144 with 8 actions.  We print the
block-granular allocation (what the synthesis tool consumes) and the
bit-granular footprint (which is what the paper's percentages match at
small sizes, where block quantisation floors the block view at ~0.1 %).
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..device.resources import estimate_resources
from .cases import FIG4_BRAM_PCT, STATE_SIZES
from .registry import ExperimentResult, register


@register("fig4", "BRAM utilisation vs |S| (8 actions, xcvu13p)")
def run(*, quick: bool = False) -> ExperimentResult:
    cfg = QTAccelConfig.qlearning()
    rows = []
    for s in STATE_SIZES:
        rep = estimate_resources(s, 8, cfg)
        rows.append(
            (
                s,
                rep.bram_blocks,
                round(rep.bram_pct, 2),
                round(rep.bram_bits_pct, 2),
                FIG4_BRAM_PCT[s],
            )
        )
    return ExperimentResult(
        exp_id="fig4",
        title="BRAM utilisation (Fig. 4)",
        headers=["|S|", "BRAM36 blocks", "blocks %", "bits %", "paper %"],
        rows=rows,
        notes=[
            "Q + reward tables are |S| x |A| 16-bit words; Qmax adds |S| "
            "words.  The 16-bit entry width is what calibrates the curve "
            "to the paper's 78.12 % peak.",
            "The |S|=256 paper bar is unreadable in our source scan.",
            "At |S| >= 1024 block and bit views agree with the paper "
            "within ~3 points; below that the paper evidently reports the "
            "bit-granular number.",
        ],
    )
