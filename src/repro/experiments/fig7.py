"""Fig. 7 — multiplier (DSP) count: QTAccel vs the baseline [11].

§VI-F states the baseline's scaling law outright: "the number of
multipliers required by their design is equal to the number of
state-action pairs", while QTAccel uses 4 regardless.  (The bar labels
in our source scan are OCR-damaged, so the baseline column is computed
from that stated law rather than transcribed.)
"""

from __future__ import annotations

from ..baseline.model import baseline_multipliers
from ..device.resources import DATAPATH_DSPS
from .cases import FIG7_CASES
from .registry import ExperimentResult, register


@register("fig7", "DSP count: QTAccel vs baseline [11]")
def run(*, quick: bool = False) -> ExperimentResult:
    rows = []
    for s, a in FIG7_CASES:
        base = baseline_multipliers(s, a)
        rows.append((f"({s},{a})", DATAPATH_DSPS, base, round(base / DATAPATH_DSPS, 1)))
    return ExperimentResult(
        exp_id="fig7",
        title="Multipliers: QTAccel vs baseline (Fig. 7)",
        headers=["(|S|,|A|)", "QTAccel DSP", "baseline DSP", "ratio"],
        rows=rows,
        notes=[
            "Baseline column follows §VI-F's stated law (one multiplier per "
            "state-action pair); the figure's own bar values are unreadable "
            "in our source text.",
        ],
    )
