"""Fig. 5 — SARSA resource utilisation and power vs state size.

§VI-C2: SARSA's architecture differs from Q-Learning's only in stage 2,
where the e-greedy policy needs a random number generator (an LFSR) and
a threshold comparator — so registers and power rise slightly while DSP
and BRAM stay identical.  The rows below show exactly that delta.
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..device.power import power_mw
from ..device.resources import estimate_resources
from .cases import STATE_SIZES
from .registry import ExperimentResult, register


@register("fig5", "SARSA resource utilisation & power vs |S| (8 actions)")
def run(*, quick: bool = False) -> ExperimentResult:
    sarsa = QTAccelConfig.sarsa()
    ql = QTAccelConfig.qlearning()
    rows = []
    for s in STATE_SIZES:
        rs = estimate_resources(s, 8, sarsa)
        rq = estimate_resources(s, 8, ql)
        rows.append(
            (
                s,
                rs.dsp,
                rs.ff,
                rs.ff - rq.ff,
                round(rs.ff_pct, 4),
                round(power_mw(rs), 1),
                round(power_mw(rs) - power_mw(rq), 1),
            )
        )
    return ExperimentResult(
        exp_id="fig5",
        title="SARSA resources (Fig. 5)",
        headers=["|S|", "DSP", "FF", "FF vs QL", "FF %", "power mW", "power vs QL"],
        rows=rows,
        notes=[
            "Paper claims: same DSP/BRAM as Q-Learning; registers and power "
            "slightly higher from the e-greedy LFSR + comparator.  The "
            "constant positive 'vs QL' deltas reproduce that.",
            "SARSA additionally stores the Qmax argmax-action array "
            "(|S| x log2|A|), a small BRAM increment the paper folds into "
            "'same BRAM'.",
        ],
    )
