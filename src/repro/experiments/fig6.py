"""Fig. 6 — throughput vs state size for Q-Learning and SARSA.

Throughput = achieved clock x samples-per-cycle.  The samples-per-cycle
factor is *measured* on the cycle-accurate pipeline (it is 1.0 after
fill, the paper's headline property — hazards are fully forwarded); the
clock comes from the calibrated BRAM-pressure model
(:mod:`repro.device.timing`).  Paper series: ~189 MS/s flat, dipping to
175/156 MS/s at the two largest sizes.
"""

from __future__ import annotations

from ..core.accelerator import QLearningAccelerator, SarsaAccelerator
from ..core.config import QTAccelConfig
from ..device.resources import estimate_resources
from ..device.timing import throughput
from ..envs.gridworld import GridWorld
from .cases import FIG6_THROUGHPUT_MSPS, STATE_SIZES, grid_side
from .registry import ExperimentResult, register


def measured_cycles_per_sample(algorithm: str, *, side: int = 16, samples: int = 20_000) -> float:
    """Cycles/sample measured on the cycle-accurate pipeline.

    The rate is a property of the pipeline (fill + hazard handling), not
    of the table sizes, so one mid-sized grid measurement serves every
    Fig. 6 point; the tests verify size-independence separately.
    """
    mdp = GridWorld.empty(side, 8).to_mdp()
    acc = (
        QLearningAccelerator(mdp, seed=11)
        if algorithm == "qlearning"
        else SarsaAccelerator(mdp, seed=11, qmax_mode="follow")
    )
    res = acc.run(samples, engine="cycle")
    return res.cycles / res.samples


@register("fig6", "Throughput vs |S| for Q-Learning and SARSA (8 actions)")
def run(*, quick: bool = False) -> ExperimentResult:
    samples = 4_000 if quick else 20_000
    cps = {
        "qlearning": measured_cycles_per_sample("qlearning", samples=samples),
        "sarsa": measured_cycles_per_sample("sarsa", samples=samples),
    }
    rows = []
    for s in STATE_SIZES:
        row = [s]
        for alg, cfg in (
            ("qlearning", QTAccelConfig.qlearning()),
            ("sarsa", QTAccelConfig.sarsa()),
        ):
            rep = estimate_resources(s, 8, cfg)
            est = throughput(rep, cycles_per_sample=cps[alg])
            row.append(round(est.msps, 1))
        row.append(FIG6_THROUGHPUT_MSPS.get(s))
        row.append(round(cps["qlearning"], 4))
        rows.append(tuple(row))
    return ExperimentResult(
        exp_id="fig6",
        title="Throughput (Fig. 6)",
        headers=["|S|", "QL MS/s", "SARSA MS/s", "paper MS/s", "cycles/sample"],
        rows=rows,
        notes=[
            "cycles/sample is measured on the cycle-accurate pipeline "
            "(forwarding mode); its ~1.0 value is the paper's one-sample-"
            "per-clock claim, verified rather than assumed.",
            "Clock model f = 189 MHz * (1 - 0.199 * util^0.62), calibrated "
            "once against this figure's Q-Learning series.",
            "Paper plots 16384 in Fig. 4 but omits it in Fig. 6.",
        ],
    )
