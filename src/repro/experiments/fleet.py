"""Fleet-scale independent learning with the vectorised batch engine.

Extends Fig. 9 to the fleet sizes the device can actually host: the
batch simulator advances up to the xcvu13p's BRAM-bound pipeline count
in numpy lock-step (bit-identical per lane to the scalar engine), so a
"full device" training run is measurable on a laptop.

Engines come from :func:`repro.core.make_engine` — the fleet rows use
the default ``backend="vectorized"`` array program, and the closing
note quotes its measured speedup over ``backend="scalar"`` (the
pure-Python lane loop) so the table's K-samples/s have a baseline.
"""

from __future__ import annotations

import time

from ..core.config import QTAccelConfig
from ..core.engine import make_engine
from ..core.metrics import convergence_report
from ..core.multi_pipeline import max_independent_pipelines
from ..device.resources import estimate_resources
from ..device.timing import throughput
from ..envs.gridworld import GridWorld
from .registry import ExperimentResult, register


@register("fleet", "Fleet-scale independent learners (batch engine)")
def run(*, quick: bool = False) -> ExperimentResult:
    world = GridWorld.empty(16, 4)
    mdp = world.to_mdp()
    cfg = QTAccelConfig.qlearning(seed=17)
    samples = 10_000 if quick else 150_000
    device_bound = max_independent_pipelines(mdp, cfg)
    rows = []
    speedup_k = min(256, device_bound)
    vec_rate = None
    for k in (4, 16, 64, speedup_k):
        sim = make_engine(cfg, engine="batch", mdps=mdp, num_agents=k)
        t0 = time.perf_counter()
        sim.run(samples)
        dt = time.perf_counter() - t0
        if k == speedup_k:
            vec_rate = k * samples / dt
        worst = min(
            convergence_report(mdp, sim.q_float(a), gamma=cfg.gamma, samples=samples).success
            for a in range(0, k, max(1, k // 8))
        )
        rep = estimate_resources(mdp.num_states, mdp.num_actions, cfg, pipelines=k)
        est = throughput(rep, pipelines=k)
        rows.append(
            (
                k,
                round(k * samples / dt / 1e3, 0),
                round(worst, 3),
                rep.fits,
                round(est.msps, 0),
            )
        )

    # Price the array program against the scalar lane loop on a short
    # burst (the full workload would be minutes of pure Python).
    scalar_steps = max(1, (500 if quick else 5_000) // 1)
    scalar = make_engine(
        cfg, engine="batch", mdps=mdp, num_agents=speedup_k, backend="scalar"
    )
    t0 = time.perf_counter()
    scalar.run(max(1, scalar_steps // speedup_k))
    dt = time.perf_counter() - t0
    scalar_rate = speedup_k * max(1, scalar_steps // speedup_k) / dt
    speedup_note = (
        f"Vectorized backend at {speedup_k} agents: "
        f"{vec_rate / scalar_rate:.1f}x the scalar lane loop "
        f"({vec_rate / 1e3:.0f} vs {scalar_rate / 1e3:.0f} K-samples/s); "
        "full sweep: python -m repro.perf fleet."
        if vec_rate
        else "Vectorized speedup not measured (no fleet row at the probe size)."
    )

    return ExperimentResult(
        exp_id="fleet",
        title="Fleet-scale independent learners",
        headers=[
            "agents",
            "sim K-samples/s",
            "worst success",
            "fits xcvu13p",
            "model aggregate MS/s",
        ],
        rows=rows,
        notes=[
            f"Device bound for this tile size: {device_bound} pipelines "
            "(BRAM-limited, the Fig. 9 argument).",
            "Each lane of the batch engine is bit-identical to a scalar "
            "functional simulator with the same salt (tested).",
            speedup_note,
        ],
    )
