"""Fleet-scale independent learning with the vectorised batch engine.

Extends Fig. 9 to the fleet sizes the device can actually host: the
batch simulator advances up to the xcvu13p's BRAM-bound pipeline count
in numpy lock-step (bit-identical per lane to the scalar engine), so a
"full device" training run is measurable on a laptop.
"""

from __future__ import annotations

import time

from ..core.batch import BatchIndependentSimulator
from ..core.config import QTAccelConfig
from ..core.metrics import convergence_report
from ..core.multi_pipeline import max_independent_pipelines
from ..device.resources import estimate_resources
from ..device.timing import throughput
from ..envs.gridworld import GridWorld
from .registry import ExperimentResult, register


@register("fleet", "Fleet-scale independent learners (batch engine)")
def run(*, quick: bool = False) -> ExperimentResult:
    world = GridWorld.empty(16, 4)
    mdp = world.to_mdp()
    cfg = QTAccelConfig.qlearning(seed=17)
    samples = 10_000 if quick else 150_000
    device_bound = max_independent_pipelines(mdp, cfg)
    rows = []
    for k in (4, 16, 64, min(256, device_bound)):
        sim = BatchIndependentSimulator(mdp, cfg, num_agents=k)
        t0 = time.perf_counter()
        sim.run(samples)
        dt = time.perf_counter() - t0
        worst = min(
            convergence_report(mdp, sim.q_float(a), gamma=cfg.gamma, samples=samples).success
            for a in range(0, k, max(1, k // 8))
        )
        rep = estimate_resources(mdp.num_states, mdp.num_actions, cfg, pipelines=k)
        est = throughput(rep, pipelines=k)
        rows.append(
            (
                k,
                round(k * samples / dt / 1e3, 0),
                round(worst, 3),
                rep.fits,
                round(est.msps, 0),
            )
        )
    return ExperimentResult(
        exp_id="fleet",
        title="Fleet-scale independent learners",
        headers=[
            "agents",
            "sim K-samples/s",
            "worst success",
            "fits xcvu13p",
            "model aggregate MS/s",
        ],
        rows=rows,
        notes=[
            f"Device bound for this tile size: {device_bound} pipelines "
            "(BRAM-limited, the Fig. 9 argument).",
            "Each lane of the batch engine is bit-identical to a scalar "
            "functional simulator with the same salt (tested).",
        ],
    )
