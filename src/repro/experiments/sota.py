"""§VI-F — scalability and throughput versus the state of the art [11].

Two headline comparisons:

* **Throughput**: QTAccel retires one sample per cycle at the achieved
  clock; the baseline's FSM takes several cycles per update at a lower
  clock.  The paper reports ">15x".
* **Scalability**: the baseline is bounded by logic/DSPs (one FSM +
  multiplier per pair); QTAccel is bounded only by BRAM.  The paper
  reports 131,072 vs 132 supported states (>1000x) on similar devices.
"""

from __future__ import annotations

from ..baseline.model import (
    BASELINE_CLOCK_MHZ,
    baseline_max_states,
    baseline_throughput_msps,
)
from ..core.config import QTAccelConfig
from ..device.parts import XC6VLX240T, XC7VX690T, XCVU13P
from ..device.resources import estimate_resources, max_supported_states
from ..device.timing import throughput
from .cases import (
    SOTA_BASELINE_MAX_STATES,
    SOTA_QTACCEL_MAX_STATES,
    SOTA_THROUGHPUT_RATIO,
)
from .registry import ExperimentResult, register


@register("sota", "Scalability & throughput vs state of the art [11] (SVI-F)")
def run(*, quick: bool = False) -> ExperimentResult:
    cfg = QTAccelConfig.qlearning()
    rows = []
    for part in (XC6VLX240T, XC7VX690T, XCVU13P):
        qt_max = max_supported_states(4, cfg, part=part)
        base_max = baseline_max_states(4, part=part)
        rep = estimate_resources(132, 4, cfg, part=part)
        qt_msps = throughput(rep).msps
        base_msps = baseline_throughput_msps()
        rows.append(
            (
                part.name,
                qt_max,
                base_max,
                round(qt_max / max(1, base_max), 0),
                round(qt_msps, 1),
                round(base_msps, 1),
                round(qt_msps / base_msps, 1),
            )
        )
    uram_max = max_supported_states(8, cfg, part=XCVU13P, spill_to_uram=True)
    return ExperimentResult(
        exp_id="sota",
        title="Comparison with state of the art (SVI-F)",
        headers=[
            "device",
            "QTAccel max |S|",
            "baseline max |S|",
            "scale ratio",
            "QTAccel MS/s @132x4",
            "baseline MS/s",
            "speedup",
        ],
        rows=rows,
        notes=[
            f"Paper: {SOTA_QTACCEL_MAX_STATES} vs {SOTA_BASELINE_MAX_STATES} "
            f"states (>1000x) and >{SOTA_THROUGHPUT_RATIO:.0f}x throughput on "
            "similar devices; our models land at ~500x (Virtex-6) to ~680x "
            "(Virtex-7) and ~15x - same orders, different block-granularity "
            "assumptions.",
            f"URAM spill on xcvu13p supports |S| = {uram_max} at 8 actions "
            f"({uram_max * 8 / 1e6:.1f}M pairs), the paper's '10 million' "
            "§VI-C2 claim.",
            f"Baseline model: 1 DSP/pair, {BASELINE_CLOCK_MHZ:.0f} MHz FSM "
            "clock, 8 cycles/update; logic constants calibrated so 132x4 "
            "saturates the Virtex-6 LX240T (the paper's 'fully utilized').",
        ],
    )
