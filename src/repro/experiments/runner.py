"""Command-line runner: regenerate any paper table/figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig6
    python -m repro.experiments all [--quick]
    qtaccel-experiments table2 fig4 --quick
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from .registry import (
    ExperimentResult,
    experiment_ids,
    experiment_title,
    run_experiment,
)


def _serve_probe(session, *, quick: bool) -> None:
    """Drive a small serve load under an experiment's telemetry session.

    Runs sessions straight through the :class:`SessionManager` (no
    sockets — the counters, not the transport, are the artifact), so
    the exported profile's ``engines`` section carries the gateway
    session counters next to the experiment's own engine stats.
    """
    import random

    from ..core.config import QTAccelConfig
    from ..serve.session import SessionManager, build_serve_backend

    num_states, num_actions = 32, 4
    config = QTAccelConfig.qlearning(seed=11)
    backend = build_serve_backend(
        config,
        engine="vectorized",
        lanes=4,
        num_states=num_states,
        num_actions=num_actions,
        telemetry=session,
    )
    manager = SessionManager(backend, telemetry=session)
    rng = random.Random(17)
    n_sessions = 2 if quick else 6
    steps = 40 if quick else 200
    for _ in range(n_sessions):
        rec = manager.open()
        for _ in range(steps):
            s = rng.randrange(num_states)
            manager.learn(
                rec.sid,
                s,
                rng.randrange(num_actions),
                rng.uniform(-1.0, 1.0),
                rng.randrange(num_states),
                rng.random() < 0.05,
            )
            manager.act(rec.sid, s)
        manager.close(rec.sid)
    session.pulse()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qtaccel-experiments",
        description="Regenerate the QTAccel paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment ids, 'all', or 'list' (default)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sample counts (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write each artifact to DIR/<experiment>.txt",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help="collect telemetry per experiment and write "
        "DIR/<experiment>.profile.json + DIR/<experiment>.trace.json",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="with --telemetry: also drive a small session-gateway load "
        "under each experiment's telemetry session, so the profile "
        "artifact carries engine *and* serving counters",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort at the first failing experiment instead of "
        "continuing with the rest (the default is fail-soft: record "
        "the error, keep going, exit non-zero at the end)",
    )
    args = parser.parse_args(argv)
    if args.serve and not args.telemetry:
        parser.error("--serve requires --telemetry DIR")

    targets = args.experiments
    if targets == ["list"]:
        print("available experiments:")
        for eid in experiment_ids():
            print(f"  {eid:18s} {experiment_title(eid)}")
        return 0
    if targets == ["all"]:
        targets = experiment_ids()

    out_dir = None
    if args.output:
        import pathlib

        out_dir = pathlib.Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)

    tel_dir = None
    if args.telemetry:
        import pathlib

        tel_dir = pathlib.Path(args.telemetry)
        tel_dir.mkdir(parents=True, exist_ok=True)

    status = 0
    for eid in targets:
        session = None
        if tel_dir is not None:
            from ..telemetry import TelemetrySession

            session = TelemetrySession()
        t0 = time.perf_counter()
        try:
            result = run_experiment(eid, quick=args.quick, telemetry=session)
        except KeyError as exc:
            # Unknown id: a usage error, not an experiment failure.
            print(exc.args[0], file=sys.stderr)
            status = 2
            if args.fail_fast:
                return status
            continue
        except Exception:
            # Fail-soft: one broken experiment must not cost the whole
            # `all` sweep.  Emit the traceback where a human looks for
            # it, leave an error artifact where the table would be, and
            # exit non-zero once every other experiment has run.
            tb = traceback.format_exc()
            print(tb, file=sys.stderr)
            result = ExperimentResult(
                exp_id=eid,
                title=f"ERROR: {experiment_title(eid)}",
                headers=["error"],
                rows=[[tb.strip().splitlines()[-1]]],
                notes=["experiment raised; full traceback on stderr"],
            )
            status = 1
            if args.fail_fast:
                print(result.format())
                return status
        text = result.format()
        print(text)
        print(f"[{eid} took {time.perf_counter() - t0:.1f}s]")
        print()
        if out_dir is not None:
            (out_dir / f"{eid}.txt").write_text(text + "\n")
        if session is not None and args.serve:
            _serve_probe(session, quick=args.quick)
        if session is not None:
            session.export_profile(tel_dir / f"{eid}.profile.json")
            session.export_chrome_trace(tel_dir / f"{eid}.trace.json")
            from ..perf.snapshot import snapshot_from_profile, write_snapshot

            write_snapshot(
                snapshot_from_profile(session.profile(), source=f"experiment:{eid}"),
                tel_dir / f"{eid}.perf.json",
            )
            print(f"[telemetry: {tel_dir / (eid + '.profile.json')}]")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
