"""The cliff-walking split: algorithm-level validation on the datapath.

Sutton & Barto's cliff task (ref. [1] of the paper) separates the two
algorithms QTAccel implements by *behaviour*: Q-Learning's greedy policy
runs the shortest path along the cliff edge; SARSA's detours above it
because its on-policy values price in exploratory falls.  The paper
never validates learning outcomes — this experiment shows both
customisations reproduce their textbook signatures end to end through
the fixed-point pipeline semantics.
"""

from __future__ import annotations

from ..core.accelerator import QLearningAccelerator, SarsaAccelerator
from ..core.metrics import greedy_rollout
from ..envs.cliff import cliff_mdp, edge_hug_fraction
from .registry import ExperimentResult, register


@register("cliff", "Cliff walking: Q-Learning dares, SARSA detours")
def run(*, quick: bool = False) -> ExperimentResult:
    mdp = cliff_mdp(16, 4)
    start = int(mdp.start_states[0])
    # Q-Learning explores the cliff world by pure random walk, which
    # finds the distant goal rarely (falls teleport the walker back);
    # its budget cannot shrink as far in quick mode as SARSA's.
    learners = [
        (
            "qlearning (a=0.5)",
            QLearningAccelerator(mdp, alpha=0.5, gamma=1.0, seed=7),
            250_000 if quick else 500_000,
        ),
        (
            "sarsa e=0.1 (a=0.125)",
            SarsaAccelerator(
                mdp, alpha=0.125, gamma=1.0, epsilon=0.1, seed=7, qmax_mode="follow"
            ),
            250_000 if quick else 1_000_000,
        ),
    ]
    rows = []
    for name, acc, samples in learners:
        acc.run(samples)
        q = acc.q_values()
        ret, steps, ok = greedy_rollout(mdp, q, start, gamma=1.0, max_steps=200)
        rows.append(
            (
                name,
                samples,
                acc.episodes_completed,
                ok,
                steps if ok else None,
                round(ret, 1) if ok else None,
                round(edge_hug_fraction(mdp, q), 3),
            )
        )
    return ExperimentResult(
        exp_id="cliff",
        title="Cliff walking (Sutton & Barto 6.5)",
        headers=[
            "learner",
            "samples",
            "episodes",
            "reaches goal",
            "greedy steps",
            "greedy return",
            "edge-hug",
        ],
        rows=rows,
        notes=[
            "edge-hug = fraction of the greedy path spent on the row "
            "directly above the cliff: ~1.0 is the daring optimum "
            "(Q-Learning's signature), low values are the safe detour "
            "(SARSA's).",
            "alpha is per-algorithm: SARSA's sampled backup at gamma=1 "
            "needs the smaller fixed learning rate for its greedy "
            "extraction to stabilise (hardware has no alpha decay).",
            "Quick mode trains 2-4x shorter: both learners reach the goal "
            "but Q-Learning's edge-hug only saturates to ~1.0 at the full "
            "budget.",
        ],
    )
