"""Fig. 9 — N independent pipelines over partitioned sub-environments.

§VII-A's independent-learner mode: each agent owns a tile of the world
and a private BRAM region, so throughput scales linearly in N until the
aggregate tables exhaust the device's BRAM.  The experiment partitions a
world into N tiles, trains each, and reports aggregate model throughput
plus the device-imposed bound on N.
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..core.metrics import convergence_report
from ..core.multi_pipeline import IndependentPipelines, max_independent_pipelines
from ..envs.gridworld import GridWorld
from ..envs.multi_agent import partition_grid
from .registry import ExperimentResult, register


@register("fig9", "N independent pipelines (Fig. 9)")
def run(*, quick: bool = False) -> ExperimentResult:
    world_side = 32
    rows = []
    for n in (1, 4, 16):
        tiles = partition_grid(world_side, n, 4)
        # Per-tile sample budget proportional to the tile's table size.
        samples = tiles[0].num_states * (20 if quick else 200)
        cfg = QTAccelConfig.qlearning(seed=31)
        pipes = IndependentPipelines(tiles, cfg)
        pipes.run(samples)
        est = pipes.throughput_estimate()
        convs = [
            convergence_report(t, pipes.q_float(i), gamma=cfg.gamma, samples=samples)
            for i, t in enumerate(tiles)
        ]
        rows.append(
            (
                n,
                f"{tiles[0].num_states}x{tiles[0].num_actions}",
                pipes.fits_device(),
                round(est.msps, 1),
                round(min(c.success for c in convs), 3),
                round(sum(c.agreement for c in convs) / len(convs), 3),
            )
        )
    cfg = QTAccelConfig.qlearning()
    bound_small = max_independent_pipelines(GridWorld.empty(64, 4).to_mdp(), cfg)
    bound_big = max_independent_pipelines(GridWorld.empty(256, 4).to_mdp(), cfg)
    return ExperimentResult(
        exp_id="fig9",
        title="Independent learners (Fig. 9)",
        headers=["N", "tile", "fits", "aggregate MS/s", "min success", "mean agree"],
        rows=rows,
        notes=[
            "Aggregate throughput scales ~linearly with N (shared clock, "
            "one sample per pipeline per cycle).",
            f"Device bound: {bound_small} pipelines of 64x64 tiles or "
            f"{bound_big} of 256x256 tiles fit an xcvu13p's BRAM — the "
            "paper's 'N is upper bounded by available BRAM blocks'.",
        ],
    )
