"""Per-table/per-figure experiment harness (the DESIGN.md index).

``python -m repro.experiments list`` enumerates everything; each
experiment regenerates one paper artifact with paper reference values
alongside, via :func:`repro.experiments.run_experiment`.
"""

from .registry import (
    ExperimentResult,
    experiment_ids,
    experiment_title,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "experiment_ids",
    "experiment_title",
    "run_experiment",
]
