"""Table II's *why*: a trace-driven cache model of the CPU decline.

§VI-E explains the CPU baseline's throughput decline with cache
capacity ("256KB L2 and 6MB L3 cannot hold all data ... bounded by
off-chip data accesses").  This experiment tests that explanation:

1. measure the real nested-dict baseline across the Table II sizes;
2. replay its access pattern through the set-associative L1/L2/L3 model
   (:mod:`repro.reference.cache_model`);
3. calibrate the one free constant — the interpreter's
   state-size-independent cost — on the smallest case only;
4. compare the model's predicted decline against the measured one.

Result (also visible in the hit-rate columns): capacity misses do drive
the decline, but trajectory locality (consecutive samples share a row;
random walks revisit neighbourhoods) keeps the miss rate far below a
uniform-access estimate — which is why the decline is gentle, and why
the paper's CPU numbers fall by only ~30 % over a 4096x working-set
growth.
"""

from __future__ import annotations

from ..envs.gridworld import GridWorld
from ..reference.cache_model import CacheHierarchy, qlearning_trace_cycles
from .cases import grid_side
from .registry import ExperimentResult, register
from .table2 import measure_cpu_sps

SIZES = (64, 1024, 16384, 262144)
CLOCK_GHZ = 2.3  # the paper's i5; only scales the memory term


@register("table2_cache", "Cache model of the Table II CPU decline")
def run(*, quick: bool = False) -> ExperimentResult:
    samples = 15_000 if quick else 120_000
    trace = 8_000 if quick else 30_000

    measured = {}
    mem_cycles = {}
    hit_rates = {}
    for s in SIZES:
        mdp = GridWorld.empty(grid_side(s), 4).to_mdp()
        measured[s] = measure_cpu_sps(s, 4, samples=samples)
        hierarchy = CacheHierarchy.paper_i5()
        mem_cycles[s] = qlearning_trace_cycles(mdp, trace, hierarchy=hierarchy)
        total = hierarchy.stats.accesses
        hit_rates[s] = tuple(
            hierarchy.stats.hits[name] / total for name in ("L1", "L2", "L3")
        )

    # Calibrate the interpreter constant on the smallest case only.
    interp_ns = 1e9 / measured[SIZES[0]] - mem_cycles[SIZES[0]] / CLOCK_GHZ

    rows = []
    for s in SIZES:
        model_sps = 1e9 / (interp_ns + mem_cycles[s] / CLOCK_GHZ)
        l1, l2, l3 = hit_rates[s]
        rows.append(
            (
                s,
                round(measured[s] / 1e3, 1),
                round(model_sps / 1e3, 1),
                round(mem_cycles[s], 0),
                round(l1, 3),
                round(l2, 3),
                round(l3, 3),
                round(1.0 - l1 - l2 - l3, 3),
            )
        )
    decline_meas = 1.0 - measured[SIZES[-1]] / measured[SIZES[0]]
    decline_model = 1.0 - (
        (interp_ns + mem_cycles[SIZES[0]] / CLOCK_GHZ)
        / (interp_ns + mem_cycles[SIZES[-1]] / CLOCK_GHZ)
    )
    return ExperimentResult(
        exp_id="table2_cache",
        title="Why the CPU declines (Table II analysis)",
        headers=[
            "|S|",
            "measured KS/s",
            "model KS/s",
            "mem cyc/sample",
            "L1 hit",
            "L2 hit",
            "L3 hit",
            "DRAM",
        ],
        rows=rows,
        notes=[
            f"Interpreter constant calibrated once at |S|=64: "
            f"{interp_ns:.0f} ns/sample; everything else is the trace-"
            "driven hierarchy.",
            f"Measured decline {decline_meas:.1%} vs modelled "
            f"{decline_model:.1%} from |S|=64 to 262144.",
            "Trajectory locality (s' of one sample is s of the next, and "
            "walks revisit neighbourhoods) keeps DRAM rates low even at "
            "100 MB working sets - capacity explains the decline's "
            "existence, locality its gentleness.",
        ],
    )
