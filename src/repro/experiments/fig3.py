"""Fig. 3 — Q-Learning resource utilisation and power vs state size.

The paper's claims: DSP usage is a constant 4 multipliers, logic/register
utilisation stays below 0.1 % even at 2M state-action pairs, and power
grows with the BRAM footprint.  The rows below come from the analytical
device model (see ``repro.device``); 8 actions, xcvu13p, as in §VI-C1.
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..device.power import power_mw
from ..device.resources import estimate_resources
from .cases import STATE_SIZES
from .registry import ExperimentResult, register


def _resource_rows(cfg: QTAccelConfig):
    rows = []
    for s in STATE_SIZES:
        rep = estimate_resources(s, 8, cfg)
        rows.append(
            (
                s,
                rep.dsp,
                round(rep.dsp_pct, 4),
                rep.ff,
                round(rep.ff_pct, 4),
                rep.lut,
                round(rep.lut_pct, 4),
                round(power_mw(rep), 1),
            )
        )
    return rows


@register("fig3", "Q-Learning resource utilisation & power vs |S| (8 actions)")
def run(*, quick: bool = False) -> ExperimentResult:
    cfg = QTAccelConfig.qlearning()
    return ExperimentResult(
        exp_id="fig3",
        title="Q-Learning resources (Fig. 3)",
        headers=["|S|", "DSP", "DSP %", "FF", "FF %", "LUT", "LUT %", "power mW"],
        rows=_resource_rows(cfg),
        notes=[
            "Paper claims: DSP fixed at 4; logic/registers < 0.1 % at the "
            "largest size; power rises with BRAM.  All three shapes hold.",
            "FF/LUT counts come from the calibrated logic model "
            "(repro.device.resources.logic_model); power from the "
            "activity model (repro.device.power).",
        ],
    )
