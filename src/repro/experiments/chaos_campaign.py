"""Chaos campaign experiment: partial failure above the tables.

The serving-stack counterpart of :mod:`~repro.experiments.fault_campaign`:
where that campaign upsets *bits in BRAM* and asks whether ECC keeps
training bit-identical, this one injects *system-level* faults — a
SIGSTOP'd (hung) shard worker, a SIGKILL'd worker, a TCP connection cut
mid-``learn_batch``, an overload burst, plus seeded extras — against a
live multi-tenant gateway and asks the deployment question from the
paper's target domains (planetary rovers, edge SoCs): does every tenant
still observe either **bit-exact** results or a **clean typed error**?

One row per fault class, reporting how often it was injected, the
detection/recovery counters it exercised, and the tenant-visible
outcome; the bottom rows give the campaign verdict.
"""

from __future__ import annotations

from ..chaos.campaign import run_chaos_campaign
from .registry import ExperimentResult, register


@register("chaos_campaign", "Serving-stack chaos campaign (faults above the tables)")
def run(quick: bool = False) -> ExperimentResult:
    seconds = 4.0 if quick else 8.0
    result = run_chaos_campaign(
        seed=20260808,
        seconds=seconds,
        lanes=4 if quick else 6,
        workers=2,
        burst_clients=8,
        num_states=32 if quick else 48,
        extras=2 if quick else 4,
    )
    tenants = result["tenants"]
    server = result["server"]
    backend = result["backend"]
    burst = result["burst"]
    schedule = result["schedule"]

    def count(kind: str) -> int:
        return sum(1 for entry in schedule if entry.endswith(kind))

    rows = [
        (
            "worker hang (SIGSTOP)",
            count("worker_hang"),
            f"hangs={backend['hangs']}",
            "killed + checkpoint-replay, bit-exact",
        ),
        (
            "worker crash (SIGKILL)",
            count("worker_kill"),
            f"restarts={backend['restarts']}",
            f"journal replay x{server['recoveries']}, bit-exact",
        ),
        (
            "conn cut mid-batch",
            count("conn_drop_mid_batch"),
            f"reconnects={sum(o.get('reconnects', 0) for o in tenants['outcomes'])}",
            "seq-idempotent retry, exactly-once",
        ),
        (
            "overload burst",
            count("overload_burst"),
            f"shed={server['sessions_shed']}",
            f"{burst['rejected']} clean at_capacity + retry_after",
        ),
        (
            "lane corruption scrub",
            count("lane_corrupt"),
            f"audits={server['audits']}",
            f"repairs={server['repairs']}",
        ),
        (
            "tenants bit-exact",
            tenants["verified"],
            "-",
            "end-state == functional-simulator replay",
        ),
        (
            "tenants clean-errored",
            tenants["clean"],
            "-",
            "typed refusal / bounded-retry abort",
        ),
        (
            "tenants failed uncleanly",
            tenants["failed"],
            "-",
            "MUST be 0",
        ),
    ]
    notes = [
        f"seeded schedule ({result['seed']}): {', '.join(schedule)}",
        "verdict: " + ("PASS" if result["ok"] else "; ".join(result["problems"])),
    ]
    return ExperimentResult(
        exp_id="chaos_campaign",
        title="Serving-stack chaos campaign (faults above the tables)",
        headers=["fault / outcome", "count", "detection", "tenant-visible result"],
        rows=rows,
        notes=notes,
    )
