"""Table I — the evaluation test cases.

Regenerates the case matrix with the derived quantities the rest of the
evaluation relies on: grid side, address bit split, pair counts and
table footprints for both action counts.
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..device.resources import table_bits_total
from ..envs.base import bits_for
from .cases import ACTION_SIZES, STATE_SIZES, grid_side
from .registry import ExperimentResult, register


@register("table1", "Test cases (|S| x |A| grid-world sizes)")
def run(*, quick: bool = False) -> ExperimentResult:
    cfg = QTAccelConfig.qlearning()
    rows = []
    for case, s in enumerate(STATE_SIZES, start=1):
        side = grid_side(s)
        for a in ACTION_SIZES:
            bits = table_bits_total(s, a, cfg)
            rows.append(
                (
                    case,
                    s,
                    a,
                    f"{side}x{side}",
                    bits_for(s),
                    bits_for(a),
                    s * a,
                    round(bits / 1024 / 1024, 3),
                )
            )
    return ExperimentResult(
        exp_id="table1",
        title="Test cases (Table I)",
        headers=["case", "|S|", "|A|", "grid", "state bits", "action bits", "pairs", "tables Mb"],
        rows=rows,
        notes=[
            "All Table I sizes are powers of four: square power-of-two grids "
            "with the paper's bit-packed (x, y) addressing.",
            "'tables Mb' is the bit-granular Q + reward + Qmax footprint at "
            "the default 16-bit Q format.",
        ],
    )
