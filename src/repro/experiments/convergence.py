"""Learning curves: convergence behaviour across engines and policies.

The paper asserts convergence properties in passing (§I: QRL "provides
theoretical guarantee with respect to convergence"; §VII-A: two shared
pipelines improve the convergence rate) without plotting them.  This
experiment produces the missing curves: goal-success versus training
samples for the three policy engines, and the single- versus
dual-pipeline comparison at equal wall-clock cycles.
"""

from __future__ import annotations

import numpy as np

from ..core.config import QTAccelConfig
from ..core.functional import FunctionalSimulator
from ..core.metrics import convergence_report
from ..core.multi_pipeline import run_shared_functional
from ..core.prob_policy import BoltzmannSimulator
from ..envs.gridworld import GridWorld
from .registry import ExperimentResult, register

#: Unicode block ramp for inline sparklines.
_BLOCKS = " .:-=+*#%@"


def sparkline(values, lo: float = 0.0, hi: float = 1.0) -> str:
    """Render a sequence in [lo, hi] as a character ramp."""
    span = max(hi - lo, 1e-12)
    out = []
    for v in values:
        idx = int((min(max(v, lo), hi) - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


@register("convergence", "Learning curves: engines, policies, pipelines")
def run(*, quick: bool = False) -> ExperimentResult:
    world = GridWorld.random(
        16, 4, obstacle_density=0.15, seed=2, wall_penalty=-20.0, step_reward=-1.0
    )
    mdp = world.to_mdp()
    total = 120_000 if quick else 600_000
    points = 8
    chunk = total // points
    q_star = mdp.optimal_q(0.9)

    def curve(sim, q_getter):
        successes = []
        for _ in range(points):
            sim.run(chunk)
            rep = convergence_report(
                mdp, q_getter(sim), gamma=0.9, samples=0, q_star=q_star
            )
            successes.append(rep.success)
        return successes

    rows = []
    engines = [
        ("qlearning", FunctionalSimulator(mdp, QTAccelConfig.qlearning(seed=7))),
        (
            "sarsa (follow)",
            FunctionalSimulator(mdp, QTAccelConfig.sarsa(seed=7, epsilon=0.2, qmax_mode="follow")),
        ),
        (
            "boltzmann T=40",
            BoltzmannSimulator(mdp, QTAccelConfig.sarsa(seed=7, qmax_mode="follow"), temperature=40.0),
        ),
        (
            "sarsa (paper qmax)",
            FunctionalSimulator(mdp, QTAccelConfig.sarsa(seed=7, epsilon=0.2)),
        ),
    ]
    for name, sim in engines:
        successes = curve(sim, lambda s: s.q_float())
        rows.append(
            (
                name,
                sparkline(successes),
                round(successes[0], 2),
                round(successes[len(successes) // 2], 2),
                round(successes[-1], 2),
            )
        )

    # Dual vs single pipeline at equal cycle budgets (§VII-A).
    cfg = QTAccelConfig.qlearning(seed=21)
    cycles = total // 8  # a deliberately tight budget so the gap shows
    res2 = run_shared_functional(mdp, cfg, cycles)  # 2 samples per cycle
    single = FunctionalSimulator(mdp, cfg)
    single.run(cycles)  # 1 sample per cycle
    rep2 = convergence_report(mdp, res2.q, gamma=0.9, samples=0, q_star=q_star)
    rep1 = convergence_report(mdp, single.q_float(), gamma=0.9, samples=0, q_star=q_star)
    rows.append(("2 shared pipes (equal cycles)", "-", None, None, round(rep2.success, 2)))
    rows.append(("1 pipe (equal cycles)", "-", None, None, round(rep1.success, 2)))

    return ExperimentResult(
        exp_id="convergence",
        title="Learning curves",
        headers=["engine", f"success over {total:,} samples", "early", "mid", "final"],
        rows=rows,
        notes=[
            "Sparkline ramp ' .:-=+*#%@' spans success 0..1, sampled at "
            f"{points} checkpoints.",
            "The paper-faithful monotonic-Qmax SARSA row stays flat: any "
            "negative-reward shaping pins its exploit action (the "
            "ablation_qmax finding); the follow rule restores the curve.",
            "The pipeline pair reproduces §VII-A's claim that two "
            "state-sharing agents converge faster per wall-clock cycle.",
        ],
    )
