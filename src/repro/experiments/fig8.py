"""Fig. 8 — two state-sharing pipelines on one dual-port Q table.

§VII-A's claims: two pipelines double the sample rate with no
configuration change; concurrent same-address writes are rare (collision
probability ~1/|S| for independently exploring agents) and are resolved
by arbitrary overwrite; convergence per wall-clock cycle improves.

The experiment runs the cycle-accurate dual pipeline, measures aggregate
samples/cycle, write/state collision rates, and compares convergence
against a single pipeline given the same number of cycles.
"""

from __future__ import annotations

from ..core.accelerator import QLearningAccelerator
from ..core.config import QTAccelConfig
from ..core.metrics import convergence_report
from ..core.multi_pipeline import SharedPipelines
from ..envs.gridworld import GridWorld
from .registry import ExperimentResult, register


@register("fig8", "State-sharing dual pipeline (Fig. 8)")
def run(*, quick: bool = False) -> ExperimentResult:
    rows = []
    # 2x2 is the §VII-A stress corner: with 4 states the two agents
    # collide constantly, and the paper predicts throughput/convergence
    # degrade toward a single pipeline's.  Larger worlds show the
    # collision rate vanish like 1/|S|.
    for side in (2, 8, 16, 32):
        # Convergence needs samples proportional to the table size.
        samples = max(2000, side * side * (20 if quick else 150))
        mdp = GridWorld.empty(side, 4).to_mdp()
        cfg = QTAccelConfig.qlearning(seed=21)
        shared = SharedPipelines(mdp, cfg)
        stats = shared.run(samples)
        conv2 = convergence_report(mdp, shared.q_float(), gamma=cfg.gamma, samples=stats.samples)

        single = QLearningAccelerator(mdp, seed=21)
        # Same wall-clock budget: the single pipeline gets the cycles the
        # dual one consumed, i.e. half the samples.
        single.run(stats.cycles, engine="functional")
        conv1 = single.convergence()

        rows.append(
            (
                f"{side}x{side}",
                round(stats.samples_per_cycle, 3),
                round(stats.collision_rate, 5),
                round(1.0 / mdp.num_states, 5),
                stats.write_collisions,
                round(conv2.agreement, 3),
                round(conv1.agreement, 3),
                round(conv2.success, 3),
                round(conv1.success, 3),
            )
        )
    return ExperimentResult(
        exp_id="fig8",
        title="Two state-sharing pipelines (Fig. 8)",
        headers=[
            "world",
            "samples/cycle",
            "state-collision rate",
            "1/|S|",
            "write collisions",
            "agree 2p",
            "agree 1p",
            "success 2p",
            "success 1p",
        ],
        rows=rows,
        notes=[
            "samples/cycle ~2.0 is the paper's 'effectively doubles the "
            "achievable throughput'.",
            "State-collision rate tracks the 1/|S| estimate and falls with "
            "world size — the paper's argument for why overwrite "
            "arbitration is harmless.",
            "'1p' columns give a single pipeline the same cycle budget "
            "(hence half the samples): the dual pipeline converges at "
            "least as well per wall-clock cycle.",
        ],
    )
