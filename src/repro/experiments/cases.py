"""The paper's test cases (Table I) and its printed figure values.

Table I enumerates seven state-space sizes — all powers of four, i.e.
square power-of-two grids up to 512 x 512 — each with 4 and 8 actions.
The reference dictionaries below transcribe every number the paper's
evaluation section prints, so experiment tables can show paper-vs-ours
side by side.  Values lost to OCR in our source text are ``None``.
"""

from __future__ import annotations

import math

#: Table I state-space sizes, smallest to largest.
STATE_SIZES: tuple[int, ...] = (64, 256, 1024, 4096, 16384, 65536, 262144)

#: Table I action counts.
ACTION_SIZES: tuple[int, ...] = (4, 8)


def grid_side(num_states: int) -> int:
    """Grid side for a Table I state count (all are perfect squares)."""
    side = math.isqrt(num_states)
    if side * side != num_states:
        raise ValueError(f"{num_states} is not a Table I (square) state count")
    return side


#: Fig. 4 — BRAM utilisation (%), |A| = 8 (same bars for Q-Learning and
#: SARSA).  The |S| = 256 bar is unreadable in our source text.
FIG4_BRAM_PCT: dict[int, float | None] = {
    64: 0.02,
    256: None,
    1024: 0.32,
    4096: 1.3,
    16384: 4.8,
    65536: 19.42,
    262144: 78.12,
}

#: Fig. 6 — throughput (MS/s), |A| = 8.  The figure plots six sizes.
FIG6_THROUGHPUT_MSPS: dict[int, float] = {
    64: 189.0,
    256: 187.0,
    1024: 187.0,
    4096: 186.0,
    65536: 175.0,
    262144: 156.0,
}

#: Table II — CPU (Python nested dict, 2.3 GHz i5) throughput in
#: samples/s, keyed by (|S|, |A|).
TABLE2_CPU_SPS: dict[tuple[int, int], float] = {
    (64, 4): 105.5e3,
    (1024, 4): 94.1e3,
    (16384, 4): 74.17e3,
    (262144, 4): 157.85e3,
    (64, 8): 105.80e3,
    (1024, 8): 88.1e3,
    (16384, 8): 70.25e3,
    (262144, 8): 152e3,
}

#: Table II — FPGA throughput in samples/s, keyed by (|S|, |A|).
TABLE2_FPGA_SPS: dict[tuple[int, int], float] = {
    (64, 4): 189e6,
    (1024, 4): 187e6,
    (16384, 4): 181e6,
    (262144, 4): 156e6,
    (64, 8): 189e6,
    (1024, 8): 186e6,
    (16384, 8): 179e6,
    (262144, 8): 153e6,
}

#: Fig. 7 — the (|S|, |A|) points of the DSP comparison with [11].
FIG7_CASES: tuple[tuple[int, int], ...] = ((12, 4), (12, 8), (56, 4), (56, 8), (132, 4))

#: §VI-F headline comparisons against [11].
SOTA_BASELINE_MAX_STATES = 132
SOTA_QTACCEL_MAX_STATES = 131_072
SOTA_THROUGHPUT_RATIO = 15.0
