"""§VII-B generalisation: the probability-table (Boltzmann) policy.

Runs the generic table-based engine — selection weights
``P(a|s) ∝ exp(Q/T)`` held in the third §IV-B BRAM table, sampled by the
``ceil(log2 |A|)``-cycle binary search — against SARSA on the same
world, and prices the extra table and the initiation-interval cost with
the device models.
"""

from __future__ import annotations

from ..core.config import QTAccelConfig
from ..core.metrics import convergence_report
from ..core.prob_policy import BoltzmannSimulator, selection_cycles
from ..core.functional import FunctionalSimulator
from ..device.resources import estimate_resources
from ..device.timing import throughput
from ..envs.gridworld import GridWorld
from .registry import ExperimentResult, register


@register("prob_policy", "Probability-table (Boltzmann) policy vs SARSA (SVII-B)")
def run(*, quick: bool = False) -> ExperimentResult:
    samples = 30_000 if quick else 250_000
    world = GridWorld.random(
        8, 4, obstacle_density=0.15, seed=2, wall_penalty=-20.0, step_reward=-1.0
    )
    mdp = world.to_mdp()
    rows = []

    for name, make in (
        (
            "boltzmann T=40",
            lambda: BoltzmannSimulator(
                mdp, QTAccelConfig.sarsa(seed=7, qmax_mode="follow"), temperature=40.0
            ),
        ),
        (
            "boltzmann T=10",
            lambda: BoltzmannSimulator(
                mdp, QTAccelConfig.sarsa(seed=7, qmax_mode="follow"), temperature=10.0
            ),
        ),
        (
            "sarsa e=0.2",
            lambda: FunctionalSimulator(
                mdp, QTAccelConfig.sarsa(seed=7, epsilon=0.2, qmax_mode="follow")
            ),
        ),
    ):
        sim = make()
        sim.run(samples)
        conv = convergence_report(mdp, sim.q_float(), gamma=0.9, samples=samples)
        is_prob = isinstance(sim, BoltzmannSimulator)
        cps = selection_cycles(mdp.num_actions) if is_prob else 1
        rep = estimate_resources(
            262144, 8, QTAccelConfig.sarsa(), prob_table=is_prob
        )
        est = throughput(rep, cycles_per_sample=cps)
        rows.append(
            (
                name,
                sim.stats.episodes,
                round(conv.agreement, 3),
                round(conv.success, 3),
                cps,
                round(est.msps, 1),
                round(rep.bram_pct, 1),
            )
        )
    return ExperimentResult(
        exp_id="prob_policy",
        title="Probability-table policy (SVII-B)",
        headers=[
            "engine",
            "episodes",
            "agreement",
            "success",
            "cycles/sample",
            "MS/s @262144x8",
            "BRAM %",
        ],
        rows=rows,
        notes=[
            "The probability policy costs ceil(log2 |A|) cycles of binary "
            "search per sample and a third |S| x |A| weight table - the "
            "two prices SIV-B/SVII-B name; the MS/s and BRAM columns "
            "quantify them at the paper's peak size.",
            "The cycles/sample figure is not just analytic: the cycle-"
            "accurate pipeline reproduces it when stage 2 is configured "
            "with the same selection latency (stage2_latency; tested).",
            "Lower temperature = greedier selection: T=10 finishes more "
            "episodes (earlier exploitation) but commits to its policy "
            "before the Q estimates settle, costing agreement - the "
            "classic exploration/exploitation trade, visible on chip.",
        ],
    )
