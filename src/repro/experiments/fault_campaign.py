"""SEU fault-injection campaign: convergence with and without ECC.

The experiment the robustness subsystem exists to answer: QTAccel keeps
its entire learned state in on-chip BRAM, so what does a realistic
single-event-upset process do to training — and does the standard
hardware defence (SECDED ECC with background scrubbing, the BRAM
macro's built-in option) actually neutralise it?

Protocol: one clean reference run, then for each injection rate a
matched pair of runs over the same (environment, config, seed) with the
same seeded fault process — one on unprotected tables, one on
ECC-protected tables with a background scrubber.  Upsets strike the
learned state (Q and Qmax tables, check bits included on the protected
runs); a final full scrub precedes measurement so latent (never again
read) upsets cannot hide in the readout.  The protected run is expected
to finish **bit-identical** to the clean run with zero uncorrectable
words; the unprotected run shows the damage.
"""

from __future__ import annotations

import numpy as np

from ..core.config import QTAccelConfig
from ..core.functional import FunctionalSimulator
from ..core.metrics import convergence_report
from ..envs.gridworld import GridWorld
from ..robustness.ecc import EccTableRam, Scrubber
from ..robustness.faults import FaultInjector
from .registry import ExperimentResult, register

#: Upsets per training sample.  The default rate is the headline
#: setting; the stress rate is 10x, far above anything physical, to
#: show where unprotected training falls apart and that ECC still holds.
DEFAULT_RATE = 1e-3
STRESS_RATE = 1e-2

#: Samples between scrubber bursts (and injector process updates).
CHUNK = 64


def _ecc_counts(tables) -> tuple[int, int]:
    corrected = detected = 0
    for ram in (tables.q, tables.rewards, tables.qmax, tables.qmax_action):
        if isinstance(ram, EccTableRam):
            corrected += ram.ecc_corrected
            detected += ram.ecc_detected
    return corrected, detected


def _campaign_run(
    mdp, cfg: QTAccelConfig, total: int, rate: float, *, fault_seed: int
):
    """One training run under injection.  Returns (sim, injector, scrubber)."""
    sim = FunctionalSimulator(mdp, cfg)
    injector = FaultInjector(seed=fault_seed, rate=rate)
    injector.add_tables(sim.tables, include=("q", "qmax", "qmax_action"))
    scrubber = None
    if cfg.ecc_tables:
        scrubber = Scrubber(burst=32)
        scrubber.add_tables(sim.tables)
    done = 0
    while done < total:
        n = min(CHUNK, total - done)
        sim.run(n)
        injector.step(n)
        if scrubber is not None:
            scrubber.step()
        done += n
    if scrubber is not None:
        # Final full sweep: correct latent upsets before the readout, so
        # the measurement sees what a checkpoint/readback would see.
        scrubber.scrub_all()
    return sim, injector, scrubber


@register("fault_campaign", "SEU injection vs convergence, with/without ECC")
def run(*, quick: bool = False) -> ExperimentResult:
    mdp = GridWorld.random(8, 4, obstacle_density=0.15, seed=2).to_mdp()
    total = 30_000 if quick else 150_000
    gamma = 0.9
    base = QTAccelConfig.qlearning(seed=5)
    q_star = mdp.optimal_q(gamma)

    def measure(sim):
        return convergence_report(
            mdp, sim.q_float(), gamma=gamma, samples=total, q_star=q_star
        )

    clean = FunctionalSimulator(mdp, base)
    clean.run(total)
    clean_q = clean.tables.q.data.copy()
    clean_rep = measure(clean)

    rows: list = [
        ("0", "none (clean)", 0, None, None, None, round(clean_rep.success, 3),
         round(clean_rep.rmse, 3), "ref"),
    ]
    zero_uncorrectable_at_default = None
    protected_matches_clean_at_default = None

    for rate in (DEFAULT_RATE, STRESS_RATE):
        for protected in (False, True):
            cfg = base.with_(ecc_tables=protected)
            sim, injector, scrubber = _campaign_run(
                mdp, cfg, total, rate, fault_seed=101
            )
            rep = measure(sim)
            corrected, detected = _ecc_counts(sim.tables)
            matches = bool(np.array_equal(sim.tables.q.data, clean_q))
            rows.append(
                (
                    f"{rate:g}",
                    "ecc+scrub" if protected else "none",
                    injector.injected,
                    corrected if protected else None,
                    detected if protected else None,
                    scrubber.scrub_repairs if scrubber is not None else None,
                    round(rep.success, 3),
                    round(rep.rmse, 3),
                    "yes" if matches else "no",
                )
            )
            if protected and rate == DEFAULT_RATE:
                zero_uncorrectable_at_default = detected == 0
                protected_matches_clean_at_default = matches

    notes = [
        f"{total:,} samples per run; upsets are Poisson at the given "
        f"rate/sample, uniform over the Q/Qmax storage bits (check bits "
        f"included when protected); scrub burst of 32 words every "
        f"{CHUNK} samples.",
        "'detected' counts uncorrectable (>=2-bit) words — the headline "
        "claim is that at the default rate this is 0 and the protected "
        "run ends bit-identical ('=clean') to the fault-free table.",
        "Unprotected runs show the damage directly: single flips in "
        "high-order Q bits redirect the greedy policy and survive to "
        "the end of training.",
    ]
    if zero_uncorrectable_at_default is not None:
        notes.append(
            "Headline check at default rate: zero uncorrectable = "
            f"{zero_uncorrectable_at_default}, protected table bit-identical "
            f"to clean = {protected_matches_clean_at_default}."
        )

    return ExperimentResult(
        exp_id="fault_campaign",
        title="SEU injection vs convergence",
        headers=[
            "rate/sample",
            "protection",
            "injected",
            "corrected",
            "uncorrectable",
            "scrub_repairs",
            "success",
            "rmse",
            "=clean",
        ],
        rows=rows,
        notes=notes,
    )
