"""§VII-B — Multi-Armed Bandit generalisation (5G channel selection).

The paper argues QTAccel adapts to MAB problems with only a reward-path
change (LFSR-summed normal rewards) and, for probability-based policies
like EXP3, a third probability table sampled by binary search in
``log2 M`` cycles.  The experiment runs e-greedy and EXP3 accelerators
on the 5G channel-selection scenario, reporting regret and best-arm
rates, plus the modelled throughput cost of the probability policy.
"""

from __future__ import annotations

import numpy as np

from ..core.bandit_accel import (
    EpsilonGreedyBanditAccelerator,
    Exp3Accelerator,
    Ucb1Accelerator,
    bandit_cycles_per_sample,
)
from ..core.config import QTAccelConfig
from ..device.resources import estimate_resources
from ..device.timing import throughput
from ..envs.bandits import channel_selection_env
from .registry import ExperimentResult, register


@register("mab", "Multi-armed bandits on QTAccel (SVII-B, 5G channels)")
def run(*, quick: bool = False) -> ExperimentResult:
    pulls = 2_000 if quick else 20_000
    rows = []
    for m in (4, 8, 16):
        env_e = channel_selection_env(m, seed=7)
        eg = EpsilonGreedyBanditAccelerator(env_e, epsilon=0.1, seed=7)
        r_e = eg.run(pulls)
        env_x = channel_selection_env(m, seed=7)
        ex = Exp3Accelerator(env_x, gamma_exp=0.15, reward_range=(0.0, 8.0), seed=7)
        r_x = ex.run(pulls)
        env_u = channel_selection_env(m, seed=7)
        ub = Ucb1Accelerator(env_u, c=2.0)
        r_u = ub.run(pulls)

        cfg = QTAccelConfig.qlearning()
        rep = estimate_resources(1, m, cfg)
        t_greedy = throughput(rep, cycles_per_sample=bandit_cycles_per_sample(m, probability_policy=False))
        t_prob = throughput(rep, cycles_per_sample=bandit_cycles_per_sample(m, probability_policy=True))

        rows.append(
            (
                m,
                round(float(r_e.cumulative_regret(env_e)[-1]), 1),
                round(float(np.mean(r_e.chosen == env_e.best_arm)), 3),
                round(float(r_x.cumulative_regret(env_x)[-1]), 1),
                round(float(np.mean(r_x.chosen == env_x.best_arm)), 3),
                round(float(r_u.cumulative_regret(env_u)[-1]), 1),
                round(t_greedy.msps, 1),
                round(t_prob.msps, 1),
            )
        )
    return ExperimentResult(
        exp_id="mab",
        title="MAB on QTAccel (SVII-B)",
        headers=[
            "arms",
            "e-greedy regret",
            "e-greedy best%",
            "EXP3 regret",
            "EXP3 best%",
            "UCB1 regret",
            "MS/s (e-greedy)",
            "MS/s (prob policy)",
        ],
        rows=rows,
        notes=[
            "UCB1 is the 'more MAB variants' future-work item implemented: "
            "a count-indexed LUT index policy, far lower regret than both "
            "LFSR-randomised policies on stationary channels.",
            "Rewards are drawn through the CLT normal sampler (summed LFSR "
            "uniforms), the paper's on-chip reward circuit.",
            "The probability-table policy pays ceil(log2 M) cycles of "
            "binary search per sample - the throughput gap the paper's "
            "future-work section promises to close.",
            "Regret is sublinear for both policies (the property tests "
            "check the halves-ratio).",
        ],
    )
