"""Table II — CPU (Python nested-dict) vs FPGA throughput.

The CPU side is *measured live*: the same nested-dict Q-Learning the
paper describes (state keys are coordinate tuples), timed on this
machine.  The FPGA side comes from the calibrated model.  Absolute CPU
numbers differ from the paper's 2015-era i5; the reproduction targets
are (a) the 3-orders-of-magnitude FPGA/CPU gap and (b) the CPU's decline
with |S| as the tables fall out of cache.
"""

from __future__ import annotations

import time

from ..core.config import QTAccelConfig
from ..device.resources import estimate_resources
from ..device.timing import throughput
from ..envs.gridworld import GridWorld
from ..reference.qlearning import DictQLearning
from .cases import TABLE2_CPU_SPS, TABLE2_FPGA_SPS, grid_side
from .registry import ExperimentResult, register

TABLE2_SIZES = (64, 1024, 16384, 262144)


def measure_cpu_sps(num_states: int, num_actions: int, *, samples: int, seed: int = 1) -> float:
    """Measured samples/s of the dict-based Python Q-Learning."""
    mdp = GridWorld.empty(grid_side(num_states), num_actions).to_mdp()
    learner = DictQLearning(mdp, seed=seed)
    learner.run(min(2000, samples))  # warm the dict and the caches
    t0 = time.perf_counter()
    learner.run(samples)
    dt = time.perf_counter() - t0
    return samples / dt


@register("table2", "Throughput comparison with the CPU baseline")
def run(*, quick: bool = False) -> ExperimentResult:
    samples = 20_000 if quick else 200_000
    cfg = QTAccelConfig.qlearning()
    rows = []
    for a in (4, 8):
        for s in TABLE2_SIZES:
            cpu = measure_cpu_sps(s, a, samples=samples)
            rep = estimate_resources(s, a, cfg)
            fpga = throughput(rep).samples_per_sec
            rows.append(
                (
                    f"|S|={s} |A|={a}",
                    round(cpu / 1e3, 1),
                    round(TABLE2_CPU_SPS[(s, a)] / 1e3, 1),
                    round(fpga / 1e6, 1),
                    round(TABLE2_FPGA_SPS[(s, a)] / 1e6, 1),
                    round(fpga / cpu, 0),
                )
            )
    return ExperimentResult(
        exp_id="table2",
        title="CPU vs FPGA throughput (Table II)",
        headers=[
            "case",
            "CPU KS/s (ours)",
            "CPU KS/s (paper)",
            "FPGA MS/s (ours)",
            "FPGA MS/s (paper)",
            "speedup",
        ],
        rows=rows,
        notes=[
            "CPU numbers are measured on this machine with the paper's "
            "nested-dict implementation; expect them above the paper's "
            "2015 i5 figures by the generational CPU gap.",
            "The paper's anomalous CPU *rise* at |S|=262144 (157.85 KS/s) "
            "is an artifact of their short-run dict warm-up; steady-state "
            "runs decline monotonically with |S|.",
        ],
    )
