"""Analytical resource model of a QTAccel instance (Figs. 3, 4, 5).

The paper's resource results decompose cleanly:

* **DSP** — exactly 4 multipliers regardless of problem size (§V-A,
  Fig. 3): ``alpha * gamma`` in stage 1 plus the three stage-3 products.
* **BRAM** — the Q, reward and Qmax tables, allocated at block
  granularity (Fig. 4 grows linearly with ``|S| x |A|``).  We report both
  the block-granular count (what the tools consume) and the raw bit view
  (what the paper's percentages reduce to at small sizes).
* **FF / LUT** — a fixed pipeline skeleton plus terms that grow only with
  the *address widths* (log of the problem size), which is why the paper
  sees <0.1 % logic even at 2M pairs.  SARSA adds the e-greedy LFSR and
  comparator (Fig. 5's slightly higher register count).

The FF/LUT constants are calibrated, not synthesised — they reproduce
the order of magnitude and the flat-with-size shape the paper reports,
which is all Figs. 3/5 claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..envs.base import bits_for
from ..rtl.memory import BRAM36, URAM288, BlockKind
from ..core.config import QTAccelConfig
from .parts import FpgaPart, XCVU13P

#: The four datapath multipliers (§V-A), one DSP each.
DATAPATH_DSPS = 4


def datapath_dsps(config: QTAccelConfig) -> int:
    """Stage-3 multiplier count for the configured update rule.

    The plain rules keep the paper's flat 4 DSPs; accelerated rules add
    their declared extra products (momentum: +1 for ``b * (Q - M)``;
    target: +2 for the stage-4 Polyak read-modify-write) — still flat
    with problem size, which is the Fig. 3 claim being preserved.
    """
    return DATAPATH_DSPS + config.rule.device_cost.extra_dsps


@dataclass(frozen=True)
class ResourceReport:
    """Resource usage of one accelerator instance on one device."""

    part: FpgaPart
    num_states: int
    num_actions: int
    algorithm: str
    dsp: int
    bram_blocks: int
    bram_bits: int
    uram_blocks: int
    ff: int
    lut: int

    @property
    def dsp_pct(self) -> float:
        return 100.0 * self.dsp / self.part.dsp

    @property
    def bram_pct(self) -> float:
        """Block-granular BRAM utilisation (the scheduling reality)."""
        return 100.0 * self.bram_blocks / self.part.bram36

    @property
    def bram_bits_pct(self) -> float:
        """Bit-granular utilisation (the paper's Fig. 4 number at small
        sizes, where block quantisation dominates)."""
        return 100.0 * self.bram_bits / self.part.bram_bits

    @property
    def uram_pct(self) -> float:
        return 100.0 * self.uram_blocks / self.part.uram if self.part.uram else 0.0

    @property
    def ff_pct(self) -> float:
        return 100.0 * self.ff / self.part.ffs

    @property
    def lut_pct(self) -> float:
        return 100.0 * self.lut / self.part.luts

    @property
    def fits(self) -> bool:
        return (
            self.dsp <= self.part.dsp
            and self.bram_blocks <= self.part.bram36
            and self.uram_blocks <= self.part.uram
            and self.ff <= self.part.ffs
            and self.lut <= self.part.luts
        )

    def format(self) -> str:
        """A synthesis-tool-style utilisation report."""
        rows = [
            ("DSP48", self.dsp, self.part.dsp, self.dsp_pct),
            ("BRAM36", self.bram_blocks, self.part.bram36, self.bram_pct),
            ("URAM", self.uram_blocks, self.part.uram, self.uram_pct),
            ("FF", self.ff, self.part.ffs, self.ff_pct),
            ("LUT", self.lut, self.part.luts, self.lut_pct),
        ]
        body = [f"| {'resource':8s} | {'used':>10s} | {'available':>10s} | {'util %':>8s} |"]
        for name, used, avail, pct in rows:
            if avail == 0 and used == 0:
                continue
            body.append(f"| {name:8s} | {used:10,d} | {avail:10,d} | {pct:8.3f} |")
        width = len(body[0])
        verdict = "fits" if self.fits else "DOES NOT FIT"
        lines = [
            f"utilisation: {self.algorithm} |S|={self.num_states:,} "
            f"|A|={self.num_actions} on {self.part.name}",
            "+" + "-" * (width - 2) + "+",
        ]
        lines.extend(body)
        lines.append(f"| design {verdict:>{width - 11}s} |")
        lines.append("+" + "-" * (width - 2) + "+")
        return "\n".join(lines)


def table_blocks(
    num_states: int,
    num_actions: int,
    config: QTAccelConfig,
    *,
    kind: BlockKind = BRAM36,
    prob_table: bool = False,
) -> int:
    """Block count of the full on-chip table set.

    Q table and reward table are ``|S| x |A|`` words of the Q format;
    Qmax value is ``|S|`` words; the Qmax *argmax-action* array
    (``|S| x log2|A|``) is present for e-greedy update policies (SARSA)
    and for the target rule (whose bootstrap indexes the target table at
    the cached online argmax), since Q-Learning's greedy update consumes
    the value alone.  The configured update rule's extra pair tables
    (momentum iterate, Polyak target — see ``config.rule.device_cost``)
    are full ``|S| x |A|`` Q-format tables.  ``prob_table`` adds the
    third ``|S| x |A|`` table of §IV-B for probability-distribution
    policies (Boltzmann, EXP3, eq. 4).
    """
    pairs = num_states * num_actions
    qw = config.q_format.wordlen
    n_pair_tables = 2 + config.rule.device_cost.extra_pair_tables
    blocks = n_pair_tables * kind.blocks_for(pairs, qw)  # Q + rewards + rule
    blocks += kind.blocks_for(num_states, qw)  # Qmax value
    if config.update_policy == "egreedy" or config.rule.kind == "target":
        blocks += kind.blocks_for(num_states, max(1, bits_for(num_actions)))
    if prob_table:
        blocks += kind.blocks_for(pairs, 16)  # quantised weight entries
    return blocks


def table_bits_total(num_states: int, num_actions: int, config: QTAccelConfig) -> int:
    """Raw payload bits of the table set (bit-granular Fig. 4 view)."""
    pairs = num_states * num_actions
    qw = config.q_format.wordlen
    n_pair_tables = 2 + config.rule.device_cost.extra_pair_tables
    bits = n_pair_tables * pairs * qw + num_states * qw
    if config.update_policy == "egreedy" or config.rule.kind == "target":
        bits += num_states * max(1, bits_for(num_actions))
    return bits


def logic_model(
    num_states: int, num_actions: int, config: QTAccelConfig
) -> tuple[int, int]:
    """Calibrated FF / LUT counts of the pipeline skeleton.

    Fixed costs: three inter-stage register banks carrying the sample
    (state, action, two Q words, reward), four coefficient registers,
    control.  Size-dependent costs grow only with address widths.  SARSA
    adds the e-greedy LFSR + threshold comparator.
    """
    sb = bits_for(num_states)
    ab = bits_for(num_actions)
    qw = config.q_format.wordlen
    cw = config.coef_format.wordlen
    w = config.lfsr_width

    # Register banks: (s, a, s', q_sa, r, a', q_next, flags) x 3 stages.
    sample_bits = 2 * sb + 2 * ab + 3 * qw + 4
    ff = 3 * sample_bits + 4 * cw + 48  # + control FSM/valid bits
    ff += w + sb  # start-state LFSR + behaviour-action LFSR (shared trims)
    lut = 6 * sample_bits + 20 * ab + 12 * sb + 160  # muxing + transition fn
    if config.update_policy == "egreedy":
        ff += w + 8  # policy LFSR + epsilon threshold register
        lut += 3 * w  # threshold comparator + index mux
    return ff, lut


def estimate_resources(
    num_states: int,
    num_actions: int,
    config: QTAccelConfig,
    *,
    part: FpgaPart = XCVU13P,
    pipelines: int = 1,
    spill_to_uram: bool = False,
    prob_table: bool = False,
) -> ResourceReport:
    """Full resource report for ``pipelines`` QTAccel instances.

    In the state-sharing dual-pipeline mode the tables are shared (pass
    ``pipelines=2`` with ``shared_tables=True`` semantics via
    :func:`estimate_shared`); this function models *independent* table
    sets per pipeline.

    ``spill_to_uram`` moves the large pair tables (Q + rewards) to URAM —
    the §VI-C2 pathway to ~10M state-action pairs — leaving Qmax in BRAM.
    ``prob_table`` adds the probability-distribution table (§IV-B).
    """
    blocks = table_blocks(num_states, num_actions, config, prob_table=prob_table)
    bits = table_bits_total(num_states, num_actions, config)
    if prob_table:
        bits += num_states * num_actions * 16
    ff, lut = logic_model(num_states, num_actions, config)
    uram_blocks = 0
    if spill_to_uram:
        pairs = num_states * num_actions
        qw = config.q_format.wordlen
        n_pair = 2 + config.rule.device_cost.extra_pair_tables
        uram_blocks = n_pair * URAM288.blocks_for(pairs, qw)
        blocks -= n_pair * BRAM36.blocks_for(pairs, qw)
    return ResourceReport(
        part=part,
        num_states=num_states,
        num_actions=num_actions,
        algorithm=config.algorithm,
        dsp=datapath_dsps(config) * pipelines,
        bram_blocks=blocks * pipelines,
        bram_bits=bits * pipelines,
        uram_blocks=uram_blocks * pipelines,
        ff=ff * pipelines,
        lut=lut * pipelines,
    )


def estimate_shared(
    num_states: int,
    num_actions: int,
    config: QTAccelConfig,
    *,
    part: FpgaPart = XCVU13P,
) -> ResourceReport:
    """Resources of the Fig. 8 state-sharing mode: two pipelines, one
    table set (the dual-port BRAM is simply used on both ports)."""
    single = estimate_resources(num_states, num_actions, config, part=part)
    ff, lut = logic_model(num_states, num_actions, config)
    return ResourceReport(
        part=part,
        num_states=num_states,
        num_actions=num_actions,
        algorithm=config.algorithm,
        dsp=2 * datapath_dsps(config),
        bram_blocks=single.bram_blocks,
        bram_bits=single.bram_bits,
        uram_blocks=single.uram_blocks,
        ff=2 * ff,
        lut=2 * lut,
    )


def max_supported_states(
    num_actions: int,
    config: QTAccelConfig,
    *,
    part: FpgaPart = XCVU13P,
    spill_to_uram: bool = False,
) -> int:
    """Largest power-of-two ``|S|`` whose tables fit the device (§VI-F).

    Doubles ``|S|`` until the report stops fitting; returns the last fit.
    """
    s = 2
    best = 0
    while True:
        rep = estimate_resources(
            s, num_actions, config, part=part, spill_to_uram=spill_to_uram
        )
        if not rep.fits:
            return best
        best = s
        s *= 2
        if s > 1 << 30:  # safety: something is wrong with the model
            return best
