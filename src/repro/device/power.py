"""Activity-based power model (the power series of Figs. 3 and 5).

The paper reports dynamic power rising with state-space size (more BRAM
columns switching) and slightly higher for SARSA (the extra LFSR and
comparator toggling every cycle).  We reproduce that shape with the
standard first-order activity model

    P = P_static + (c_bram * blocks + c_dsp * dsps + c_ff * ffs
                    + c_lut * luts) * (f / f_ref)

The coefficients are synthetic calibrations (documented here, used
nowhere else): they place the smallest design near ~45 mW and the
largest near ~230 mW, matching the magnitude and monotonicity of the
paper's bars.  Shape, not absolute wattage, is the reproduction target.
"""

from __future__ import annotations

from .resources import ResourceReport
from .timing import clock_mhz, wall_time_s

#: Static leakage floor of the power model (mW).
P_STATIC_MW = 30.0
#: Dynamic energy coefficients at the reference clock (mW per unit).
C_BRAM_MW = 0.085  # per active BRAM36 block
C_DSP_MW = 2.4  # per DSP slice
C_FF_MW = 0.004  # per flip-flop
C_LUT_MW = 0.002  # per LUT
#: Reference clock for the coefficients (MHz).
F_REF_MHZ = 189.0


def power_mw(report: ResourceReport, *, clock: float | None = None) -> float:
    """Modelled total power (mW) of one accelerator instance.

    ``clock`` defaults to the timing model's achieved frequency for the
    report's BRAM utilisation, so bigger designs both draw more per cycle
    and cycle slower — exactly the two competing effects behind the
    near-linear power growth in Fig. 3.
    """
    if clock is None:
        clock = clock_mhz(report.bram_blocks / report.part.bram36, part=report.part)
    dynamic = (
        C_BRAM_MW * report.bram_blocks
        + C_DSP_MW * report.dsp
        + C_FF_MW * report.ff
        + C_LUT_MW * report.lut
    )
    return P_STATIC_MW + dynamic * (clock / F_REF_MHZ)


def energy_mj(report: ResourceReport, cycles: int, *, clock: float | None = None) -> float:
    """Modelled energy (millijoules) for a run of ``cycles`` clock cycles.

    The telemetry join: measured cycles x modelled power at the modelled
    clock (mW x s = mJ).  QForce-RL-style energy-per-sample reporting
    falls out as ``energy_mj(...) / retired``.
    """
    if clock is None:
        clock = clock_mhz(report.bram_blocks / report.part.bram36, part=report.part)
    return power_mw(report, clock=clock) * wall_time_s(cycles, clock)
