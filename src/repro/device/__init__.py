"""FPGA device models: part catalog, resource estimation, clock/timing
and power, calibrated once against the paper's reported curves (see each
module's docstring for the calibration provenance).
"""

from .parts import PARTS, XC6VLX240T, XC7VX690T, XCVU13P, FpgaPart
from .power import power_mw
from .resources import (
    DATAPATH_DSPS,
    ResourceReport,
    estimate_resources,
    estimate_shared,
    logic_model,
    max_supported_states,
    table_bits_total,
    table_blocks,
)
from .timing import ThroughputEstimate, clock_mhz, throughput

__all__ = [
    "FpgaPart",
    "PARTS",
    "XCVU13P",
    "XC7VX690T",
    "XC6VLX240T",
    "ResourceReport",
    "estimate_resources",
    "estimate_shared",
    "table_blocks",
    "table_bits_total",
    "logic_model",
    "max_supported_states",
    "DATAPATH_DSPS",
    "clock_mhz",
    "throughput",
    "ThroughputEstimate",
    "power_mw",
]
