"""Clock-frequency and throughput model (Fig. 6).

The pipeline retires one sample per cycle, so throughput in MS/s equals
the achieved clock in MHz divided by the measured cycles-per-sample
(1.0 for ``hazard_mode="forward"``).  The clock itself degrades as BRAM
utilisation grows — §VI-D attributes the drop at very large state spaces
to routing pressure once a large fraction of the device's BRAM columns
participate in one logical RAM.

We model the degradation as

    f(util) = f_base * (1 - BETA * util**P)

with ``util`` the block-granular BRAM fraction.  ``BETA = 0.199`` and
``P = 0.62`` are calibrated once against the six Fig. 6 Q-Learning points
(189, 187, 187, 186, 175, 156 MS/s for |S| = 64 ... 262144 at 8 actions);
the fit reproduces every point within 1 MS/s and is shared, uncalibrated,
by every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parts import FpgaPart, XCVU13P
from .resources import ResourceReport

#: Calibrated routing-degradation constants (see module docstring).
BETA = 0.199
P = 0.62

#: No design in this family closes timing below this floor.
MIN_CLOCK_MHZ = 40.0


def clock_mhz(bram_utilization: float, *, part: FpgaPart = XCVU13P) -> float:
    """Achievable clock for a design occupying ``bram_utilization`` of the
    device's BRAM (0..1)."""
    if bram_utilization < 0.0:
        raise ValueError("utilization cannot be negative")
    util = min(bram_utilization, 1.0)
    f = part.base_clock_mhz * (1.0 - BETA * util**P)
    return max(f, MIN_CLOCK_MHZ)


@dataclass(frozen=True)
class ThroughputEstimate:
    """Modelled throughput of one accelerator instance."""

    clock_mhz: float
    cycles_per_sample: float
    pipelines: int = 1

    @property
    def samples_per_sec(self) -> float:
        return self.clock_mhz * 1e6 * self.pipelines / self.cycles_per_sample

    @property
    def msps(self) -> float:
        """Throughput in million samples per second (the Fig. 6 unit)."""
        return self.samples_per_sec / 1e6


def wall_time_s(cycles: int, clock_mhz_value: float) -> float:
    """Modelled wall-clock seconds for ``cycles`` at ``clock_mhz_value``.

    The join point for telemetry: a cycle-accurate run's measured cycle
    count against the device model's achievable clock.
    """
    if cycles < 0:
        raise ValueError("cycles must be non-negative")
    if clock_mhz_value <= 0:
        raise ValueError("clock must be positive")
    return cycles / (clock_mhz_value * 1e6)


def throughput(
    report: ResourceReport,
    *,
    cycles_per_sample: float = 1.0,
    pipelines: int = 1,
) -> ThroughputEstimate:
    """Throughput estimate from a resource report.

    ``cycles_per_sample`` should come from a cycle-accurate run (1.0 for
    the forwarding design; larger under ``stall`` or for multi-cycle
    policies such as the probability-table binary search).
    """
    if cycles_per_sample <= 0:
        raise ValueError("cycles_per_sample must be positive")
    f = clock_mhz(report.bram_blocks / report.part.bram36, part=report.part)
    return ThroughputEstimate(
        clock_mhz=f, cycles_per_sample=cycles_per_sample, pipelines=pipelines
    )
