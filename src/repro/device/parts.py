"""FPGA device catalog.

Three parts matter to the paper:

* **xcvu13p** — the Xilinx UltraScale+ device all headline results use
  (§VI-A): 94.5 Mb of BRAM (2688 RAMB36), 360 Mb of URAM (1280 blocks,
  the §VI-C2 "10 million state-action pairs" headroom), 12288 DSPs.
* **xc7vx690t** — the Virtex-7 device used for the like-for-like
  comparison with Da Silva et al. [11] (§VI-F).
* **xc6vlx240t** — the Virtex-6 device [11] itself reports on.

Counts are from the vendor product tables; only the totals matter to the
utilisation-percentage model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.memory import BRAM36, URAM288


@dataclass(frozen=True)
class FpgaPart:
    """Resource totals of one FPGA device."""

    name: str
    bram36: int
    uram: int
    dsp: int
    luts: int
    ffs: int
    #: Achievable pipeline clock for this design family when the device is
    #: nearly empty (MHz); the starting point of the timing model.
    base_clock_mhz: float

    @property
    def bram_bits(self) -> int:
        return self.bram36 * BRAM36.capacity_bits

    @property
    def uram_bits(self) -> int:
        return self.uram * URAM288.capacity_bits

    @property
    def onchip_bits(self) -> int:
        return self.bram_bits + self.uram_bits


#: Xilinx Virtex UltraScale+ VU13P (the paper's evaluation device).
XCVU13P = FpgaPart(
    name="xcvu13p",
    bram36=2688,
    uram=1280,
    dsp=12288,
    luts=1_728_000,
    ffs=3_456_000,
    base_clock_mhz=189.0,
)

#: Xilinx Virtex-7 690T (the §VI-F comparison device).
XC7VX690T = FpgaPart(
    name="xc7vx690t",
    bram36=1470,
    uram=0,
    dsp=3600,
    luts=433_200,
    ffs=866_400,
    base_clock_mhz=180.0,
)

#: Xilinx Virtex-6 LX240T (the device of baseline [11]).
XC6VLX240T = FpgaPart(
    name="xc6vlx240t",
    bram36=416,
    uram=0,
    dsp=768,
    luts=150_720,
    ffs=301_440,
    base_clock_mhz=150.0,
)

PARTS: dict[str, FpgaPart] = {p.name: p for p in (XCVU13P, XC7VX690T, XC6VLX240T)}
