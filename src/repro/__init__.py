"""repro — a cycle-level Python reproduction of QTAccel.

QTAccel (Meng et al., IPDPS 2020) is a generic pipelined FPGA
architecture for Q-Table based reinforcement learning that retires one
Q-value update per clock cycle while using a constant number of
multipliers.  This package rebuilds the full system in Python:

* :mod:`repro.core` — the 4-stage pipeline (cycle-accurate and fast
  functional simulators, bit-identical), Q-Learning/SARSA accelerators,
  multi-agent modes, bandit customisations;
* :mod:`repro.rtl` — LFSRs, block-RAM models, pipeline registers;
* :mod:`repro.fixedpoint` — the fixed-point datapath;
* :mod:`repro.device` — resource / clock / power models of the paper's
  FPGAs, calibrated against its figures;
* :mod:`repro.envs` — grid worlds, synthetic MDPs, bandit problems;
* :mod:`repro.reference` — the paper's CPU baselines;
* :mod:`repro.baseline` — the prior state-of-the-art design [11];
* :mod:`repro.experiments` — one harness per paper table/figure;
* :mod:`repro.telemetry` — cycle-level tracing, counter registry and
  exportable profiles (see ``docs/observability.md``);
* :mod:`repro.serve` — the multi-tenant session gateway leasing fleet
  lanes to external clients over NDJSON/TCP (see ``docs/serving.md``).

Quickstart::

    from repro.envs import GridWorld
    from repro.core import QLearningAccelerator

    mdp = GridWorld.random(16, 4, obstacle_density=0.1, seed=1).to_mdp()
    acc = QLearningAccelerator(mdp, alpha=0.5, gamma=0.9, seed=1)
    acc.run(500_000)
    print(acc.convergence())
    print(acc.throughput_estimate().msps, "MS/s")

Lower-level engines (functional, cycle-accurate pipeline, lane-stacked
fleets) are all constructed through one facade — see ``docs/api.md``::

    from repro import make_engine

    sim = make_engine(config, mdp=mdp)                       # functional
    fleet = make_engine(config, engine="batch", mdps=mdp, num_agents=256)
"""

__version__ = "0.1.0"

from .core.engine import ENGINE_KINDS, Engine, make_engine

__all__ = [
    "Engine",
    "ENGINE_KINDS",
    "make_engine",
    "core",
    "rtl",
    "fixedpoint",
    "device",
    "envs",
    "reference",
    "baseline",
    "experiments",
]
