"""The pluggable stage-3 update-rule API.

QTAccel's datapath (DESIGN.md) fixes stages 1/2/4 — operand fetch,
update-policy selection, write-back — and leaves stage 3 as the one
algorithm-specific arithmetic stage.  The paper instantiates it twice
(Q-Learning and SARSA differ only in where ``Q(s', a')`` comes from);
the accelerated-Q literature adds drop-in variants that keep the same
stage structure and cost only a second per-pair table plus a DSP or two:

* ``momentum_qlearning`` — momentum-based accelerated Q-learning
  (arXiv:1910.11673): stage 3 adds ``b * (Q_t - Q_{t-1})`` per entry,
  with the historical iterate held in a second |S|x|A| table written at
  stage 4.
* ``target_qlearning`` — speedy/target-network-style updates
  (arXiv:1905.02841): bootstrap reads come from a second |S|x|A|
  *target* table that trails the online table via a stage-4 Polyak
  read-modify-write (and, off-pipeline, an optional periodic hard sync).

An :class:`UpdateRule` declares everything an engine needs to host the
rule: the default behaviour/update policy pair, the extra per-lane table
state (by name — the tables themselves live in
:class:`~repro.core.tables.AcceleratorTables` so ECC/checkpoint/fault
machinery applies automatically), the fixed-point stage-3 compute, the
derived raw coefficients, and a device-model cost descriptor
(:class:`RuleCost`) consumed by :mod:`repro.device.resources`.

Rules are looked up by name through a module-level registry
(:func:`get_rule`); ``QTAccelConfig(update_rule=...)`` resolves through
it.  This module must not import :mod:`repro.core.config` at module
level — the config resolves rules lazily to avoid the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fixedpoint import ops
from ..fixedpoint.format import FxpFormat

#: Registered rule kinds; engines branch on ``rule.kind`` to keep the
#: plain rules' hot paths free of new-rule dispatch.
RULE_KINDS = ("plain", "momentum", "target")


class UpdateRuleError(ValueError):
    """Base class for update-rule configuration/selection errors."""


class UnknownUpdateRuleError(UpdateRuleError):
    """An ``update_rule`` name that is not in the registry."""


class IncompatibleRuleError(UpdateRuleError):
    """A rule combined with config fields it cannot honour (e.g. an
    accelerated rule with a non-greedy update policy)."""


class UnsupportedRuleError(UpdateRuleError):
    """A (rule, engine) combination the chosen engine cannot run —
    raised by :func:`repro.core.engine.make_engine` at construction
    time, never mid-run."""


@dataclass(frozen=True)
class RuleCost:
    """Device-model increment of hosting a rule, relative to plain
    Q-Learning: extra |S|x|A| tables (BRAM) and extra DSP products in
    the stage-3/stage-4 datapath."""

    extra_pair_tables: int = 0
    extra_dsps: int = 0
    note: str = ""


@dataclass(frozen=True)
class RuleKernel:
    """Native-kernel lowering descriptor of one rule — the device-cost
    descriptor pattern (:class:`RuleCost`) applied to software lowering.

    A compiled fleet kernel (:mod:`repro.backends.native`) fuses the
    whole per-step program into one pass and cannot call back into
    Python per sample, so each rule declares up front how its stage-3 /
    stage-4 arithmetic lowers: ``kernel_id`` is the integer the fused
    kernel branches on, and the flags name the extra operand streams the
    lowering must wire (so a backend can reject an unlowered rule with a
    typed :class:`UnsupportedRuleError` at construction, never mid-run).
    """

    #: Integer dispatch tag inside the fused kernel (0 = plain
    #: 3-product datapath, 1 = momentum 4-product, 2 = target-bootstrap
    #: + Polyak write-back).  New rules without a lowering keep an id
    #: outside the compiled set and are rejected at construction.
    kernel_id: int = 0
    #: Stage 3 streams a second per-pair operand (momentum/target read).
    reads_extra_table: bool = False
    #: Stage 4 writes the extra table (momentum iterate / Polyak RMW).
    writes_extra_table: bool = False
    #: Stage 4 performs the two-product Polyak read-modify-write.
    polyak_writeback: bool = False
    note: str = ""


@dataclass(frozen=True)
class RuleCoefficients:
    """Raw fixed-point coefficients of one configured rule.

    ``alpha``/``gamma``/``one_minus_alpha``/``alpha_gamma`` come from
    :func:`repro.fixedpoint.ops.coefficient_set`; the accelerated rules
    add ``beta`` (momentum weight) or the ``tau`` Polyak pair.  All are
    raw integers in the config's ``coef_format``.
    """

    alpha: int
    gamma: int
    one_minus_alpha: int
    alpha_gamma: int
    beta: int = 0
    tau: int = 0
    one_minus_tau: int = 0


class UpdateRule:
    """Base class / protocol for stage-3 update rules.

    Subclasses set the class attributes and override the hooks they
    need.  Instances are stateless singletons held by the registry —
    all per-run state lives in the engines (declared via
    :attr:`extra_tables` and :attr:`has_sync_counter`).
    """

    #: Canonical registry name (also the config's ``algorithm`` label).
    name: str = ""
    #: Dispatch kind — one of :data:`RULE_KINDS`.
    kind: str = "plain"
    #: Default policies installed by ``QTAccelConfig(update_rule=...)``.
    behavior_policy: str = "random"
    update_policy: str = "greedy"
    #: Accepted alternative spellings (legacy strings, paper names).
    aliases: tuple[str, ...] = ()
    #: Names of extra |S|x|A| raw tables the engines must allocate
    #: (checkpoint members, ECC/fault victims, q_init-filled).
    extra_tables: tuple[str, ...] = ()
    #: Whether the rule carries a per-lane update counter (periodic
    #: target sync).
    has_sync_counter: bool = False
    #: Device-model increment (see :class:`RuleCost`).
    device_cost: RuleCost = RuleCost()
    #: Native-kernel lowering (see :class:`RuleKernel`).  The default
    #: lowers as the plain 3-product datapath.
    kernel: RuleKernel = RuleKernel()

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def validate(self, config) -> None:
        """Raise :class:`IncompatibleRuleError` if ``config`` cannot
        host this rule.  Called from ``QTAccelConfig.__post_init__``."""

    def coefficients(self, config) -> RuleCoefficients:
        """Derive the rule's raw coefficient set from ``config``."""
        a, g, oma, ag = ops.coefficient_set(
            config.alpha, config.gamma, config.coef_format
        )
        return RuleCoefficients(a, g, oma, ag)

    def stage3(
        self,
        q_sa: int,
        r: int,
        q_next: int,
        extra: int,
        coefs: RuleCoefficients,
        coef_fmt: FxpFormat,
        q_fmt: FxpFormat,
    ) -> int:
        """Scalar stage-3 compute: raw new Q-value for the pair.

        ``extra`` is the rule's extra per-pair operand (the momentum
        table read for ``kind == "momentum"``; unused otherwise).
        """
        return ops.q_update(
            q_sa,
            r,
            q_next,
            alpha=coefs.alpha,
            one_minus_alpha=coefs.one_minus_alpha,
            alpha_gamma=coefs.alpha_gamma,
            coef_fmt=coef_fmt,
            q_fmt=q_fmt,
        )

    def state_dict(self, tables, sync_count: int = 0) -> dict:
        """Rule-owned state beyond the core tables: the extra tables'
        raw contents (already inside ``tables.state_dict()``) plus any
        sync counter.  Engines embed this under a ``"rule"`` key."""
        state = {"name": self.name}
        if self.has_sync_counter:
            state["sync_count"] = int(sync_count)
        return state

    def load_state_dict(self, state: dict) -> int:
        """Inverse of :meth:`state_dict`; returns the sync counter."""
        if state.get("name") != self.name:
            raise ValueError(
                f"rule state is for {state.get('name')!r}, expected {self.name!r}"
            )
        return int(state.get("sync_count", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UpdateRule {self.name} kind={self.kind}>"


# ---------------------------------------------------------------------- #
# The four registered rules
# ---------------------------------------------------------------------- #


class QLearningRule(UpdateRule):
    """The paper's off-policy customisation (§V-A): random behaviour,
    greedy bootstrap from the Qmax cache."""

    name = "qlearning"
    kind = "plain"
    behavior_policy = "random"
    update_policy = "greedy"
    aliases = ("q", "q_learning", "greedy")
    device_cost = RuleCost(note="paper baseline")
    kernel = RuleKernel(kernel_id=0, note="plain 3-product datapath")


class SarsaRule(UpdateRule):
    """The paper's on-policy customisation (§V-B): e-greedy behaviour,
    the stage-2 sampled action forwarded to stage 1."""

    name = "sarsa"
    kind = "plain"
    behavior_policy = "egreedy"
    update_policy = "egreedy"
    aliases = ("egreedy",)
    device_cost = RuleCost(note="paper baseline")
    kernel = RuleKernel(kernel_id=0, note="plain 3-product datapath")


class MomentumQLearningRule(UpdateRule):
    """Momentum-based accelerated Q-learning (arXiv:1910.11673).

    Stage 3 adds one DSP product, ``b * (Q(s,a) - M(s,a))``, to the
    wide adder tree; stage 4 writes the *pre-update* Q-value into the
    momentum table ``M`` so each entry holds its previous iterate:

    ``Q_{t+1}(s,a) = Q_t + a*(R + g*max Q_t(s',.) - Q_t) + b*(Q_t - Q_{t-1})``

    Cost: one extra |S|x|A| BRAM table, one extra DSP.
    """

    name = "momentum_qlearning"
    kind = "momentum"
    behavior_policy = "random"
    update_policy = "greedy"
    aliases = ("momentum", "momentum_q")
    extra_tables = ("momentum",)
    device_cost = RuleCost(
        extra_pair_tables=1,
        extra_dsps=1,
        note="momentum table + b*(Q - M) product",
    )
    kernel = RuleKernel(
        kernel_id=1,
        reads_extra_table=True,
        writes_extra_table=True,
        note="momentum operand + pre-update iterate write",
    )

    def validate(self, config) -> None:
        if config.update_policy != "greedy":
            raise IncompatibleRuleError(
                f"update_rule={self.name!r} requires update_policy='greedy' "
                f"(got {config.update_policy!r}); the momentum term assumes "
                f"the greedy bootstrap of arXiv:1910.11673"
            )
        beta = config.momentum_beta
        if not 0.0 <= beta < 1.0:
            raise IncompatibleRuleError(
                f"momentum_beta must be in [0, 1), got {beta}"
            )

    def coefficients(self, config) -> RuleCoefficients:
        a, g, oma, ag = ops.coefficient_set(
            config.alpha, config.gamma, config.coef_format
        )
        beta = int(config.coef_format.quantize(config.momentum_beta))
        return RuleCoefficients(a, g, oma, ag, beta=beta)

    def stage3(
        self,
        q_sa: int,
        r: int,
        q_next: int,
        extra: int,
        coefs: RuleCoefficients,
        coef_fmt: FxpFormat,
        q_fmt: FxpFormat,
    ) -> int:
        return ops.q_update_momentum(
            q_sa,
            r,
            q_next,
            extra,
            alpha=coefs.alpha,
            one_minus_alpha=coefs.one_minus_alpha,
            alpha_gamma=coefs.alpha_gamma,
            beta=coefs.beta,
            coef_fmt=coef_fmt,
            q_fmt=q_fmt,
        )


class TargetQLearningRule(UpdateRule):
    """Target-table Q-learning with Polyak trailing (arXiv:1905.02841).

    The bootstrap value is read from a second *target* table ``T`` at
    the online argmax (select-online / evaluate-target); stage 4 trails
    ``T`` behind ``Q`` with a lazy Polyak read-modify-write of the
    written entry, ``T <- (1 - tau)*T + tau*Q_new``.  With
    ``target_sync_period=N > 0`` the functional simulator and fleet
    backends additionally hard-copy ``T <- Q`` every N updates — a
    whole-table copy the cycle-accurate pipeline cannot issue, so the
    pipeline engine rejects that combination with
    :class:`UnsupportedRuleError` at construction.

    Cost: one extra |S|x|A| BRAM table, two extra DSPs (the Polyak
    products).
    """

    name = "target_qlearning"
    kind = "target"
    behavior_policy = "random"
    update_policy = "greedy"
    aliases = ("target", "target_q", "polyak")
    extra_tables = ("target",)
    has_sync_counter = True
    device_cost = RuleCost(
        extra_pair_tables=1,
        extra_dsps=2,
        note="target table + Polyak RMW products",
    )
    kernel = RuleKernel(
        kernel_id=2,
        reads_extra_table=True,
        writes_extra_table=True,
        polyak_writeback=True,
        note="target bootstrap + Polyak RMW",
    )

    def validate(self, config) -> None:
        if config.update_policy != "greedy":
            raise IncompatibleRuleError(
                f"update_rule={self.name!r} requires update_policy='greedy' "
                f"(got {config.update_policy!r}); the target bootstrap uses "
                f"the online argmax (select-online / evaluate-target)"
            )
        tau = config.target_tau
        if not 0.0 < tau <= 1.0:
            raise IncompatibleRuleError(
                f"target_tau must be in (0, 1], got {tau}"
            )
        period = config.target_sync_period
        if isinstance(period, bool) or not isinstance(period, int) or period < 0:
            raise IncompatibleRuleError(
                f"target_sync_period must be a non-negative int, got {period!r}"
            )

    def coefficients(self, config) -> RuleCoefficients:
        a, g, oma, ag = ops.coefficient_set(
            config.alpha, config.gamma, config.coef_format
        )
        tau, one_minus_tau = ops.complement_coefficient(
            config.target_tau, config.coef_format
        )
        return RuleCoefficients(
            a, g, oma, ag, tau=tau, one_minus_tau=one_minus_tau
        )


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #

_RULES: dict[str, UpdateRule] = {}
_ALIASES: dict[str, str] = {}


def register_rule(rule: UpdateRule) -> UpdateRule:
    """Add a rule instance to the registry (canonical name + aliases)."""
    if not rule.name:
        raise ValueError("update rules must have a non-empty name")
    if rule.kind not in RULE_KINDS:
        raise ValueError(
            f"rule {rule.name!r} has unknown kind {rule.kind!r}; "
            f"choose one of {RULE_KINDS}"
        )
    for key in (rule.name, *rule.aliases):
        if key in _RULES or key in _ALIASES:
            raise ValueError(f"duplicate update-rule name/alias {key!r}")
    _RULES[rule.name] = rule
    for alias in rule.aliases:
        _ALIASES[alias] = rule.name
    return rule


def rule_names() -> tuple[str, ...]:
    """Canonical names of all registered rules, registration order."""
    return tuple(_RULES)


def canonical_rule_name(name: str) -> str:
    """Resolve an alias to its canonical rule name.

    Raises :class:`UnknownUpdateRuleError` for unregistered names.
    """
    if name in _RULES:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    raise UnknownUpdateRuleError(
        f"unknown update_rule {name!r}; registered rules: "
        f"{', '.join(_RULES)} (aliases: {', '.join(_ALIASES)})"
    )


def get_rule(name: str) -> UpdateRule:
    """Look up a rule by canonical name or alias."""
    return _RULES[canonical_rule_name(name)]


register_rule(QLearningRule())
register_rule(SarsaRule())
register_rule(MomentumQLearningRule())
register_rule(TargetQLearningRule())
