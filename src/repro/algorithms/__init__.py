"""Pluggable stage-3 update rules (see :mod:`repro.algorithms.rules`)."""

from .rules import (
    RULE_KINDS,
    IncompatibleRuleError,
    MomentumQLearningRule,
    QLearningRule,
    RuleCoefficients,
    RuleCost,
    SarsaRule,
    TargetQLearningRule,
    UnknownUpdateRuleError,
    UnsupportedRuleError,
    UpdateRule,
    UpdateRuleError,
    canonical_rule_name,
    get_rule,
    register_rule,
    rule_names,
)

__all__ = [
    "RULE_KINDS",
    "IncompatibleRuleError",
    "MomentumQLearningRule",
    "QLearningRule",
    "RuleCoefficients",
    "RuleCost",
    "SarsaRule",
    "TargetQLearningRule",
    "UnknownUpdateRuleError",
    "UnsupportedRuleError",
    "UpdateRule",
    "UpdateRuleError",
    "canonical_rule_name",
    "get_rule",
    "register_rule",
    "rule_names",
]
