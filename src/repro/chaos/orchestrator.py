"""Seeded fault schedules for the chaos campaign.

A schedule is a list of :class:`FaultEvent` objects — ``(at, kind,
arg)`` — sorted by firing time.  :func:`default_schedule` derives one
deterministically from a seed: the four **core** faults the acceptance
criteria pin (worker hang, worker kill, connection drop mid-batch,
overload burst) always appear exactly once, at seeded jittered times in
the middle of the run, plus a seeded selection of extras (sever, stall,
garbage response, gateway delay window, lane-state corruption).

Everything is plain data so the campaign runner, the CI smoke and the
tests can share one vocabulary; the runner owns the side effects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

#: The fault kinds every default schedule contains exactly once.
CORE_KINDS = (
    "worker_hang",
    "worker_kill",
    "conn_drop_mid_batch",
    "overload_burst",
)

#: Optional extras a seeded schedule may add.
EXTRA_KINDS = (
    "sever",
    "stall",
    "garbage",
    "gateway_delay",
    "lane_corrupt",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``kind`` at ``at`` seconds into the run."""

    at: float
    kind: str
    arg: Optional[float] = field(default=None)


def default_schedule(
    seed: int,
    duration: float,
    *,
    extras: int = 3,
) -> list[FaultEvent]:
    """The seeded fault timeline for one campaign run.

    Core faults land between 15% and 70% of ``duration`` (so the run
    has quiet lead-in traffic and enough tail for every recovery to
    complete and be re-verified); extras land between 20% and 60%.
    ``lane_corrupt`` extras are additionally capped at 60% so the
    audit scrub always gets a pass between corruption and the final
    table read.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = random.Random(seed)
    events: list[FaultEvent] = []
    for kind in CORE_KINDS:
        at = duration * rng.uniform(0.15, 0.70)
        events.append(FaultEvent(at=at, kind=kind))
    for _ in range(max(0, extras)):
        kind = rng.choice(EXTRA_KINDS)
        at = duration * rng.uniform(0.20, 0.60)
        arg = None
        if kind == "stall":
            arg = rng.uniform(0.1, 0.4)
        elif kind == "gateway_delay":
            arg = rng.uniform(0.01, 0.05)
        events.append(FaultEvent(at=at, kind=kind, arg=arg))
    events.sort(key=lambda e: e.at)
    return events
