"""A byte-level TCP chaos proxy for the serving stack.

:class:`ChaosProxy` sits between clients and a gateway and forwards
NDJSON traffic verbatim until told to misbehave:

* :meth:`sever_all` — abruptly close every live connection (RST-style
  from the client's perspective: reads fail mid-stream);
* :meth:`drop_next_request_mid_frame` — forward only a **prefix** of
  the next client→server frame, cut strictly inside the JSON body so
  the gateway sees an unparseable partial line at EOF, then sever that
  connection.  This is the "connection died halfway through a
  ``learn_batch``" fault: the client cannot know whether the op was
  applied, which is exactly what the ``seq`` exactly-once cache makes
  survivable;
* :meth:`corrupt_next_response` — prepend a garbage line to the next
  server→client delivery, desynchronising the client's stream (its
  response-correlation check must catch this and reconnect);
* :meth:`stall` — freeze all forwarding for a duration (both
  directions), simulating a network brown-out without closing anything.

The proxy is threaded and blocking (one pump thread per direction per
connection) — chaos tooling, not a performance path.  All fault hooks
are thread-safe and may be armed from any thread.
"""

from __future__ import annotations

import socket
import threading

#: Injected where a well-formed NDJSON response should be.
GARBAGE_LINE = b"\x00\xffnot json at all\xfe\x01\n"


class _ProxyConn:
    """One proxied client connection: two sockets + two pump threads."""

    def __init__(self, proxy: "ChaosProxy", client: socket.socket, idx: int):
        self.proxy = proxy
        self.client = client
        self.idx = idx
        self.server = socket.create_connection(
            (proxy.target_host, proxy.target_port), timeout=30.0
        )
        self.alive = True
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(target=self._pump_c2s, daemon=True),
            threading.Thread(target=self._pump_s2c, daemon=True),
        ]
        for t in self.threads:
            t.start()

    def sever(self) -> None:
        """Hard-close both sides (idempotent)."""
        with self._lock:
            if not self.alive:
                return
            self.alive = False
        for sock in (self.client, self.server):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.proxy._conn_done(self)

    def _pump_c2s(self) -> None:
        """Client→server, frame-aware so faults can cut mid-frame."""
        rfile = self.client.makefile("rb")
        try:
            while self.alive:
                line = rfile.readline()
                if not line:
                    break
                self.proxy._gate.wait()
                if self.proxy._take_drop_mid_frame():
                    # Strictly inside the JSON body: never a complete
                    # object, never the terminating newline — the
                    # gateway's readline sees a partial frame at EOF.
                    cut = max(1, (len(line) - 1) // 2)
                    try:
                        self.server.sendall(line[:cut])
                    except OSError:
                        pass
                    with self.proxy._stats_lock:
                        self.proxy.frames_dropped += 1
                    self.sever()
                    return
                self.server.sendall(line)
        except (OSError, ValueError):
            pass
        finally:
            self.sever()

    def _pump_s2c(self) -> None:
        """Server→client, chunk relay with optional garbage injection."""
        try:
            while self.alive:
                data = self.server.recv(65536)
                if not data:
                    break
                self.proxy._gate.wait()
                if self.proxy._take_corrupt_response():
                    self.client.sendall(GARBAGE_LINE)
                    with self.proxy._stats_lock:
                        self.proxy.garbage_injected += 1
                self.client.sendall(data)
        except (OSError, ValueError):
            pass
        finally:
            self.sever()


class ChaosProxy:
    """Threaded TCP proxy with armable fault injection (see module doc)."""

    def __init__(self, target_port: int, *, target_host: str = "127.0.0.1",
                 host: str = "127.0.0.1", port: int = 0):
        self.target_host = target_host
        self.target_port = target_port
        self.host = host
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._conns: list[_ProxyConn] = []
        self._conns_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._closing = False
        #: Forwarding gate: cleared during a stall, set otherwise.
        self._gate = threading.Event()
        self._gate.set()
        self._drop_mid_frame = 0
        self._corrupt_response = 0
        self.conns_opened = 0
        self.conns_severed = 0
        self.frames_dropped = 0
        self.garbage_injected = 0
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    # -- fault hooks ---------------------------------------------------- #

    def sever_all(self) -> int:
        """Abruptly close every live proxied connection; returns count."""
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.sever()
        with self._stats_lock:
            self.conns_severed += len(conns)
        return len(conns)

    def drop_next_request_mid_frame(self) -> None:
        """Arm: cut the next client→server frame mid-JSON, then sever."""
        with self._stats_lock:
            self._drop_mid_frame += 1

    def corrupt_next_response(self) -> None:
        """Arm: prepend a garbage line to the next server→client delivery."""
        with self._stats_lock:
            self._corrupt_response += 1

    def stall(self, seconds: float) -> None:
        """Freeze all forwarding for ``seconds`` (returns immediately)."""
        self._gate.clear()
        timer = threading.Timer(seconds, self._gate.set)
        timer.daemon = True
        timer.start()

    # -- internals ------------------------------------------------------ #

    def _take_drop_mid_frame(self) -> bool:
        with self._stats_lock:
            if self._drop_mid_frame > 0:
                self._drop_mid_frame -= 1
                return True
            return False

    def _take_corrupt_response(self) -> bool:
        with self._stats_lock:
            if self._corrupt_response > 0:
                self._corrupt_response -= 1
                return True
            return False

    def _accept_loop(self) -> None:
        idx = 0
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            idx += 1
            try:
                conn = _ProxyConn(self, client, idx)
            except OSError:
                try:
                    client.close()
                except OSError:
                    pass
                continue
            with self._conns_lock:
                self._conns.append(conn)
            with self._stats_lock:
                self.conns_opened += 1

    def _conn_done(self, conn: _ProxyConn) -> None:
        with self._conns_lock:
            if conn in self._conns:
                self._conns.remove(conn)

    def stats(self) -> dict:
        with self._stats_lock, self._conns_lock:
            return {
                "conns_opened": self.conns_opened,
                "conns_live": len(self._conns),
                "conns_severed": self.conns_severed,
                "frames_dropped": self.frames_dropped,
                "garbage_injected": self.garbage_injected,
            }

    def close(self) -> None:
        """Stop accepting, sever everything, release the listener."""
        self._closing = True
        self._gate.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        self.sever_all()
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
