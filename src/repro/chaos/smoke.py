"""Chaos smoke gate (CI entry point).

``python -m repro.chaos.smoke`` runs one time-boxed, fixed-seed chaos
campaign (see :mod:`repro.chaos.campaign`) and exits 0 iff every
injected fault — worker hang, worker kill, mid-batch connection cut,
overload burst, plus the seeded extras — was survived with bit-exact
tenant results or clean typed errors.

Exit status 0 on success, 1 on any violation (the CI job gates on it).

``--obs-dir DIR`` (default ``chaos-artifacts``) attaches the flight
recorder: every fired fault and worker/session lifecycle event lands
on disk as it happens, and the surviving ring is *always* merged into
``DIR/flight_dump.jsonl`` on exit — pass or fail — so the CI job can
upload it unconditionally (``if: always()``) and a red run ships its
own post-mortem.  ``--obs-dir ''`` disables it.
"""

from __future__ import annotations

import argparse
import json

from ..backends.sharded import install_signal_cleanup
from .campaign import run_chaos_campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.chaos.smoke")
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--seconds", type=float, default=6.0)
    parser.add_argument("--lanes", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--burst-clients", type=int, default=10)
    parser.add_argument("--states", type=int, default=48)
    parser.add_argument("--actions", type=int, default=4)
    parser.add_argument(
        "--mp-context", default="fork", help="multiprocessing start method"
    )
    parser.add_argument("--extras", type=int, default=3)
    parser.add_argument(
        "--obs-dir",
        default="chaos-artifacts",
        help="flight-recorder directory ('' disables the recorder)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="attach a full-sampling tracer; spans join the flight dump",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    install_signal_cleanup()
    result = run_chaos_campaign(
        seed=args.seed,
        seconds=args.seconds,
        lanes=args.lanes,
        workers=args.workers,
        clients=args.clients,
        burst_clients=args.burst_clients,
        num_states=args.states,
        num_actions=args.actions,
        mp_context=args.mp_context,
        extras=args.extras,
        verbose=args.verbose,
        recorder_dir=args.obs_dir or None,
        tracing=args.trace,
        dump_always=bool(args.obs_dir),
    )
    tenants = result["tenants"]
    print(
        f"chaos: schedule [{', '.join(result['schedule'])}] -> "
        f"{tenants['verified']} tenant(s) bit-exact, "
        f"{tenants['clean']} clean, {tenants['failed']} failed; "
        f"burst: {result['burst']}; backend: {result['backend']}; "
        f"proxy: {result['proxy']}"
    )
    for outcome in tenants["outcomes"]:
        if outcome["status"] == "error":
            print(f"chaos: tenant {outcome['idx']} FAILED: {outcome['detail']}")
    recorder = result.get("recorder")
    if recorder:
        print(
            f"chaos: flight recorder: {recorder.get('records', '?')} record(s) "
            f"in {recorder['directory']}; dump: {recorder['dump']}"
        )
    trace = result.get("trace")
    if trace:
        print(
            f"chaos: trace: {trace['spans']} span(s) "
            f"({trace['dropped']} dropped) across {', '.join(trace['procs'])}"
        )
    if args.verbose:
        print(json.dumps(result["server"], indent=2, default=str))
    if not result["ok"]:
        for problem in result["problems"]:
            print(f"chaos: VIOLATION: {problem}")
        return 1
    print("chaos: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
