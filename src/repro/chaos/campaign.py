"""The chaos campaign: a seeded fault schedule against a live gateway.

:func:`run_chaos_campaign` boots a **sharded** gateway, puts the
:class:`~repro.chaos.proxy.ChaosProxy` between it and a fleet of
resilient tenant clients, fires a seeded
:func:`~repro.chaos.orchestrator.default_schedule` fault timeline at
every layer (worker SIGSTOP/SIGKILL, connection sever / mid-batch cut /
garbage / stall, gateway response delay, shared-memory lane
corruption, an overload burst), and then holds the stack to the only
two acceptable outcomes per tenant:

* **bit-exact**: the session's final Q-table equals an uninterrupted
  :class:`~repro.core.functional.FunctionalSimulator` replay of exactly
  the transitions/queries the tenant got acknowledgements for — the
  end-state equivalence check (hangs, kills, retries, reconnects and
  scrub repairs all invisible); or
* **clean typed errors**: ``at_capacity``/``throttled``/
  ``deadline_exceeded`` refusals, or transport exhaustion after
  bounded retries — never a wrong answer, never a wedged server.

Every tenant op is acknowledged-before-journalled, and every mutating
op carries a ``seq``, so the reference journal is exact even across
reconnects: an op is in the journal iff the gateway applied it exactly
once.

With ``recorder_dir`` set, a :class:`~repro.obs.recorder.FlightRecorder`
rides along: every fired fault and every worker/session lifecycle event
lands in the on-disk ring as it happens, and when the campaign *fails*
the surviving ring is merged into ``flight_dump.jsonl`` — the crashed
run's own post-mortem, which CI uploads as an artifact.  ``tracing``
additionally attaches a full-sampling tracer to every layer and folds
the span ring into the dump.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Optional

from ..core.config import QTAccelConfig
from ..serve.client import ServeClient, ServeError
from ..serve.gateway import Gateway, run_gateway_in_thread
from ..serve.session import SessionManager, build_serve_backend
from ..serve.smoke import replay_reference
from .orchestrator import FaultEvent, default_schedule
from .proxy import ChaosProxy

#: ServeError codes a tenant may cleanly observe under chaos.
CLEAN_CODES = frozenset(
    {"at_capacity", "throttled", "deadline_exceeded", "no_session"}
)


def _tenant_worker(
    proxy_port: int,
    idx: int,
    seed: int,
    seconds: float,
    config,
    results: list,
    lock: threading.Lock,
    tracer=None,
) -> None:
    """One resilient tenant: random traffic, ack-gated reference journal."""
    outcome: dict = {"idx": idx, "status": "error", "detail": None}
    rng = random.Random((seed << 8) ^ (0xBEEF + idx))
    try:
        with ServeClient(
            port=proxy_port,
            timeout=3.0,
            max_attempts=6,
            rng=random.Random(rng.getrandbits(32)),
            tracer=tracer,
            trace_sample=1.0,
            tenant=f"tenant{idx}",
        ) as client:
            try:
                sess = client.open_session()
            except ServeError as exc:
                if exc.code == "at_capacity":
                    outcome.update(status="rejected", detail=exc.detail)
                else:
                    outcome["detail"] = f"open: {exc.code}: {exc.detail}"
                return
            S, A = sess.num_states, sess.num_actions
            journal: list = []
            clean_errors = 0
            deadline = time.monotonic() + seconds
            while time.monotonic() < deadline:
                try:
                    roll = rng.random()
                    if roll < 0.60:
                        s, a = rng.randrange(S), rng.randrange(A)
                        r, ns = rng.uniform(-1.0, 1.0), rng.randrange(S)
                        t = rng.random() < 0.02
                        sess.learn(s, a, r, ns, t)
                        journal.append(("learn", s, a, r, ns, t))
                    elif roll < 0.80:
                        rows = [
                            (
                                rng.randrange(S),
                                rng.randrange(A),
                                rng.uniform(-1.0, 1.0),
                                rng.randrange(S),
                                rng.random() < 0.02,
                            )
                            for _ in range(rng.randrange(8, 33))
                        ]
                        budget = 250.0 if rng.random() < 0.15 else None
                        sess.learn_batch(rows, deadline_ms=budget)
                        journal.extend(("learn",) + row for row in rows)
                    else:
                        s = rng.randrange(S)
                        sess.act(s, explore=True)
                        journal.append(("act", s))
                except ServeError as exc:
                    if exc.code not in CLEAN_CODES:
                        outcome["detail"] = f"{exc.code}: {exc.detail}"
                        return
                    if exc.code == "no_session":
                        # Linger expired mid-outage: a designed, clean end.
                        outcome.update(status="expired", detail=exc.code)
                        return
                    clean_errors += 1  # typed refusal; nothing was applied
            try:
                table = sess.table()
                stats = sess.stats()
                sess.close()
            except ServeError as exc:
                if exc.code in CLEAN_CODES:
                    outcome.update(status="expired", detail=exc.code)
                    return
                raise
            ref = replay_reference(
                config, sess.salt, journal, num_states=S, num_actions=A
            )
            if table != [int(v) for v in ref.tables.q.data]:
                outcome["detail"] = (
                    f"final table diverged from reference replay "
                    f"({stats['samples']} samples, "
                    f"{stats['recoveries']} recoveries)"
                )
                return
            outcome.update(
                status="ok",
                detail=None,
                ops=len(journal),
                clean_errors=clean_errors,
                recoveries=stats["recoveries"],
                retries=client.retries,
                reconnects=client.reconnects,
            )
    except (ConnectionError, OSError, TimeoutError) as exc:
        # Transport exhausted after bounded retries: clean, not silent.
        outcome.update(status="aborted", detail=f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 - every failure mode must surface
        outcome["detail"] = f"{type(exc).__name__}: {exc}"
    finally:
        with lock:
            results.append(outcome)


def _burst_worker(gateway_port: int, results: list, lock: threading.Lock) -> None:
    """One overload-burst client: open must succeed or refuse cleanly."""
    entry = {"status": "error", "detail": None}
    try:
        with ServeClient(port=gateway_port, timeout=5.0, max_attempts=1) as client:
            try:
                sess = client.open_session()
            except ServeError as exc:
                if exc.code in ("at_capacity", "throttled"):
                    entry.update(
                        status="rejected", retry_after=exc.retry_after
                    )
                else:
                    entry["detail"] = f"{exc.code}: {exc.detail}"
                return
            sess.close()
            entry.update(status="ok")
    except Exception as exc:  # noqa: BLE001
        entry["detail"] = f"{type(exc).__name__}: {exc}"
    finally:
        with lock:
            results.append(entry)


def run_chaos_campaign(
    *,
    seed: int = 20260808,
    seconds: float = 6.0,
    lanes: int = 6,
    workers: int = 2,
    clients: Optional[int] = None,
    burst_clients: int = 10,
    num_states: int = 48,
    num_actions: int = 4,
    mp_context: str = "fork",
    extras: int = 3,
    verbose: bool = False,
    recorder_dir: Optional[str] = None,
    tracing: bool = False,
    dump_always: bool = False,
) -> dict:
    """Run one seeded chaos campaign; returns a verdict + evidence dict.

    ``result["ok"]`` is True iff every tenant ended bit-exact or with a
    clean typed outcome, the injected worker hang and kill were both
    detected and recovered, and the overload burst was shed cleanly
    with ``retry_after`` hints.

    ``recorder_dir`` attaches a flight recorder (fault + lifecycle
    events; dumped on failure, or unconditionally with
    ``dump_always`` so CI can upload the artifact from green runs
    too), ``tracing`` a full-sampling tracer whose spans join the
    dump; see the module docstring.
    """
    clients = lanes if clients is None else clients
    recorder = None
    tracer = None
    if recorder_dir:
        from ..obs.recorder import open_recorder

        recorder = open_recorder(recorder_dir)
    if tracing:
        from ..obs.tracing import SpanRing, Tracer

        tracer = Tracer("client", ring=SpanRing(1 << 17))
    config = QTAccelConfig.qlearning(seed=11)
    backend = build_serve_backend(
        config,
        engine="sharded",
        lanes=lanes,
        num_states=num_states,
        num_actions=num_actions,
        num_workers=workers,
        mp_context=mp_context,
        ping_timeout_s=0.5,
        hang_timeout_s=1.0,
        stop_timeout_s=2.0,
    )
    manager = SessionManager(
        backend,
        checkpoint_every=32,
        session_linger_s=5.0,
        audit_every=lanes,
        failover="vectorized",
        tracer=tracer.fork("session") if tracer else None,
        recorder=recorder,
    )
    gateway = Gateway(
        manager,
        port=0,
        admission_timeout_s=0.25,
        maintenance_interval_s=0.1,
        max_admission_queue=4,
        tracer=tracer.fork("gateway") if tracer else None,
        recorder=recorder,
    )
    if hasattr(backend, "obs_tracer"):
        backend.obs_tracer = tracer.fork("backend") if tracer else None
        backend.obs_recorder = recorder
    thread, loop = run_gateway_in_thread(gateway)
    proxy = ChaosProxy(gateway.port)

    results: list[dict] = []
    burst_results: list[dict] = []
    lock = threading.Lock()
    tenants = [
        threading.Thread(
            target=_tenant_worker,
            args=(proxy.port, i, seed, seconds, config, results, lock, tracer),
        )
        for i in range(clients)
    ]
    burst_threads: list[threading.Thread] = []
    fault_log: list[str] = []
    corrupt_rng = random.Random(seed ^ 0x5EED)

    def _fire(ev: FaultEvent) -> None:
        if ev.kind == "worker_hang":
            backend.hang_worker(0)
        elif ev.kind == "worker_kill":
            loop.call_soon_threadsafe(
                backend.kill_worker, min(1, backend.num_workers - 1)
            )
        elif ev.kind == "conn_drop_mid_batch":
            proxy.drop_next_request_mid_frame()
        elif ev.kind == "overload_burst":
            for _ in range(burst_clients):
                t = threading.Thread(
                    target=_burst_worker,
                    args=(gateway.port, burst_results, lock),
                )
                t.start()
                burst_threads.append(t)
        elif ev.kind == "sever":
            proxy.sever_all()
        elif ev.kind == "stall":
            proxy.stall(ev.arg or 0.25)
        elif ev.kind == "garbage":
            proxy.corrupt_next_response()
        elif ev.kind == "gateway_delay":
            gateway.response_delay_s = ev.arg or 0.02
            timer = threading.Timer(
                0.5, lambda: setattr(gateway, "response_delay_s", 0.0)
            )
            timer.daemon = True
            timer.start()
        elif ev.kind == "lane_corrupt":
            # A stray bit flip in the shared Q block, under the manager
            # lock so it cannot tear a concurrent lane op; the rotating
            # journal-replay audit must detect and repair it.
            with manager._lock:
                recs = list(manager._sessions.values())
                if recs:
                    rec = corrupt_rng.choice(recs)
                    col = corrupt_rng.randrange(num_states * num_actions)
                    bit = corrupt_rng.randrange(12)
                    manager.backend.q[rec.lane, col] = int(
                        manager.backend.q[rec.lane, col]
                    ) ^ (1 << bit)
        fault_log.append(f"{ev.at:.2f}s {ev.kind}")
        if recorder is not None:
            try:
                recorder.record_event("fault", kind_fired=ev.kind, at=ev.at)
            except Exception:  # noqa: BLE001 - recorder is best-effort
                pass
        if verbose:
            print(f"chaos: t={ev.at:.2f}s fired {ev.kind}")

    schedule = default_schedule(seed, seconds, extras=extras)
    start = time.monotonic()
    for t in tenants:
        t.start()
    try:
        for ev in schedule:
            delay = start + ev.at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            _fire(ev)
        for t in tenants:
            t.join(timeout=seconds + 60.0)
        for t in burst_threads:
            t.join(timeout=60.0)
    finally:
        hangs = backend.hangs
        restarts = backend.restarts
        recoveries = manager.recoveries
        server = manager.server_info()
        proxy_stats = proxy.stats()
        proxy.close()
        asyncio.run_coroutine_threadsafe(gateway.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    verified = [r for r in results if r["status"] == "ok"]
    clean = [r for r in results if r["status"] in ("rejected", "aborted", "expired")]
    failed = [r for r in results if r["status"] == "error"]
    burst_rejected = [r for r in burst_results if r["status"] == "rejected"]
    burst_failed = [r for r in burst_results if r["status"] == "error"]
    problems: list[str] = []
    if failed:
        problems.append(f"{len(failed)} tenant(s) saw unclean failures")
    if not verified:
        problems.append("no tenant session completed bit-exact")
    if hangs < 1:
        problems.append("the SIGSTOP'd worker was never detected as hung")
    if recoveries < 1:
        problems.append("no session was journal-replay recovered")
    if burst_failed:
        problems.append(f"{len(burst_failed)} burst client(s) failed uncleanly")
    if server["sessions_rejected"] < 1:
        problems.append("the overload burst produced no clean rejections")
    if burst_rejected and not any(
        r.get("retry_after") is not None for r in burst_rejected
    ):
        problems.append("rejections carried no retry_after hint")
    recorder_info = None
    if recorder is not None:
        recorder_info = {"directory": str(recorder.directory), "dump": None}
        recorder_info.update(recorder.stats())
        if problems or dump_always:
            # The post-mortem: surviving events (+ spans when traced)
            # merged into one artifact for CI to upload.
            spans = tracer.ring.spans() if tracer is not None else None
            recorder_info["dump"] = recorder.dump(spans=spans)
        recorder.close()
    trace_info = None
    if tracer is not None:
        spans = tracer.ring.spans()
        trace_info = {
            "spans": len(spans),
            "dropped": tracer.ring.dropped,
            "procs": sorted({s.proc for s in spans}),
        }
    return {
        "ok": not problems,
        "recorder": recorder_info,
        "trace": trace_info,
        "problems": problems,
        "seed": seed,
        "seconds": seconds,
        "schedule": fault_log,
        "tenants": {
            "verified": len(verified),
            "clean": len(clean),
            "failed": len(failed),
            "outcomes": results,
        },
        "burst": {
            "rejected": len(burst_rejected),
            "ok": len([r for r in burst_results if r["status"] == "ok"]),
            "failed": len(burst_failed),
        },
        "backend": {"hangs": hangs, "restarts": restarts},
        "server": server,
        "proxy": proxy_stats,
    }
