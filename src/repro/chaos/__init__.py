"""``repro.chaos`` — seeded fault orchestration for the serving stack.

PR 2 hardened the *tables* (ECC, scrubbing, fault campaigns) and the
sharded backend recovers *dead* workers; this package injects the
failure modes that live **above** the tables — hung (SIGSTOP'd)
workers, killed workers, severed/stalled/garbled TCP connections,
delayed gateway responses, corrupted shared-memory lane state, and
sustained overload — and drives the serving stack through them while
checking the only two acceptable tenant-visible outcomes: **bit-exact
results** or **clean typed errors**.  Never silent corruption, never a
wedged server.

Layering:

* :mod:`~repro.chaos.proxy` — :class:`ChaosProxy`, a byte-level TCP
  chaos proxy between clients and the gateway (sever, stall,
  mid-frame drop, garbage injection);
* :mod:`~repro.chaos.orchestrator` — :class:`FaultEvent` and the
  seeded :func:`default_schedule` fault timeline;
* :mod:`~repro.chaos.campaign` — :func:`run_chaos_campaign`, a full
  randomized campaign against a live sharded gateway with an
  automated end-state equivalence check per tenant;
* :mod:`~repro.chaos.smoke` — the time-boxed CI gate
  (``python -m repro.chaos.smoke``).
"""

from .campaign import run_chaos_campaign
from .orchestrator import FaultEvent, default_schedule
from .proxy import ChaosProxy

__all__ = [
    "ChaosProxy",
    "FaultEvent",
    "default_schedule",
    "run_chaos_campaign",
]
