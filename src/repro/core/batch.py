"""Fleet-of-independent-agents simulator, backed by a selectable backend.

:class:`BatchIndependentSimulator` is the stable fleet API; the actual
array program lives in :mod:`repro.backends`:

* ``backend="vectorized"`` (default) —
  :class:`~repro.backends.vectorized.VectorizedFleetBackend`: lanes
  advanced in numpy lock-step, Q tables stacked ``(n_lanes, |S|, |A|)``;
* ``backend="scalar"`` —
  :class:`~repro.backends.scalar.ScalarFleetBackend`: a pure-Python
  loop of per-lane functional simulators (the reference baseline the
  ``fleet_throughput`` bench measures the speedup against);
* ``backend="sharded"`` —
  :class:`~repro.backends.sharded.ShardedFleetBackend`: the vectorized
  program partitioned into per-process lane shards over shared memory
  (multi-core scaling; accepts ``num_workers=``/``epoch=`` and needs a
  ``close()`` when done).

Whatever the backend, lane ``k`` seeded with ``salts[k]`` produces
exactly the trajectory of a scalar
:class:`~repro.core.functional.FunctionalSimulator` built with
``PolicyDraws.from_config(config, salt=salts[k])`` — draws, lag
semantics, Qmax rules and all (asserted by the test suite).

Agents may share one world (ensemble training on the same map) or each
own a same-shaped world (the partitioned tiles of
:func:`repro.envs.multi_agent.partition_grid`).
"""

from __future__ import annotations

from typing import Sequence

from ..backends.base import BatchStats, resolve_fleet_backend
from ..backends.vectorized import VectorizedFleetBackend
from ..envs.base import DenseMdp
from .config import QTAccelConfig

__all__ = ["BatchIndependentSimulator", "BatchStats"]


class BatchIndependentSimulator(VectorizedFleetBackend):
    """K independent QTAccel agents behind one lane-oriented interface.

    The default instance *is* the vectorised backend (full attribute
    compatibility with the historical batch engine); ``backend="scalar"``
    returns the scalar lane-loop instead — both satisfy
    :class:`repro.backends.FleetBackend`.
    """

    def __new__(
        cls,
        mdps: "DenseMdp | Sequence[DenseMdp]" = None,
        config: QTAccelConfig = None,
        *,
        backend: str = "vectorized",
        **kw,
    ):
        impl = resolve_fleet_backend(backend)
        if cls is BatchIndependentSimulator and not issubclass(cls, impl):
            # Non-default backend: construct it fully here; Python skips
            # __init__ because the result is not an instance of cls.
            return impl(mdps, config, **kw)
        return super().__new__(cls)

    def __init__(
        self,
        mdps: "DenseMdp | Sequence[DenseMdp]",
        config: QTAccelConfig,
        *,
        num_agents: int | None = None,
        salts: Sequence[int] | None = None,
        telemetry=None,
        backend: str = "vectorized",
    ):
        super().__init__(
            mdps, config, num_agents=num_agents, salts=salts, telemetry=telemetry
        )
