"""The accelerator's on-chip tables: Q, rewards, Qmax (paper §IV-B, §V-A).

:class:`AcceleratorTables` owns the BRAM-backed state of one pipeline (or
of two state-sharing pipelines): the ``|S| x |A|`` Q and reward tables and
the ``|S|``-entry Qmax value/action arrays.  Addresses follow the
hardware scheme — state in the high bits, action in the low bits when
``|A|`` is a power of two.

The Qmax write-path update implements the paper's §V-A optimisation: at
write-back, the cached maximum is raised if the freshly written Q-value
exceeds it.  Because it is never lowered, the cache can go stale-high when
an update reduces the current per-state maximum; ``qmax_mode="exact"``
(not implementable in one hardware cycle — ablation only) recomputes the
true row maximum instead.
"""

from __future__ import annotations

import numpy as np

from ..envs.base import DenseMdp, bits_for
from ..fixedpoint import ops
from ..rtl.memory import BRAM36, TableRam
from .config import QTAccelConfig


def apply_qmax_rule(
    mode: str, value: int, act: int, new_val: int, new_act: int
) -> tuple[int, int]:
    """One application of the stage-4 Qmax maintenance rule.

    Shared by the write-back path and the forwarding network so that
    overlaying pending writes is exactly equivalent to committing them in
    order (the equivalence the simulators' bit-identity rests on).
    """
    if mode == "monotonic":
        return (new_val, new_act) if new_val > value else (value, act)
    if mode == "follow":
        if new_act == act or new_val > value:
            return new_val, new_act
        return value, act
    raise ValueError(f"no single-cycle rule for qmax mode {mode!r}")


class AcceleratorTables:
    """On-chip table set for one environment + configuration."""

    def __init__(self, mdp: DenseMdp, config: QTAccelConfig):
        self.mdp = mdp
        self.config = config
        s, a = mdp.num_states, mdp.num_actions
        self.num_states = s
        self.num_actions = a
        self.action_bits = bits_for(a)
        self._pow2_actions = a & (a - 1) == 0
        self._ecc = config.ecc_tables

        qf = config.q_format
        q_init_raw = qf.quantize(config.q_init)
        if config.ecc_tables:
            # SECDED-protected variant (see repro.robustness.ecc): same
            # storage layout plus per-word check bits, decode on read.
            from ..robustness.ecc import EccTableRam

            def _ram(depth, width, *, name, fill=0, signed=True):
                return EccTableRam(depth, width, name=name, fill=fill, signed=signed)
        else:

            def _ram(depth, width, *, name, fill=0, signed=True):
                return TableRam(depth, width, name=name, fill=fill)

        self.q = _ram(s * a, qf.wordlen, name="q", fill=q_init_raw)
        self.rewards = _ram(s * a, qf.wordlen, name="rewards")
        self.rewards.data[:] = ops.quantize_array(mdp.rewards.ravel(), qf)
        if config.ecc_tables:
            self.rewards.check[:] = self.rewards.codec.encode_many(
                self.rewards.data & np.int64((1 << qf.wordlen) - 1)
            )
        self.qmax = _ram(s, qf.wordlen, name="qmax", fill=q_init_raw)
        self.qmax_action = _ram(
            s, max(1, self.action_bits), name="qmax_action", signed=False
        )
        #: Update-rule extra tables (momentum iterate, Polyak target, …),
        #: declared by ``config.rule.extra_tables``.  Allocated through
        #: the same ``_ram`` factory, so they are ECC-protected,
        #: checkpointed, and fault-injectable exactly like the Q table.
        self.extra_rams: dict[str, object] = {
            tname: _ram(s * a, qf.wordlen, name=tname, fill=q_init_raw)
            for tname in config.rule.extra_tables
        }
        #: Convenience handles (``None`` when the rule has no such table).
        self.momentum = self.extra_rams.get("momentum")
        self.target = self.extra_rams.get("target")
        #: Terminal flags live in the transition-function block
        #: (combinational logic), not BRAM; kept as a plain array.
        self.terminal = mdp.terminal

    def _all_rams(self) -> tuple:
        """Every RAM in checkpoint/telemetry order (core four + rule
        extras)."""
        return (
            self.q,
            self.rewards,
            self.qmax,
            self.qmax_action,
            *self.extra_rams.values(),
        )

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #

    def pair_addr(self, state: int, action: int) -> int:
        """Hardware address of ``(state, action)``: state in the high
        bits, action in the low bits (shift/or when ``|A|`` is a power of
        two, multiply otherwise)."""
        if self._pow2_actions:
            return (state << self.action_bits) | action
        return state * self.num_actions + action

    # ------------------------------------------------------------------ #
    # Read paths
    # ------------------------------------------------------------------ #

    def read_q(self, state: int, action: int) -> int:
        """Stage-1/2 Q-table read (raw)."""
        return self.q.read(self.pair_addr(state, action))

    def read_reward(self, state: int, action: int) -> int:
        """Stage-1 reward-table read (raw)."""
        return self.rewards.read(self.pair_addr(state, action))

    def read_qmax(self, state: int) -> tuple[int, int]:
        """Stage-2 Qmax read: ``(max_value_raw, argmax_action)``."""
        return self.qmax.read(state), self.qmax_action.read(state)

    # ------------------------------------------------------------------ #
    # Write-back path (stage 4)
    # ------------------------------------------------------------------ #

    def writeback(self, state: int, action: int, q_new_raw: int) -> bool:
        """Stage writes for the clock edge: Q entry plus Qmax maintenance.

        Returns whether the Qmax entry was (re)written — the stage-4
        "Qmax raise" event the telemetry probes record.
        """
        self.q.write(self.pair_addr(state, action), q_new_raw)
        mode = self.config.qmax_mode
        if mode == "exact":  # ablation: recompute the true row maximum
            row = self.row_q(state).copy()
            row[action] = q_new_raw
            best = int(np.argmax(row))
            self.qmax.write(state, int(row[best]))
            self.qmax_action.write(state, best)
            return True
        cur_val = self.qmax.read(state)
        cur_act = self.qmax_action.read(state)
        new_val, new_act = apply_qmax_rule(mode, cur_val, cur_act, q_new_raw, action)
        if (new_val, new_act) != (cur_val, cur_act):
            self.qmax.write(state, new_val)
            self.qmax_action.write(state, new_act)
            return True
        return False

    def writeback_now(self, state: int, action: int, q_new_raw: int) -> None:
        """Unclocked write-back (functional-simulator path), identical
        update semantics."""
        if self._ecc:
            # The read-modify-write below reads raw array words; decode
            # them first or a latent upset would be compared against and
            # then re-encoded as a valid (but wrong) codeword.
            self.qmax.scrub_word(state)
            self.qmax_action.scrub_word(state)
        self.q.write_now(self.pair_addr(state, action), q_new_raw)
        mode = self.config.qmax_mode
        if mode == "exact":
            if self._ecc:
                base = self.pair_addr(state, 0)
                for a in range(self.num_actions):
                    self.q.scrub_word(base + a)
            row = self.row_q(state).copy()
            row[action] = q_new_raw
            best = int(np.argmax(row))
            self.qmax.write_now(state, int(row[best]))
            self.qmax_action.write_now(state, best)
            return
        cur_val = int(self.qmax.data[state])
        cur_act = int(self.qmax_action.data[state])
        new_val, new_act = apply_qmax_rule(mode, cur_val, cur_act, q_new_raw, action)
        if (new_val, new_act) != (cur_val, cur_act):
            self.qmax.write_now(state, new_val)
            self.qmax_action.write_now(state, new_act)

    def commit(self) -> int:
        """Clock edge for all staged table writes; returns collisions."""
        collisions = self.q.commit()
        collisions += self.qmax.commit()
        self.qmax_action.commit()
        for ram in self.extra_rams.values():
            collisions += ram.commit()
        return collisions

    def sync_target(self) -> None:
        """Hard target sync: copy the whole online Q table into the
        target table (``target_sync_period`` expiry).  Stored codewords
        are copied verbatim under ECC, so a latent upset in Q propagates
        exactly as a bulk BRAM copy would."""
        target = self.extra_rams["target"]
        target.data[:] = self.q.data
        if self._ecc:
            target.check[:] = self.q.check

    # ------------------------------------------------------------------ #
    # Bulk views (metrics / functional simulator)
    # ------------------------------------------------------------------ #

    def row_q(self, state: int) -> np.ndarray:
        """Raw Q row for one state (a view, not a copy)."""
        base = state * self.num_actions if not self._pow2_actions else state << self.action_bits
        return self.q.data[base : base + self.num_actions]

    def q_raw_matrix(self) -> np.ndarray:
        """Raw Q values as an ``(S, A)`` array (copy)."""
        return self.q.data.reshape(self.num_states, self.num_actions).copy()

    def q_float_matrix(self) -> np.ndarray:
        """Q values as floats, ``(S, A)``."""
        return ops.to_float_array(self.q_raw_matrix(), self.config.q_format)

    def qmax_invariant_holds(self) -> bool:
        """Check ``Qmax[s] >= max_a Q[s, a]`` for all states (always true
        for monotonic mode when Q and Qmax start equal; tested)."""
        rows = self.q.data.reshape(self.num_states, self.num_actions)
        return bool(np.all(self.qmax.data >= rows.max(axis=1)))

    def state_dict(self) -> dict:
        """Checkpoint of all architectural table state."""
        return {ram.name: ram.state_dict() for ram in self._all_rams()}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        for ram in self._all_rams():
            ram.load_state_dict(state[ram.name])

    def telemetry_snapshot(self) -> dict:
        """Per-RAM access counters, keyed by table name.

        The paper's memory-traffic claim is visible here: reads/writes
        scale with retirements, not with ``|A|``, because the
        read-for-max path is served by the Qmax table.
        """
        return {ram.name: ram.telemetry_snapshot() for ram in self._all_rams()}

    def bram_blocks(self, *, include_qmax_action: bool | None = None) -> int:
        """Block-granular BRAM total, the Fig. 4 resource quantity.

        The Qmax *action* array is needed by e-greedy update policies
        (SARSA) and by the target rule (its bootstrap indexes the target
        table at the cached online argmax); Q-Learning's greedy update
        consumes the value alone.  Update-rule extra tables
        (momentum/target) always count.
        """
        if include_qmax_action is None:
            include_qmax_action = (
                self.config.update_policy == "egreedy"
                or self.config.rule.kind == "target"
            )
        total = self.q.blocks + self.rewards.blocks + self.qmax.blocks
        if include_qmax_action:
            total += self.qmax_action.blocks
        for ram in self.extra_rams.values():
            total += ram.blocks
        return total
