"""Multi-pipeline deployments (paper §VII-A, Figs. 8 and 9).

**State-sharing learners** (:class:`SharedPipelines`): two pipelines
train on the *same* environment through the two ports of the shared
dual-port tables.  Within a cycle each pipeline forwards only its own
in-flight values; the other agent's same-cycle write is invisible until
it commits (exactly the hardware's visibility), and simultaneous writes
to one address are arbitrated by overwrite — the loser is counted.  The
paper's claim: collisions are rare for realistically sized worlds, so
throughput ~doubles and convergence accelerates.

**Independent learners** (:class:`IndependentPipelines`): N pipelines,
each owning a sub-environment and a private table set (one BRAM region
per Fig. 9).  Embarrassingly parallel; the model enforces the device's
aggregate BRAM bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..device.parts import FpgaPart, XCVU13P
from ..device.resources import ResourceReport, estimate_resources, estimate_shared
from ..device.timing import ThroughputEstimate, throughput
from ..envs.base import DenseMdp
from ..telemetry.session import current_session
from .config import QTAccelConfig
from .functional import FunctionalSimulator
from .pipeline import QTAccelPipeline
from .policies import PolicyDraws
from .runstats import RunStatsContract
from .tables import AcceleratorTables


@dataclass
class SharedRunStats:
    """Outcome of a state-sharing dual-pipeline run."""

    cycles: int
    samples: int
    episodes: int
    write_collisions: int
    state_collisions: int

    @property
    def samples_per_cycle(self) -> float:
        return self.samples / self.cycles if self.cycles else 0.0

    @property
    def collision_rate(self) -> float:
        """Fraction of cycles the two agents occupied the same state."""
        return 2.0 * self.state_collisions / self.samples if self.samples else 0.0


class SharedPipelines:
    """Two QTAccel pipelines sharing one table set (Fig. 8)."""

    def __init__(
        self,
        mdp: DenseMdp,
        config: QTAccelConfig,
        *,
        part: FpgaPart = XCVU13P,
        telemetry=None,
    ):
        self.mdp = mdp
        self.config = config
        self.part = part
        self.tables = AcceleratorTables(mdp, config)
        #: Session pulsed once per shared cycle for live-metrics export.
        self._session = telemetry if telemetry is not None else current_session()
        self.pipes = [
            QTAccelPipeline(
                mdp,
                config,
                tables=self.tables,
                draws=PolicyDraws.from_config(config, salt=i + 1),
                manage_commit=False,
                telemetry=telemetry,
            )
            for i in range(2)
        ]

    def step(self) -> None:
        """One shared clock cycle: both pipelines evaluate, one commit."""
        for p in self.pipes:
            p.eval()
        for p in self.pipes:
            p.tick()
        self.tables.commit()

    def run(self, samples_per_pipe: int) -> SharedRunStats:
        """Run until each pipeline has retired ``samples_per_pipe``."""
        for p in self.pipes:
            p._issue_budget = p.stats.issued + samples_per_pipe
        targets = [p._issue_budget for p in self.pipes]
        guard = 8 * samples_per_pipe + 64
        start = self.pipes[0].stats.cycles
        state_collisions = 0
        session = self._session
        while any(p.stats.retired < t for p, t in zip(self.pipes, targets)):
            if self.pipes[0].stats.cycles - start > guard:
                raise RuntimeError("shared pipelines failed to drain")
            self.step()
            a, b = self.pipes[0].arch_state, self.pipes[1].arch_state
            if a is not None and a == b:
                state_collisions += 1
            if session is not None:
                session.pulse()
        for p in self.pipes:
            p._issue_budget = None
        return SharedRunStats(
            cycles=self.pipes[0].stats.cycles,
            samples=sum(p.stats.retired for p in self.pipes),
            episodes=sum(p.stats.episodes for p in self.pipes),
            write_collisions=self.tables.q.stats.write_collisions
            + self.tables.qmax.stats.write_collisions,
            state_collisions=state_collisions,
        )

    def q_float(self) -> np.ndarray:
        return self.tables.q_float_matrix()

    def resource_report(self) -> ResourceReport:
        return estimate_shared(
            self.mdp.num_states, self.mdp.num_actions, self.config, part=self.part
        )

    def throughput_estimate(self) -> ThroughputEstimate:
        return throughput(self.resource_report(), pipelines=2)


@dataclass
class SharedFunctionalResult:
    """Outcome of the fast state-sharing approximation."""

    q: np.ndarray
    episodes: int
    write_collisions: int
    samples: int


def run_shared_functional(
    mdp: DenseMdp,
    config: QTAccelConfig,
    samples_per_agent: int,
    *,
    num_agents: int = 2,
) -> SharedFunctionalResult:
    """Fast approximation of the state-sharing mode.

    Agents advance in lockstep "cycles": every agent computes its update
    against the tables as committed at the cycle start, then all writes
    land with last-agent-wins arbitration — the hardware's visibility
    structure, abstracted from pipeline depth (so not bit-identical to
    :class:`SharedPipelines`, but statistically equivalent; the tests
    compare convergence, not bits).

    All agents share one :class:`AcceleratorTables`; per-cycle isolation
    is achieved by staging each agent's write and rolling it back until
    every agent has computed, which costs O(1) per agent per cycle.
    """
    shared = AcceleratorTables(mdp, config)
    sims = [
        FunctionalSimulator(
            mdp,
            config,
            tables=shared,
            draws=PolicyDraws.from_config(config, salt=i + 1),
        )
        for i in range(num_agents)
    ]
    q_data = shared.q.data
    qm_data = shared.qmax.data
    qa_data = shared.qmax_action.data
    collisions = 0
    for _ in range(samples_per_agent):
        # Every sample writes exactly one Q pair and at most one Qmax row,
        # all recorded (with pre-write values) in the simulator's
        # ``_last_write`` — so per-cycle isolation is O(1) per agent:
        # roll each agent's write back, then commit all in agent order
        # (last agent wins, the §VII-A overwrite arbitration).
        staged: list[tuple[int, int, int, int, int]] = []
        touched_pairs: set[int] = set()
        for sim in sims:
            sim.run(1)
            lw = sim._last_write
            if lw.pair in touched_pairs:
                collisions += 1
            touched_pairs.add(lw.pair)
            staged.append(
                (
                    lw.pair,
                    int(q_data[lw.pair]),
                    lw.state,
                    int(qm_data[lw.state]),
                    int(qa_data[lw.state]),
                )
            )
            # Roll back so the next agent sees cycle-start state.
            q_data[lw.pair] = lw.prev_q
            qm_data[lw.state] = lw.prev_qmax
            qa_data[lw.state] = lw.prev_qmax_action
        for pair, q_val, state, qm_val, qa_val in staged:
            q_data[pair] = q_val
            qm_data[state] = qm_val
            qa_data[state] = qa_val
    from ..fixedpoint import ops

    q = ops.to_float_array(
        q_data.reshape(mdp.num_states, mdp.num_actions), config.q_format
    )
    return SharedFunctionalResult(
        q=q,
        episodes=sum(s.stats.episodes for s in sims),
        write_collisions=collisions,
        samples=samples_per_agent * num_agents,
    )


@dataclass
class IndependentRunStats(RunStatsContract):
    """Outcome of an N-pipeline independent-learner run.

    Satisfies the shared run-stats contract (:mod:`repro.core.runstats`):
    ``cycles`` is the shared-clock cycle count when the run came from
    the cycle-accurate system, ``None`` from the functional twin.
    """

    pipelines: int
    samples: int
    episodes: int
    cycles: Optional[int] = None


class IndependentPipelines:
    """N pipelines over partitioned sub-environments (Fig. 9)."""

    def __init__(
        self,
        mdps: Sequence[DenseMdp],
        config: QTAccelConfig,
        *,
        part: FpgaPart = XCVU13P,
        telemetry=None,
    ):
        if not mdps:
            raise ValueError("need at least one sub-environment")
        self.mdps = list(mdps)
        self.config = config
        self.part = part
        self.sims = [
            FunctionalSimulator(m, config, draws=PolicyDraws.from_config(config, salt=i + 1))
            for i, m in enumerate(self.mdps)
        ]
        session = telemetry if telemetry is not None else current_session()
        if session is not None:
            for i, sim in enumerate(self.sims):
                session.attach(sim, f"agent{i}")

    @property
    def num_pipelines(self) -> int:
        return len(self.sims)

    def run(self, samples_per_pipe: int) -> IndependentRunStats:
        """Train every pipeline for ``samples_per_pipe`` updates."""
        for sim in self.sims:
            sim.run(samples_per_pipe)
        return IndependentRunStats(
            pipelines=self.num_pipelines,
            samples=samples_per_pipe * self.num_pipelines,
            episodes=sum(s.stats.episodes for s in self.sims),
        )

    def state_dict(self) -> dict:
        """Per-lane checkpoints (see repro.robustness.checkpoint)."""
        return {"lanes": [sim.state_dict() for sim in self.sims]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        lanes = state["lanes"]
        if len(lanes) != len(self.sims):
            raise ValueError(
                f"checkpoint has {len(lanes)} lanes, fleet has {len(self.sims)}"
            )
        for sim, lane in zip(self.sims, lanes):
            sim.load_state_dict(lane)

    def resource_report(self) -> ResourceReport:
        """Aggregate resources of all pipelines (independent table sets)."""
        m = self.mdps[0]
        return estimate_resources(
            m.num_states,
            m.num_actions,
            self.config,
            part=self.part,
            pipelines=self.num_pipelines,
        )

    def fits_device(self) -> bool:
        return self.resource_report().fits

    def throughput_estimate(self) -> ThroughputEstimate:
        """Aggregate model throughput: N pipelines at the shared clock."""
        return throughput(self.resource_report(), pipelines=self.num_pipelines)

    def q_float(self, index: int) -> np.ndarray:
        return self.sims[index].q_float()


class IndependentPipelinesCycle:
    """Cycle-accurate N-pipeline system on the shared clock (Fig. 9).

    Each pipeline owns its tables and LFSR streams; all are driven by one
    :class:`repro.rtl.clock.Simulation`, so the aggregate retirement rate
    per cycle is *measured* (N samples/cycle after fill) rather than
    modelled.  The functional :class:`IndependentPipelines` is the fast
    twin; per-pipeline trajectories are bit-identical between the two
    (same salts — asserted in tests).
    """

    def __init__(
        self,
        mdps: Sequence[DenseMdp],
        config: QTAccelConfig,
        *,
        part: FpgaPart = XCVU13P,
        telemetry=None,
    ):
        if not mdps:
            raise ValueError("need at least one sub-environment")
        from ..rtl.clock import Simulation

        self.mdps = list(mdps)
        self.config = config
        self.part = part
        self.sim = Simulation()
        self.pipes = []
        for i, m in enumerate(self.mdps):
            pipe = QTAccelPipeline(
                m,
                config,
                draws=PolicyDraws.from_config(config, salt=i + 1),
                telemetry=telemetry,
            )
            self.pipes.append(pipe)
            self.sim.add(pipe)
        session = telemetry if telemetry is not None else current_session()
        if session is not None:
            session.attach(self.sim, "clock")

    @property
    def num_pipelines(self) -> int:
        return len(self.pipes)

    def run(self, samples_per_pipe: int) -> IndependentRunStats:
        """Clock the system until every pipeline retired its quota."""
        for p in self.pipes:
            p._issue_budget = p.stats.issued + samples_per_pipe
        targets = [p._issue_budget for p in self.pipes]
        guard = 8 * samples_per_pipe + 64
        start = self.sim.cycle
        while any(p.stats.retired < t for p, t in zip(self.pipes, targets)):
            if self.sim.cycle - start > guard:
                raise RuntimeError("independent pipelines failed to drain")
            self.sim.step()
        for p in self.pipes:
            p._issue_budget = None
        return IndependentRunStats(
            pipelines=self.num_pipelines,
            samples=samples_per_pipe * self.num_pipelines,
            episodes=sum(p.stats.episodes for p in self.pipes),
            cycles=self.sim.cycle,
        )

    @property
    def samples_per_cycle(self) -> float:
        """Measured aggregate retirement rate."""
        cycles = self.sim.cycle
        if not cycles:
            return 0.0
        return sum(p.stats.retired for p in self.pipes) / cycles

    def q_float(self, index: int) -> np.ndarray:
        return self.pipes[index].q_float()


def max_independent_pipelines(
    mdp: DenseMdp, config: QTAccelConfig, *, part: FpgaPart = XCVU13P
) -> int:
    """Largest N whose aggregate table sets fit the device's BRAM —
    the Fig. 9 upper bound."""
    n = 1
    while True:
        rep = estimate_resources(
            mdp.num_states, mdp.num_actions, config, part=part, pipelines=n + 1
        )
        if not rep.fits:
            return n
        n += 1
        if n > 4096:
            return n
