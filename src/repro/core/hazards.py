"""In-flight samples, forwarding views, and hazard detection.

Consecutive QRL updates are tightly dependent: sample *k*'s current state
is sample *k-1*'s next state, and any of the three samples ahead in the
pipeline may still be about to write the Q-table entry or Qmax row that
sample *k* reads.  The paper's headline claim (§I, §IV) is that QTAccel
forwards every such in-flight value so the pipeline retires one sample
per clock with *sequential* semantics.

This module provides the pieces the pipeline composes:

* :class:`Sample` — one update in flight, its fields filled stage by
  stage;
* :class:`ForwardingView` — table reads overlaid with the pending writes
  of in-flight samples (applied oldest to newest, so the youngest value
  wins; Qmax overlays apply the monotonic max rule);
* conflict predicates for the ``stall`` hazard mode, which blocks a stage
  until conflicting in-flight samples have drained instead of forwarding.

Timing of visibility (established by the pipeline's evaluation order
S4 -> S3 -> S2 -> S1 within a cycle):

=========  ====================================================
consumer   in-flight producers visible through forwarding
=========  ====================================================
stage 1    S4 pending write (sample k-3), S3 output (sample k-2)
stage 2    S4 pending write (sample k-2), S3 output (sample k-1)
stage 3    S4 pending write (sample k-1)
=========  ====================================================

Stage 2 therefore sees *every* older sample — fully sequential.  The one
hardware-unavoidable exception is a stage-1 e-greedy read (SARSA episode
restart): sample k-1 is only in stage 2 and its new Q-value does not
exist yet, so that read lags by exactly one sample.  The functional
simulator reproduces the same lag (``behavior_lag=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .tables import AcceleratorTables


@dataclass(slots=True)
class Sample:
    """One Q-value update in flight through the pipeline."""

    index: int  # global sample number (issue order)
    s: int = -1
    a: int = -1
    pair: int = -1
    s_next: int = -1
    restart: bool = False  # this sample began a fresh episode
    terminal_next: bool = False  # transition enters a terminal state
    q_sa: int = 0  # raw Q(s, a) operand (fixed up as newer values appear)
    r: int = 0  # raw reward
    a_next: int = -1
    pair_next: int = -1  # Q-table address of (s', a') for explored reads
    q_next: int = 0  # raw Q(s', a') operand (terminal-masked)
    q_new: int = 0  # stage-3 result
    exploited: bool = False
    #: Stage-4 Polyak result for the target rule (the value the sample
    #: writes into the target table); forwarded to younger samples'
    #: target-table reads exactly like ``q_new`` is for the Q table.
    t_new: int = 0

    def writes_pair(self) -> int:
        """The Q-table address this sample will write at stage 4."""
        return self.pair


class ForwardingView:
    """Table reads overlaid with pending in-flight writes.

    ``sources`` are the in-flight samples whose ``q_new`` is already
    known, ordered oldest first.  Q-table reads take the youngest
    matching pair; Qmax reads apply each source with the hardware's
    monotonic rule (raise value/action if the pending write exceeds the
    current maximum).
    """

    __slots__ = ("tables", "sources", "hits_q", "hits_qmax")

    def __init__(self, tables: AcceleratorTables, sources: Iterable[Optional[Sample]]):
        self.tables = tables
        self.sources = [s for s in sources if s is not None]
        #: Forwarding-path hit counters (overlay applications), read by
        #: the telemetry probes after the stage's selections complete.
        self.hits_q = 0
        self.hits_qmax = 0

    def read_q(self, state: int, action: int) -> int:
        pair = self.tables.pair_addr(state, action)
        value = self.tables.q.read(pair)
        for src in self.sources:
            if src.pair == pair:
                value = src.q_new
                self.hits_q += 1
        return value

    def read_qmax(self, state: int) -> tuple[int, int]:
        from .tables import apply_qmax_rule

        mode = self.tables.config.qmax_mode
        value, action = self.tables.read_qmax(state)
        for src in self.sources:
            if src.s == state:
                value, action = apply_qmax_rule(mode, value, action, src.q_new, src.a)
                self.hits_qmax += 1
        return value, action


def fix_operand_q(sample: Sample, sources: Iterable[Optional[Sample]]) -> int:
    """Refresh a carried ``q_sa`` operand against newer in-flight writes.

    Returns the number of fixups applied (a forwarding-path hit count).
    """
    hits = 0
    for src in sources:
        if src is not None and src.pair == sample.pair:
            sample.q_sa = src.q_new
            hits += 1
    return hits


def fix_operand_qnext(
    sample: Sample, sources: Iterable[Optional[Sample]], qmax_mode: str
) -> int:
    """Refresh a carried ``q_next`` operand against newer in-flight writes.

    The operand's provenance decides the rule: a greedy/exploited read
    came from Qmax (overlay the stage-4 maintenance rule on the state);
    an explored read came from a specific Q-table pair (exact pair
    match).  Terminal-masked operands are pinned to zero and never
    refreshed.  Returns the number of fixups applied.
    """
    from .tables import apply_qmax_rule

    if sample.terminal_next:
        return 0
    hits = 0
    for src in sources:
        if src is None:
            continue
        if sample.exploited:
            if src.s == sample.s_next:
                sample.q_next, sample.a_next = apply_qmax_rule(
                    qmax_mode, sample.q_next, sample.a_next, src.q_new, src.a
                )
                hits += 1
        else:
            if src.pair == sample.pair_next:
                sample.q_next = src.q_new
                hits += 1
    return hits


def conflict_stage1(state: int, in_flight: Iterable[Optional[Sample]]) -> bool:
    """Stall-mode hazard check before issuing a new sample.

    Conservative, state-granular (what a cheap hardware comparator would
    do): any in-flight sample that will write state ``state``'s Q row or
    Qmax entry forces a stall.
    """
    return any(s is not None and s.s == state for s in in_flight)


def conflict_stage2(next_state: int, in_flight: Iterable[Optional[Sample]]) -> bool:
    """Stall-mode hazard check before the stage-2 policy reads of ``s'``."""
    return any(s is not None and s.s == next_state for s in in_flight)
