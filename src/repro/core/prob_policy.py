"""Probability-distribution action selection (paper §VII-B, eq. 4).

The generic form of QTAccel keeps a third ``|S| x |A|`` on-chip table P
holding (quantised) selection weights per state-action pair: stage 2
samples the next action by drawing one LFSR word in
``[0, sum_a P[s', a])`` and binary-searching the cumulative row —
``ceil(log2 |A|)`` cycles, the initiation-interval cost the paper's
future-work section wants to pipeline away — and stage 4 refreshes the
written state's row.

This module implements the classic instantiation, **Boltzmann
exploration** (§III-B): ``P(a|s) ∝ exp(Q(s,a) / T)``.  The exponential
is a small lookup table in hardware; we model it with
:func:`boltzmann_weights`, which quantises the row into unsigned
fixed-point weights exactly as a LUT-fed BRAM row would hold them, so
selection inherits the hardware's quantisation.

:class:`BoltzmannSimulator` is a functional engine (on-policy, like
SARSA, with the sampled stage-2 action forwarded to stage 1) built on
the same tables, LFSR streams and datapath kernel as every other engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..envs.base import DenseMdp
from ..fixedpoint import ops
from ..fixedpoint.format import FxpFormat
from ..rtl.memory import TableRam
from .config import QTAccelConfig
from .policies import PolicyDraws, draw_start_state
from .tables import AcceleratorTables

#: On-chip weight format: unsigned 16-bit (one BRAM36 2Kx18 lane, like Q).
WEIGHT_FORMAT = FxpFormat(wordlen=16, frac=15, signed=False)


def selection_cycles(num_actions: int) -> int:
    """Binary-search latency of one probability-table draw (§VII-B)."""
    return max(1, math.ceil(math.log2(max(2, num_actions))))


def boltzmann_weights(
    q_row_raw: np.ndarray,
    *,
    q_fmt: FxpFormat,
    temperature: float,
    weight_fmt: FxpFormat = WEIGHT_FORMAT,
) -> np.ndarray:
    """Quantised ``exp(Q/T)`` weights for one state's row.

    The row is max-normalised before the exponential (the standard
    overflow guard, one subtractor in hardware), so the best action maps
    to weight 1.0 and the rest decay; every weight is floored at one LSB
    so no action's probability is exactly zero (the table must remain
    samplable).
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    q = ops.to_float_array(q_row_raw, q_fmt)
    z = np.exp((q - q.max()) / temperature)
    raw = ops.quantize_array(z, weight_fmt)
    return np.maximum(raw, 1)


@dataclass
class BoltzmannStats:
    """Counters of a Boltzmann run."""

    samples: int = 0
    episodes: int = 0

    def cycles(self, num_actions: int) -> int:
        """Modelled pipeline cycles: the stage-2 binary search sets the
        initiation interval at ``ceil(log2 |A|)`` cycles per sample."""
        return self.samples * selection_cycles(num_actions)


class BoltzmannSimulator:
    """Generic table-based QRL with Boltzmann exploration.

    On-policy: the stage-2 sampled action is forwarded to stage 1 as the
    next behaviour action (the same wire SARSA uses).  The probability
    table starts uniform (all Q equal) and the written state's row is
    refreshed at every write-back.
    """

    def __init__(
        self,
        mdp: DenseMdp,
        config: QTAccelConfig,
        *,
        temperature: float = 50.0,
        draws: Optional[PolicyDraws] = None,
    ):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.mdp = mdp
        # The table set is algorithm-agnostic; reuse the SARSA preset's
        # tables (Qmax present but unused by this policy).
        self.config = config
        self.temperature = temperature
        self.tables = AcceleratorTables(mdp, config)
        self.prob = TableRam(
            mdp.num_states * mdp.num_actions, WEIGHT_FORMAT.wordlen, name="prob"
        )
        uniform = boltzmann_weights(
            np.zeros(mdp.num_actions, dtype=np.int64),
            q_fmt=config.q_format,
            temperature=temperature,
        )
        self.prob.data[:] = np.tile(uniform, mdp.num_states)
        self.draws = draws if draws is not None else PolicyDraws.from_config(config)
        (self._alpha, _, self._one_minus_alpha, self._alpha_gamma) = config.coefficients()
        self.stats = BoltzmannStats()
        self._state: Optional[int] = None
        self._forwarded: Optional[int] = None

    # ------------------------------------------------------------------ #
    # The selection circuit
    # ------------------------------------------------------------------ #

    def _prob_row(self, state: int) -> np.ndarray:
        a = self.mdp.num_actions
        base = state * a
        return self.prob.data[base : base + a]

    def sample_action(self, state: int) -> int:
        """One probability-table draw: LFSR word reduced into the row's
        cumulative weight, binary-searched (the log2 |A| circuit)."""
        row = self._prob_row(state)
        cum = np.cumsum(row)
        total = int(cum[-1])
        u = self.draws.policy.bits() % total
        return int(np.searchsorted(cum, u, side="right"))

    def _refresh_row(self, state: int) -> None:
        """Stage-4 probability update for the written state's row."""
        self._prob_row(state)[:] = boltzmann_weights(
            self.tables.row_q(state),
            q_fmt=self.config.q_format,
            temperature=self.temperature,
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, num_samples: int) -> BoltzmannStats:
        """Process ``num_samples`` updates."""
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        mdp = self.mdp
        T = self.tables
        for _ in range(num_samples):
            if self._state is None:
                state = draw_start_state(self.draws, mdp.start_states)
                action = self.sample_action(state)
            else:
                state = self._state
                assert self._forwarded is not None
                action = self._forwarded

            pair = T.pair_addr(state, action)
            s_next = int(mdp.next_state[state, action])
            terminal_next = bool(mdp.terminal[s_next])
            q_sa = T.q.read(pair)
            r = T.rewards.read(pair)

            a_next = self.sample_action(s_next)
            q_next = 0 if terminal_next else T.read_q(s_next, a_next)

            q_new = ops.q_update(
                q_sa,
                r,
                q_next,
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=self._alpha_gamma,
                coef_fmt=self.config.coef_format,
                q_fmt=self.config.q_format,
            )
            T.writeback_now(state, action, q_new)
            self._refresh_row(state)

            self.stats.samples += 1
            if terminal_next:
                self._state = None
                self._forwarded = None
                self.stats.episodes += 1
            else:
                self._state = s_next
                self._forwarded = a_next
        return self.stats

    def q_float(self) -> np.ndarray:
        """Learned Q table as floats, ``(S, A)``."""
        return self.tables.q_float_matrix()

    def probabilities(self, state: int) -> np.ndarray:
        """Normalised selection probabilities for one state."""
        row = self._prob_row(state).astype(np.float64)
        return row / row.sum()
