"""Learning-quality and throughput metrics.

Convergence in the paper's sense — the greedy policy reaching the goal
optimally — is what the examples and integration tests verify.  The
helpers here compare a learned Q table against the value-iteration
oracle of :meth:`repro.envs.base.DenseMdp.optimal_q` and roll greedy
policies to measure realised returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..envs.base import DenseMdp


def policy_agreement(q: np.ndarray, q_star: np.ndarray, *, tol: float = 1e-9) -> float:
    """Fraction of states whose greedy action under ``q`` is optimal.

    A state counts as agreeing when the action ``argmax q[s]`` achieves
    the optimal value under ``q_star`` (ties in ``q_star`` all count as
    optimal, so equivalent actions are not penalised).
    """
    if q.shape != q_star.shape:
        raise ValueError("q and q_star must have equal shapes")
    greedy = np.argmax(q, axis=1)
    achieved = q_star[np.arange(q.shape[0]), greedy]
    best = q_star.max(axis=1)
    return float(np.mean(achieved >= best - tol))


def q_rmse(q: np.ndarray, q_star: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Root-mean-square error between Q tables, optionally masked to the
    reachable/visited region."""
    if q.shape != q_star.shape:
        raise ValueError("q and q_star must have equal shapes")
    diff = q - q_star
    if mask is not None:
        diff = diff[mask]
    if diff.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(diff**2)))


def greedy_rollout(
    mdp: DenseMdp,
    q: np.ndarray,
    start: int,
    *,
    gamma: float,
    max_steps: int = 10_000,
) -> tuple[float, int, bool]:
    """Roll the greedy policy of ``q`` from ``start``.

    Returns ``(discounted_return, steps, reached_terminal)``.  Loops are
    cut off at ``max_steps``.
    """
    state = start
    total = 0.0
    discount = 1.0
    for step in range(max_steps):
        action = int(np.argmax(q[state]))
        nxt, reward, term = mdp.step(state, action)
        total += discount * reward
        discount *= gamma
        if term:
            return total, step + 1, True
        if nxt == state:
            # Greedy policy walked into a wall and would loop forever.
            return total, step + 1, False
        state = nxt
    return total, max_steps, False


def success_rate(
    mdp: DenseMdp,
    q: np.ndarray,
    *,
    gamma: float,
    starts: np.ndarray | None = None,
    max_steps: int = 10_000,
) -> float:
    """Fraction of start states from which the greedy policy reaches a
    terminal state."""
    if starts is None:
        starts = mdp.start_states
    hits = 0
    for s in np.asarray(starts):
        _, _, ok = greedy_rollout(mdp, q, int(s), gamma=gamma, max_steps=max_steps)
        hits += ok
    return hits / max(1, len(starts))


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of a learned Q table against the oracle."""

    samples: int
    agreement: float
    rmse: float
    success: float

    def __str__(self) -> str:
        return (
            f"samples={self.samples} agreement={self.agreement:.3f} "
            f"rmse={self.rmse:.3f} success={self.success:.3f}"
        )


def convergence_report(
    mdp: DenseMdp,
    q: np.ndarray,
    *,
    gamma: float,
    samples: int,
    q_star: np.ndarray | None = None,
    max_starts: int = 256,
) -> ConvergenceReport:
    """Convenience bundle of the three convergence metrics.

    Rollouts are capped at ``|S| + 1`` steps: a deterministic greedy
    policy in a deterministic MDP that revisits a state is looping and
    can never reach a terminal, so longer rollouts cannot change the
    verdict — they only cost time.
    """
    if q_star is None:
        q_star = mdp.optimal_q(gamma)
    starts = mdp.start_states
    if len(starts) > max_starts:
        starts = starts[:: max(1, len(starts) // max_starts)][:max_starts]
    reachable = ~mdp.terminal
    return ConvergenceReport(
        samples=samples,
        agreement=policy_agreement(q[reachable], q_star[reachable]),
        rmse=q_rmse(q, q_star, mask=reachable),
        success=success_rate(
            mdp, q, gamma=gamma, starts=starts, max_steps=mdp.num_states + 1
        ),
    )
