"""The shared run-result contract of every engine's stats object.

Each engine historically grew its own counters dataclass with ad-hoc
spellings (``FunctionalStats.samples``, ``BatchStats.total_samples``,
``PipelineStats.retired``...).  :class:`RunStatsContract` normalises the
surface every consumer can rely on, without removing anything:

* ``.samples`` — total Q-value updates retired by the run;
* ``.cycles`` — clock cycles consumed, or ``None`` on engines with no
  cycle notion (the functional and fleet fast paths);
* ``.as_dict()`` — all counters plus the two normalised keys, as plain
  JSON-ready values.

Old spellings stay as thin adapters; the deprecated ones
(``BatchStats.total_samples``) emit a :class:`DeprecationWarning` for
one release before removal (the tier-1 suite runs with
``error::DeprecationWarning`` and allow-lists exactly those shims —
see pyproject.toml).
"""

from __future__ import annotations

import dataclasses
from typing import Optional


class RunStatsContract:
    """Mixin providing the normalised stats surface.

    Subclasses supply ``samples`` (field or property); ``cycles``
    defaults to ``None`` for clockless engines and is overridden (as a
    field or property) by the cycle-accurate ones.
    """

    @property
    def cycles(self) -> Optional[int]:
        """Clock cycles consumed; ``None`` on engines with no clock."""
        return None

    def as_dict(self) -> dict:
        """All counters plus the normalised ``samples``/``cycles`` keys."""
        if dataclasses.is_dataclass(self):
            out = dataclasses.asdict(self)
        else:  # non-dataclass stats override as_dict instead
            raise TypeError(
                f"{type(self).__name__} is not a dataclass; override as_dict()"
            )
        out["samples"] = self.samples  # type: ignore[attr-defined]
        out["cycles"] = self.cycles
        return out
