"""QTAccel core: the paper's contribution.

* :class:`QTAccelConfig` — one pipeline's static configuration.
* :class:`QTAccelPipeline` — the cycle-accurate 4-stage pipeline.
* :class:`FunctionalSimulator` — the bit-identical fast path.
* :class:`QLearningAccelerator` / :class:`SarsaAccelerator` — user API.
* :mod:`repro.core.metrics` — convergence/throughput metrics.
"""

from .accelerator import (
    QLearningAccelerator,
    QTAccelAccelerator,
    RunResult,
    SarsaAccelerator,
)
from .config import HAZARD_MODES, QMAX_MODES, QTAccelConfig
from .engine import ENGINE_KINDS, Engine, make_engine
from .functional import FunctionalSimulator, FunctionalStats
from .hazards import ForwardingView, Sample
from .metrics import (
    ConvergenceReport,
    convergence_report,
    greedy_rollout,
    policy_agreement,
    q_rmse,
    success_rate,
)
from .batch import BatchIndependentSimulator, BatchStats
from .prob_policy import (
    BoltzmannSimulator,
    BoltzmannStats,
    boltzmann_weights,
    selection_cycles,
)
from .bandit_accel import (
    BanditRunStats,
    EpsilonGreedyBanditAccelerator,
    Exp3Accelerator,
    StatefulBanditAccelerator,
    Ucb1Accelerator,
    bandit_cycles_per_sample,
)
from .multi_pipeline import (
    IndependentPipelines,
    IndependentPipelinesCycle,
    IndependentRunStats,
    SharedFunctionalResult,
    SharedPipelines,
    SharedRunStats,
    max_independent_pipelines,
    run_shared_functional,
)
from .pipeline import PipelineStats, QTAccelPipeline
from .policies import PolicyDraws, egreedy_cut, select_behavior, select_update
from .tables import AcceleratorTables, apply_qmax_rule

__all__ = [
    "QTAccelConfig",
    "Engine",
    "ENGINE_KINDS",
    "make_engine",
    "HAZARD_MODES",
    "QMAX_MODES",
    "QTAccelPipeline",
    "PipelineStats",
    "FunctionalSimulator",
    "FunctionalStats",
    "AcceleratorTables",
    "PolicyDraws",
    "select_behavior",
    "select_update",
    "egreedy_cut",
    "ForwardingView",
    "Sample",
    "QTAccelAccelerator",
    "QLearningAccelerator",
    "SarsaAccelerator",
    "RunResult",
    "ConvergenceReport",
    "convergence_report",
    "policy_agreement",
    "q_rmse",
    "success_rate",
    "greedy_rollout",
    "apply_qmax_rule",
    "SharedPipelines",
    "SharedRunStats",
    "SharedFunctionalResult",
    "run_shared_functional",
    "IndependentPipelines",
    "IndependentPipelinesCycle",
    "IndependentRunStats",
    "max_independent_pipelines",
    "EpsilonGreedyBanditAccelerator",
    "Exp3Accelerator",
    "StatefulBanditAccelerator",
    "Ucb1Accelerator",
    "BanditRunStats",
    "bandit_cycles_per_sample",
    "BatchIndependentSimulator",
    "BatchStats",
    "BoltzmannSimulator",
    "BoltzmannStats",
    "boltzmann_weights",
    "selection_cycles",
]
