"""Cycle-accurate simulator of the QTAccel 4-stage pipeline (paper §IV).

Stage responsibilities (Fig. 1):

1. **Stage 1** — pick the current state (previous sample's next state, or
   a random start at episode boundaries); select the behaviour action
   (random for Q-Learning; the forwarded stage-2 action for SARSA); run
   the transition function; read ``Q(s, a)`` and ``R``; derive the
   coefficient products.
2. **Stage 2** — select the update action for ``s'`` (greedy via the Qmax
   table, or the single-draw e-greedy circuit) and fetch ``Q(s', a')``.
3. **Stage 3** — the arithmetic stage: three DSP products accumulated and
   renormalised (:func:`repro.fixedpoint.ops.q_update`).
4. **Stage 4** — write back ``Q_{t+1}(s, a)``; raise ``Qmax[s]`` if
   exceeded.

Evaluation order inside a cycle is S4, S3, S2, S1, which realises the
same-cycle forwarding paths (S3 output into S2/S1 reads; SARSA's stage-2
action into stage 1).  Hazard behaviour is selected by
``config.hazard_mode``:

* ``forward`` — the paper's design: every in-flight value is forwarded,
  one sample per cycle, sequential semantics (see
  :mod:`repro.core.hazards` for the one documented stage-1 lag).
* ``stall`` — no forwarding; conservative state-granular hazard checks
  bubble the pipeline until conflicting samples drain.  Same trajectory
  as sequential execution, more cycles.
* ``stale`` — no forwarding, no stalls: reads may be stale.  The
  trajectory diverges; the ablation benches quantify the damage.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

import numpy as np

from ..envs.base import DenseMdp
from ..fixedpoint import ops
from ..rtl.register import PipelineRegister
from ..telemetry.counters import CounterRegistry
from ..telemetry.session import current_session
from .config import QTAccelConfig
from .hazards import (
    ForwardingView,
    Sample,
    conflict_stage1,
    conflict_stage2,
    fix_operand_q,
    fix_operand_qnext,
)
from .policies import PolicyDraws, draw_start_state, select_behavior, select_update
from .tables import AcceleratorTables

#: Per-retirement trace record: (sample index, s, a, q_new_raw).
TraceRecord = tuple[int, int, int, int]


class PipelineStats:
    """Counters accumulated while the pipeline runs.

    The counters live on a :class:`~repro.telemetry.counters.CounterRegistry`
    (one per stats object, under ``pipeline.*`` names) so telemetry
    sessions can snapshot them without a second set of bookkeeping; the
    original attribute API (``stats.retired``, ``stats.cycles += 1``,
    keyword construction, equality) is preserved on top of it.  The hot
    loop bypasses the properties and bumps the ``c_*`` counter objects
    directly.

    ``stall_cycles`` stays the total bubble count; it now splits into
    ``hazard_stall_cycles`` (stall-mode conflicts — exactly 0 under the
    paper's forwarding design) and ``s2_hold_cycles`` (multi-cycle
    stage-2 selections, e.g. the probability-table binary search).
    """

    _FIELDS = (
        "cycles",
        "issued",
        "retired",
        "stall_cycles",
        "episodes",
        "exploits",
        "explores",
        "hazard_stall_cycles",
        "s2_hold_cycles",
    )

    __slots__ = ("registry",) + tuple(f"c_{f}" for f in _FIELDS)

    def __init__(
        self,
        cycles: int = 0,
        issued: int = 0,
        retired: int = 0,
        stall_cycles: int = 0,
        episodes: int = 0,
        exploits: int = 0,
        explores: int = 0,
        *,
        hazard_stall_cycles: int = 0,
        s2_hold_cycles: int = 0,
        registry: Optional[CounterRegistry] = None,
    ):
        self.registry = registry if registry is not None else CounterRegistry()
        values = {
            "cycles": cycles,
            "issued": issued,
            "retired": retired,
            "stall_cycles": stall_cycles,
            "episodes": episodes,
            "exploits": exploits,
            "explores": explores,
            "hazard_stall_cycles": hazard_stall_cycles,
            "s2_hold_cycles": s2_hold_cycles,
        }
        for name, value in values.items():
            counter = self.registry.counter(f"pipeline.{name}")
            counter.value = value
            object.__setattr__(self, f"c_{name}", counter)

    # Attribute API over the registry counters ------------------------- #

    cycles = property(
        lambda self: self.c_cycles.value,
        lambda self, v: setattr(self.c_cycles, "value", v),
    )
    issued = property(
        lambda self: self.c_issued.value,
        lambda self, v: setattr(self.c_issued, "value", v),
    )
    retired = property(
        lambda self: self.c_retired.value,
        lambda self, v: setattr(self.c_retired, "value", v),
    )
    stall_cycles = property(
        lambda self: self.c_stall_cycles.value,
        lambda self, v: setattr(self.c_stall_cycles, "value", v),
    )
    episodes = property(
        lambda self: self.c_episodes.value,
        lambda self, v: setattr(self.c_episodes, "value", v),
    )
    exploits = property(
        lambda self: self.c_exploits.value,
        lambda self, v: setattr(self.c_exploits, "value", v),
    )
    explores = property(
        lambda self: self.c_explores.value,
        lambda self, v: setattr(self.c_explores, "value", v),
    )
    hazard_stall_cycles = property(
        lambda self: self.c_hazard_stall_cycles.value,
        lambda self, v: setattr(self.c_hazard_stall_cycles, "value", v),
    )
    s2_hold_cycles = property(
        lambda self: self.c_s2_hold_cycles.value,
        lambda self, v: setattr(self.c_s2_hold_cycles, "value", v),
    )

    @property
    def cycles_per_sample(self) -> float:
        return self.cycles / self.retired if self.retired else float("inf")

    @property
    def samples(self) -> int:
        """Updates retired — the shared run-stats spelling
        (:mod:`repro.core.runstats`) of :attr:`retired`."""
        return self.retired

    def as_dict(self) -> dict:
        """All counters plus the shared run-stats key ``samples``
        (:mod:`repro.core.runstats`); ``cycles`` is already a counter."""
        out = {f: getattr(self, f) for f in self._FIELDS}
        out["samples"] = self.retired
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, PipelineStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"PipelineStats({inner})"


class QTAccelPipeline:
    """One QTAccel pipeline bound to an environment and a configuration.

    The pipeline owns its architectural state (current state register,
    SARSA action-forwarding register) but may *share* its
    :class:`AcceleratorTables` and :class:`PolicyDraws` with another
    pipeline (the state-sharing multi-agent mode).
    """

    def __init__(
        self,
        mdp: DenseMdp,
        config: QTAccelConfig,
        *,
        tables: Optional[AcceleratorTables] = None,
        draws: Optional[PolicyDraws] = None,
        manage_commit: bool = True,
        stage2_latency: int = 1,
        telemetry=None,
    ):
        if config.qmax_mode == "exact":
            raise ValueError(
                "the cycle-accurate pipeline models single-cycle Qmax write "
                "paths (monotonic/follow); use the functional simulator for "
                "the 'exact' ablation"
            )
        if config.rule.kind == "target" and config.target_sync_period > 0:
            from ..algorithms.rules import UnsupportedRuleError

            raise UnsupportedRuleError(
                "the cycle-accurate pipeline cannot host "
                "target_sync_period > 0 (a whole-table copy is not a "
                "single-cycle write path); use target_sync_period=0 (pure "
                "Polyak trailing) or the functional/fleet engines"
            )
        self.mdp = mdp
        self.config = config
        self.tables = tables if tables is not None else AcceleratorTables(mdp, config)
        self.draws = draws if draws is not None else PolicyDraws.from_config(config)
        (_, _, self.one_minus_alpha, self.alpha_gamma) = config.coefficients()
        self.alpha_raw = config.coefficients()[0]
        #: The configured stage-3 update rule (see :mod:`repro.algorithms`)
        #: and its raw coefficients.  Plain rules keep the original hot
        #: path; the accelerated kinds add the stage-3/stage-4 branches
        #: documented in DESIGN.md ("update-rule forwarding").
        self.rule = config.rule
        self._rule_kind = self.rule.kind
        self._rule_coefs = self.rule.coefficients(config)
        #: When False the pipeline stages table writes but leaves the
        #: clock-edge commit to an external arbiter (shared-table mode).
        self.manage_commit = manage_commit

        self.reg12: PipelineRegister[Sample] = PipelineRegister("s1->s2")
        self.reg23: PipelineRegister[Sample] = PipelineRegister("s2->s3")
        self.reg34: PipelineRegister[Sample] = PipelineRegister("s3->s4")

        self.arch_state: Optional[int] = None  # None => next sample restarts
        self._pending_behavior: Optional[int] = None  # SARSA forwarded action
        self._latched_issue: Optional[tuple[int, bool]] = None  # (state, restart)
        self._issue_budget: Optional[int] = None
        #: Cycles stage 2 occupies per sample.  1 for the paper's greedy /
        #: e-greedy selectors; ``ceil(log2 |A|)`` models the §VII-B
        #: probability-table binary search, whose initiation-interval cost
        #: is then *measured* by the pipeline instead of assumed.
        if stage2_latency < 1:
            raise ValueError("stage2_latency must be >= 1")
        self.stage2_latency = stage2_latency
        self._s2_busy = 0
        self._s2_started_for = -1

        self.stats = PipelineStats()
        self.trace: Optional[list[TraceRecord]] = None
        self.on_retire: Optional[Callable[[Sample], None]] = None
        #: Optional :class:`repro.robustness.guards.DivergenceGuard`
        #: observing every stage-3 result; same None-is-fast-path
        #: discipline as ``_tel``.
        self.guard = None
        #: Telemetry hook point: ``None`` (the disabled fast path — one
        #: pointer test per instrumented site) or a
        #: :class:`~repro.telemetry.session.PipelineProbe`.  Set by
        #: :meth:`TelemetrySession.attach`; ``telemetry=`` (an explicit
        #: session) or an ambient ``with TelemetrySession():`` block
        #: attaches at construction.
        self._tel = None
        #: Sampled per-stage wall-time attribution: ``None`` (the
        #: default — one pointer test per cycle) or a
        #: :class:`repro.perf.stagetime.StageTimer`, which timestamps
        #: the stage boundaries of every Nth cycle.
        self._stage_timer = None
        session = telemetry if telemetry is not None else current_session()
        if session is not None:
            session.attach(self)

    # ------------------------------------------------------------------ #
    # One clock cycle
    # ------------------------------------------------------------------ #

    def eval(self) -> None:
        """Combinational phase of one cycle (stages evaluated S4..S1)."""
        cfg = self.config
        mode = cfg.hazard_mode
        T = self.tables
        forward = mode == "forward"
        st = self.stats
        tel = self._tel
        # Pure-trace probe events (issue/select/retire/hold/stall) are
        # no-ops without a recorder; skipping the calls entirely keeps
        # the counters-only attached tax inside its bench budget.
        trc = tel if tel is not None and tel.recorder is not None else None
        cyc = st.c_cycles.value
        timer = self._stage_timer
        stamps = None
        if timer is not None and timer.armed(cyc):
            stamps = [perf_counter()]

        wb = self.reg34.value if self.reg34.valid else None
        in_s3 = self.reg23.value if self.reg23.valid else None
        in_s2 = self.reg12.value if self.reg12.valid else None

        rule_kind = self._rule_kind

        # ---------------- Stage 4: write-back ---------------- #
        if wb is not None:
            qmax_written = T.writeback(wb.s, wb.a, wb.q_new)
            if rule_kind == "momentum":
                # Historical iterate: stage the pre-update Q(s,a) into
                # the momentum table (wb.q_sa is final — it was fixed up
                # at wb's own stage 3 — and equals the value a sequential
                # machine would have read).
                T.momentum.write(wb.pair, wb.q_sa)
            elif rule_kind == "target":
                # Lazy Polyak RMW of the written entry.  The committed
                # target table already reflects every sample up to k-2
                # (their stage-4 writes committed at earlier ticks), so
                # this read-modify-write chain is sequential; wb.t_new is
                # forwarded to younger samples' target reads below.
                coefs = self._rule_coefs
                wb.t_new = ops.polyak_update(
                    T.target.read(wb.pair),
                    wb.q_new,
                    tau=coefs.tau,
                    one_minus_tau=coefs.one_minus_tau,
                    coef_fmt=cfg.coef_format,
                    q_fmt=cfg.q_format,
                )
                T.target.write(wb.pair, wb.t_new)
            st.c_retired.value += 1
            if self.trace is not None:
                self.trace.append((wb.index, wb.s, wb.a, wb.q_new))
            if trc is not None:
                trc.retire(cyc, wb.index)
            if tel is not None and qmax_written:
                tel.qmax_raise(cyc, wb.index)
            if self.on_retire is not None:
                self.on_retire(wb)
        if stamps is not None:
            stamps.append(perf_counter())

        # ---------------- Stage 3: arithmetic ---------------- #
        s3_out: Optional[Sample] = None
        if in_s3 is not None:
            smp = in_s3
            if forward and wb is not None:
                hits_q = fix_operand_q(smp, (wb,))
                if rule_kind == "target":
                    # Target-sourced bootstrap: the only younger write to
                    # the target table is wb's Polyak result, computed in
                    # this cycle's stage 4 above.
                    hits_qn = 0
                    if not smp.terminal_next and wb.pair == smp.pair_next:
                        smp.q_next = wb.t_new
                        hits_qn = 1
                else:
                    hits_qn = fix_operand_qnext(smp, (wb,), cfg.qmax_mode)
                if tel is not None:
                    if hits_q:
                        tel.forward(cyc, "S3", "q_operand", smp.index, hits_q)
                    if hits_qn:
                        tel.forward(cyc, "S3", "qnext", smp.index, hits_qn)
            if rule_kind == "momentum":
                # The momentum operand is read here, at stage 3, from the
                # committed table (every write up to sample k-2 has
                # committed) with one forwarding fixup for k-1: its
                # staged momentum write is its pre-update q_sa.
                m = T.momentum.read(smp.pair)
                if forward and wb is not None and wb.pair == smp.pair:
                    m = wb.q_sa
                coefs = self._rule_coefs
                smp.q_new = ops.q_update_momentum(
                    smp.q_sa,
                    smp.r,
                    smp.q_next,
                    m,
                    alpha=self.alpha_raw,
                    one_minus_alpha=self.one_minus_alpha,
                    alpha_gamma=self.alpha_gamma,
                    beta=coefs.beta,
                    coef_fmt=cfg.coef_format,
                    q_fmt=cfg.q_format,
                )
            else:
                smp.q_new = ops.q_update(
                    smp.q_sa,
                    smp.r,
                    smp.q_next,
                    alpha=self.alpha_raw,
                    one_minus_alpha=self.one_minus_alpha,
                    alpha_gamma=self.alpha_gamma,
                    coef_fmt=cfg.coef_format,
                    q_fmt=cfg.q_format,
                )
            if self.guard is not None:
                smp.q_new = self.guard.observe_update(
                    smp.s, smp.a, smp.q_new, cfg.q_format
                )
            s3_out = smp
            self.reg34.stage(smp)
        if stamps is not None:
            stamps.append(perf_counter())

        # ---------------- Stage 2: update policy ---------------- #
        s2_fired = False
        if in_s2 is not None:
            smp = in_s2
            if smp.index != self._s2_started_for:
                # A fresh sample entered stage 2: start its selection.
                self._s2_started_for = smp.index
                self._s2_busy = self.stage2_latency - 1
            if self._s2_busy > 0:
                # Multi-cycle selection (probability-table policies): the
                # sample holds stage 2 while the binary search runs.  Its
                # carried Q(s,a) operand must keep tracking in-flight
                # writes that complete *during* the hold, or they would
                # commit unobserved before the fire-cycle fixup looks.
                self._s2_busy -= 1
                if forward:
                    hits_q = fix_operand_q(smp, (wb, s3_out))
                    if tel is not None and hits_q:
                        tel.forward(cyc, "S2", "q_operand", smp.index, hits_q)
                self.reg12.hold()
                st.c_stall_cycles.value += 1
                st.c_s2_hold_cycles.value += 1
                if trc is not None:
                    trc.hold(cyc, smp.index)
            elif mode == "stall" and conflict_stage2(smp.s_next, (in_s3, wb)):
                self.reg12.hold()
                st.c_stall_cycles.value += 1
                st.c_hazard_stall_cycles.value += 1
                if trc is not None:
                    trc.stall(cyc, "S2", smp.index)
            else:
                if forward:
                    hits_q = fix_operand_q(smp, (wb, s3_out))
                    if tel is not None and hits_q:
                        tel.forward(cyc, "S2", "q_operand", smp.index, hits_q)
                view = ForwardingView(T, (wb, s3_out) if forward else ())
                sel = select_update(
                    smp.s_next,
                    config=cfg,
                    draws=self.draws,
                    read_qmax=view.read_qmax,
                    read_q=view.read_q,
                    num_actions=T.num_actions,
                )
                smp.a_next = sel.action
                smp.exploited = sel.exploited
                if rule_kind == "target":
                    # Select-online / evaluate-target: the argmax came
                    # from the (forwarded) online Qmax view; the
                    # bootstrap value reads the target table.  pair_next
                    # is always a concrete address here — the stage-3
                    # fixup needs it to track wb's Polyak write.
                    smp.pair_next = T.pair_addr(smp.s_next, sel.action)
                    if smp.terminal_next:
                        smp.q_next = 0
                    else:
                        t_val = T.target.read(smp.pair_next)
                        if (
                            forward
                            and wb is not None
                            and wb.pair == smp.pair_next
                        ):
                            # wb's stage-4 Polyak write is staged, not
                            # committed; forward its result.
                            t_val = wb.t_new
                        smp.q_next = t_val
                else:
                    smp.pair_next = (
                        -1 if sel.exploited else T.pair_addr(smp.s_next, sel.action)
                    )
                    smp.q_next = 0 if smp.terminal_next else sel.q_raw
                if sel.exploited:
                    st.c_exploits.value += 1
                else:
                    st.c_explores.value += 1
                if cfg.is_on_policy:
                    self._pending_behavior = None if smp.terminal_next else sel.action
                self.reg23.stage(smp)
                s2_fired = True
                if trc is not None:
                    trc.select(cyc, smp.index)
                if tel is not None:
                    if view.hits_q:
                        tel.forward(cyc, "S2", "view_q", smp.index, view.hits_q)
                    if view.hits_qmax:
                        tel.forward(cyc, "S2", "view_qmax", smp.index, view.hits_qmax)
        if stamps is not None:
            stamps.append(perf_counter())

        # ---------------- Stage 1: issue ---------------- #
        s1_active = False
        can_issue = (in_s2 is None) or s2_fired
        budget_left = self._issue_budget is None or st.c_issued.value < self._issue_budget
        if can_issue and budget_left:
            s1_active = True
            if self._latched_issue is None:
                if self.arch_state is None:
                    state = draw_start_state(self.draws, self.mdp.start_states)
                    self._latched_issue = (state, True)
                else:
                    self._latched_issue = (self.arch_state, False)
            state, restart = self._latched_issue
            # In-flight writers at issue time: the sample just leaving S2
            # plus those in S3/S4 this cycle.
            if mode == "stall" and conflict_stage1(state, (in_s2, in_s3, wb)):
                st.c_stall_cycles.value += 1
                st.c_hazard_stall_cycles.value += 1
                if trc is not None:
                    trc.stall(cyc, "S1", -1)
            else:
                self._latched_issue = None
                forwarded = None
                if cfg.is_on_policy and not restart:
                    forwarded = self._pending_behavior
                    if forwarded is None:
                        raise AssertionError(
                            "on-policy issue without a forwarded action"
                        )
                    self._pending_behavior = None
                view = ForwardingView(T, (wb, s3_out) if forward else ())
                action = select_behavior(
                    state,
                    config=cfg,
                    draws=self.draws,
                    forwarded_action=forwarded,
                    read_qmax=view.read_qmax,
                    read_q=view.read_q,
                    num_actions=T.num_actions,
                )
                s_next = int(self.mdp.next_state[state, action])
                smp = Sample(
                    index=self.stats.issued,
                    s=state,
                    a=action,
                    pair=T.pair_addr(state, action),
                    s_next=s_next,
                    restart=restart,
                    terminal_next=bool(T.terminal[s_next]),
                )
                smp.q_sa = view.read_q(state, action)
                smp.r = T.read_reward(state, action)
                self.reg12.stage(smp)
                st.c_issued.value += 1
                if trc is not None:
                    trc.issue(cyc, smp.index)
                if tel is not None:
                    if view.hits_q:
                        tel.forward(cyc, "S1", "view_q", smp.index, view.hits_q)
                    if view.hits_qmax:
                        tel.forward(cyc, "S1", "view_qmax", smp.index, view.hits_qmax)
                if smp.terminal_next:
                    self.arch_state = None
                    st.c_episodes.value += 1
                else:
                    self.arch_state = s_next
        if stamps is not None:
            stamps.append(perf_counter())
            timer.commit(stamps)

        if tel is not None:
            # Inlined tel.occupancy(...): one method call per cycle is
            # measurable against the counters-only overhead budget.
            if s1_active:
                tel.occ_s1.value += 1
            if in_s2 is not None:
                tel.occ_s2.value += 1
            if in_s3 is not None:
                tel.occ_s3.value += 1
            if wb is not None:
                tel.occ_s4.value += 1

    def tick(self) -> None:
        """Clock edge: advance registers and commit table writes."""
        self.reg12.tick()
        self.reg23.tick()
        self.reg34.tick()
        if self.manage_commit:
            self.tables.commit()
        self.stats.c_cycles.value += 1

    def step(self) -> None:
        """One full cycle (eval + tick)."""
        self.eval()
        self.tick()

    # ------------------------------------------------------------------ #
    # Run control
    # ------------------------------------------------------------------ #

    @property
    def in_flight(self) -> int:
        """Samples issued but not yet retired."""
        return self.stats.issued - self.stats.retired

    def run(self, num_samples: int, *, max_cycles: Optional[int] = None) -> PipelineStats:
        """Issue and retire exactly ``num_samples`` updates.

        The issue budget stops stage 1 once enough samples have entered;
        the pipeline then drains.  ``max_cycles`` (default: generous bound
        proportional to the worst-case stall schedule) guards against
        deadlock regressions.
        """
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        self._issue_budget = self.stats.issued + num_samples
        if max_cycles is None:
            max_cycles = 8 * num_samples + 64
        c_retired, c_cycles = self.stats.c_retired, self.stats.c_cycles
        start_cycle = c_cycles.value
        while c_retired.value < self._issue_budget:
            if c_cycles.value - start_cycle > max_cycles:
                raise RuntimeError(
                    f"pipeline did not retire {num_samples} samples within "
                    f"{max_cycles} cycles (deadlock?)"
                )
            self.step()
        self._issue_budget = None
        return self.stats

    def enable_trace(self) -> list[TraceRecord]:
        """Start recording (index, s, a, q_new) per retirement."""
        self.trace = []
        return self.trace

    # ------------------------------------------------------------------ #
    # Checkpointing (see repro.robustness.checkpoint)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Architectural checkpoint, valid only at a *drained* boundary
        (as after :meth:`run` returns): in-flight samples live in pipeline
        registers whose contents are derivable, not architectural, so we
        refuse to snapshot mid-burst rather than capture half a machine."""
        if self.in_flight or self.reg12.valid or self.reg23.valid or self.reg34.valid:
            raise RuntimeError(
                "pipeline checkpoint requires a drained pipeline "
                f"({self.in_flight} samples in flight)"
            )
        return {
            "tables": self.tables.state_dict(),
            "draws": self.draws.state_dict(),
            "arch_state": self.arch_state,
            "pending_behavior": self._pending_behavior,
            "stats": self.stats.as_dict(),
            # The pipeline never hosts target_sync_period > 0, so the
            # rule state is just its name (extra tables are inside
            # "tables" already).
            "rule": self.rule.state_dict(self.tables, 0),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        self.tables.load_state_dict(state["tables"])
        self.draws.load_state_dict(state["draws"])
        self.arch_state = state["arch_state"]
        self._pending_behavior = state["pending_behavior"]
        self.reg12.flush()
        self.reg23.flush()
        self.reg34.flush()
        self._latched_issue = None
        self._s2_busy = 0
        self._s2_started_for = -1
        rule_state = state.get("rule")
        if rule_state is not None:
            self.rule.load_state_dict(rule_state)
        for name, value in state["stats"].items():
            # Restore counters only; derived keys ("samples") recompute.
            if name in PipelineStats._FIELDS:
                setattr(self.stats, name, value)

    def q_float(self) -> np.ndarray:
        """Current Q table as floats, ``(S, A)``."""
        return self.tables.q_float_matrix()
