"""Cycle-accurate simulator of the QTAccel 4-stage pipeline (paper §IV).

Stage responsibilities (Fig. 1):

1. **Stage 1** — pick the current state (previous sample's next state, or
   a random start at episode boundaries); select the behaviour action
   (random for Q-Learning; the forwarded stage-2 action for SARSA); run
   the transition function; read ``Q(s, a)`` and ``R``; derive the
   coefficient products.
2. **Stage 2** — select the update action for ``s'`` (greedy via the Qmax
   table, or the single-draw e-greedy circuit) and fetch ``Q(s', a')``.
3. **Stage 3** — the arithmetic stage: three DSP products accumulated and
   renormalised (:func:`repro.fixedpoint.ops.q_update`).
4. **Stage 4** — write back ``Q_{t+1}(s, a)``; raise ``Qmax[s]`` if
   exceeded.

Evaluation order inside a cycle is S4, S3, S2, S1, which realises the
same-cycle forwarding paths (S3 output into S2/S1 reads; SARSA's stage-2
action into stage 1).  Hazard behaviour is selected by
``config.hazard_mode``:

* ``forward`` — the paper's design: every in-flight value is forwarded,
  one sample per cycle, sequential semantics (see
  :mod:`repro.core.hazards` for the one documented stage-1 lag).
* ``stall`` — no forwarding; conservative state-granular hazard checks
  bubble the pipeline until conflicting samples drain.  Same trajectory
  as sequential execution, more cycles.
* ``stale`` — no forwarding, no stalls: reads may be stale.  The
  trajectory diverges; the ablation benches quantify the damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..envs.base import DenseMdp
from ..fixedpoint import ops
from ..rtl.register import PipelineRegister
from .config import QTAccelConfig
from .hazards import (
    ForwardingView,
    Sample,
    conflict_stage1,
    conflict_stage2,
    fix_operand_q,
    fix_operand_qnext,
)
from .policies import PolicyDraws, draw_start_state, select_behavior, select_update
from .tables import AcceleratorTables

#: Per-retirement trace record: (sample index, s, a, q_new_raw).
TraceRecord = tuple[int, int, int, int]


@dataclass
class PipelineStats:
    """Counters accumulated while the pipeline runs."""

    cycles: int = 0
    issued: int = 0
    retired: int = 0
    stall_cycles: int = 0
    episodes: int = 0
    exploits: int = 0
    explores: int = 0

    @property
    def cycles_per_sample(self) -> float:
        return self.cycles / self.retired if self.retired else float("inf")


class QTAccelPipeline:
    """One QTAccel pipeline bound to an environment and a configuration.

    The pipeline owns its architectural state (current state register,
    SARSA action-forwarding register) but may *share* its
    :class:`AcceleratorTables` and :class:`PolicyDraws` with another
    pipeline (the state-sharing multi-agent mode).
    """

    def __init__(
        self,
        mdp: DenseMdp,
        config: QTAccelConfig,
        *,
        tables: Optional[AcceleratorTables] = None,
        draws: Optional[PolicyDraws] = None,
        manage_commit: bool = True,
        stage2_latency: int = 1,
    ):
        if config.qmax_mode == "exact":
            raise ValueError(
                "the cycle-accurate pipeline models single-cycle Qmax write "
                "paths (monotonic/follow); use the functional simulator for "
                "the 'exact' ablation"
            )
        self.mdp = mdp
        self.config = config
        self.tables = tables if tables is not None else AcceleratorTables(mdp, config)
        self.draws = draws if draws is not None else PolicyDraws.from_config(config)
        (_, _, self.one_minus_alpha, self.alpha_gamma) = config.coefficients()
        self.alpha_raw = config.coefficients()[0]
        #: When False the pipeline stages table writes but leaves the
        #: clock-edge commit to an external arbiter (shared-table mode).
        self.manage_commit = manage_commit

        self.reg12: PipelineRegister[Sample] = PipelineRegister("s1->s2")
        self.reg23: PipelineRegister[Sample] = PipelineRegister("s2->s3")
        self.reg34: PipelineRegister[Sample] = PipelineRegister("s3->s4")

        self.arch_state: Optional[int] = None  # None => next sample restarts
        self._pending_behavior: Optional[int] = None  # SARSA forwarded action
        self._latched_issue: Optional[tuple[int, bool]] = None  # (state, restart)
        self._issue_budget: Optional[int] = None
        #: Cycles stage 2 occupies per sample.  1 for the paper's greedy /
        #: e-greedy selectors; ``ceil(log2 |A|)`` models the §VII-B
        #: probability-table binary search, whose initiation-interval cost
        #: is then *measured* by the pipeline instead of assumed.
        if stage2_latency < 1:
            raise ValueError("stage2_latency must be >= 1")
        self.stage2_latency = stage2_latency
        self._s2_busy = 0
        self._s2_started_for = -1

        self.stats = PipelineStats()
        self.trace: Optional[list[TraceRecord]] = None
        self.on_retire: Optional[Callable[[Sample], None]] = None

    # ------------------------------------------------------------------ #
    # One clock cycle
    # ------------------------------------------------------------------ #

    def eval(self) -> None:
        """Combinational phase of one cycle (stages evaluated S4..S1)."""
        cfg = self.config
        mode = cfg.hazard_mode
        T = self.tables
        forward = mode == "forward"

        wb = self.reg34.value if self.reg34.valid else None
        in_s3 = self.reg23.value if self.reg23.valid else None
        in_s2 = self.reg12.value if self.reg12.valid else None

        # ---------------- Stage 4: write-back ---------------- #
        if wb is not None:
            T.writeback(wb.s, wb.a, wb.q_new)
            self.stats.retired += 1
            if self.trace is not None:
                self.trace.append((wb.index, wb.s, wb.a, wb.q_new))
            if self.on_retire is not None:
                self.on_retire(wb)

        # ---------------- Stage 3: arithmetic ---------------- #
        s3_out: Optional[Sample] = None
        if in_s3 is not None:
            smp = in_s3
            if forward and wb is not None:
                fix_operand_q(smp, (wb,))
                fix_operand_qnext(smp, (wb,), cfg.qmax_mode)
            smp.q_new = ops.q_update(
                smp.q_sa,
                smp.r,
                smp.q_next,
                alpha=self.alpha_raw,
                one_minus_alpha=self.one_minus_alpha,
                alpha_gamma=self.alpha_gamma,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
            s3_out = smp
            self.reg34.stage(smp)

        # ---------------- Stage 2: update policy ---------------- #
        s2_fired = False
        if in_s2 is not None:
            smp = in_s2
            if smp.index != self._s2_started_for:
                # A fresh sample entered stage 2: start its selection.
                self._s2_started_for = smp.index
                self._s2_busy = self.stage2_latency - 1
            if self._s2_busy > 0:
                # Multi-cycle selection (probability-table policies): the
                # sample holds stage 2 while the binary search runs.  Its
                # carried Q(s,a) operand must keep tracking in-flight
                # writes that complete *during* the hold, or they would
                # commit unobserved before the fire-cycle fixup looks.
                self._s2_busy -= 1
                if forward:
                    fix_operand_q(smp, (wb, s3_out))
                self.reg12.hold()
                self.stats.stall_cycles += 1
            elif mode == "stall" and conflict_stage2(smp.s_next, (in_s3, wb)):
                self.reg12.hold()
                self.stats.stall_cycles += 1
            else:
                if forward:
                    fix_operand_q(smp, (wb, s3_out))
                view = ForwardingView(T, (wb, s3_out) if forward else ())
                sel = select_update(
                    smp.s_next,
                    config=cfg,
                    draws=self.draws,
                    read_qmax=view.read_qmax,
                    read_q=view.read_q,
                    num_actions=T.num_actions,
                )
                smp.a_next = sel.action
                smp.exploited = sel.exploited
                smp.pair_next = (
                    -1 if sel.exploited else T.pair_addr(smp.s_next, sel.action)
                )
                smp.q_next = 0 if smp.terminal_next else sel.q_raw
                if sel.exploited:
                    self.stats.exploits += 1
                else:
                    self.stats.explores += 1
                if cfg.is_on_policy:
                    self._pending_behavior = None if smp.terminal_next else sel.action
                self.reg23.stage(smp)
                s2_fired = True

        # ---------------- Stage 1: issue ---------------- #
        can_issue = (in_s2 is None) or s2_fired
        budget_left = self._issue_budget is None or self.stats.issued < self._issue_budget
        if can_issue and budget_left:
            if self._latched_issue is None:
                if self.arch_state is None:
                    state = draw_start_state(self.draws, self.mdp.start_states)
                    self._latched_issue = (state, True)
                else:
                    self._latched_issue = (self.arch_state, False)
            state, restart = self._latched_issue
            # In-flight writers at issue time: the sample just leaving S2
            # plus those in S3/S4 this cycle.
            if mode == "stall" and conflict_stage1(state, (in_s2, in_s3, wb)):
                self.stats.stall_cycles += 1
            else:
                self._latched_issue = None
                forwarded = None
                if cfg.is_on_policy and not restart:
                    forwarded = self._pending_behavior
                    if forwarded is None:
                        raise AssertionError(
                            "on-policy issue without a forwarded action"
                        )
                    self._pending_behavior = None
                view = ForwardingView(T, (wb, s3_out) if forward else ())
                action = select_behavior(
                    state,
                    config=cfg,
                    draws=self.draws,
                    forwarded_action=forwarded,
                    read_qmax=view.read_qmax,
                    read_q=view.read_q,
                    num_actions=T.num_actions,
                )
                s_next = int(self.mdp.next_state[state, action])
                smp = Sample(
                    index=self.stats.issued,
                    s=state,
                    a=action,
                    pair=T.pair_addr(state, action),
                    s_next=s_next,
                    restart=restart,
                    terminal_next=bool(T.terminal[s_next]),
                )
                smp.q_sa = view.read_q(state, action)
                smp.r = T.read_reward(state, action)
                self.reg12.stage(smp)
                self.stats.issued += 1
                if smp.terminal_next:
                    self.arch_state = None
                    self.stats.episodes += 1
                else:
                    self.arch_state = s_next

    def tick(self) -> None:
        """Clock edge: advance registers and commit table writes."""
        self.reg12.tick()
        self.reg23.tick()
        self.reg34.tick()
        if self.manage_commit:
            self.tables.commit()
        self.stats.cycles += 1

    def step(self) -> None:
        """One full cycle (eval + tick)."""
        self.eval()
        self.tick()

    # ------------------------------------------------------------------ #
    # Run control
    # ------------------------------------------------------------------ #

    @property
    def in_flight(self) -> int:
        """Samples issued but not yet retired."""
        return self.stats.issued - self.stats.retired

    def run(self, num_samples: int, *, max_cycles: Optional[int] = None) -> PipelineStats:
        """Issue and retire exactly ``num_samples`` updates.

        The issue budget stops stage 1 once enough samples have entered;
        the pipeline then drains.  ``max_cycles`` (default: generous bound
        proportional to the worst-case stall schedule) guards against
        deadlock regressions.
        """
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        self._issue_budget = self.stats.issued + num_samples
        if max_cycles is None:
            max_cycles = 8 * num_samples + 64
        start_cycle = self.stats.cycles
        while self.stats.retired < self._issue_budget:
            if self.stats.cycles - start_cycle > max_cycles:
                raise RuntimeError(
                    f"pipeline did not retire {num_samples} samples within "
                    f"{max_cycles} cycles (deadlock?)"
                )
            self.step()
        self._issue_budget = None
        return self.stats

    def enable_trace(self) -> list[TraceRecord]:
        """Start recording (index, s, a, q_new) per retirement."""
        self.trace = []
        return self.trace

    def q_float(self) -> np.ndarray:
        """Current Q table as floats, ``(S, A)``."""
        return self.tables.q_float_matrix()
