"""User-facing accelerator API.

:class:`QLearningAccelerator` and :class:`SarsaAccelerator` bundle an
environment, a :class:`QTAccelConfig` and a device into one object with
two interchangeable engines:

* ``engine="functional"`` (default) — the fast sequential-semantics
  simulator, for training runs and convergence studies;
* ``engine="cycle"`` — the cycle-accurate pipeline, for per-cycle
  throughput and hazard behaviour.

Both engines share semantics (the equivalence the test suite asserts),
but each owns its state: switching engines mid-run would mix two
diverging copies of the Q table, so it is rejected unless ``reset()`` is
called in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device.parts import FpgaPart, XCVU13P
from ..device.power import power_mw
from ..device.resources import ResourceReport, estimate_resources
from ..device.timing import ThroughputEstimate, throughput
from ..envs.base import DenseMdp
from .config import QTAccelConfig
from .functional import FunctionalSimulator
from .metrics import ConvergenceReport, convergence_report
from .pipeline import QTAccelPipeline
from .tables import AcceleratorTables

ENGINES = ("functional", "cycle")


@dataclass
class RunResult:
    """Outcome of one :meth:`QTAccelAccelerator.run` call."""

    engine: str
    samples: int
    episodes: int
    cycles: Optional[int] = None
    stall_cycles: Optional[int] = None

    @property
    def cycles_per_sample(self) -> Optional[float]:
        if self.cycles is None or self.samples == 0:
            return None
        return self.cycles / self.samples


class QTAccelAccelerator:
    """One QTAccel instance: environment + config + device model."""

    def __init__(
        self,
        mdp: DenseMdp,
        config: QTAccelConfig,
        *,
        part: FpgaPart = XCVU13P,
        telemetry=None,
    ):
        self.mdp = mdp
        self.config = config
        self.part = part
        #: Explicit :class:`~repro.telemetry.TelemetrySession` (ambient
        #: sessions reach the engines without it; see repro.telemetry).
        self.telemetry = telemetry
        self._engine: Optional[str] = None
        self._functional: Optional[FunctionalSimulator] = None
        self._pipeline: Optional[QTAccelPipeline] = None
        self._samples = 0
        self._episodes = 0

    # ------------------------------------------------------------------ #
    # Engines
    # ------------------------------------------------------------------ #

    def _bind(self, engine: str):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")
        if self._engine is not None and engine != self._engine:
            raise RuntimeError(
                f"engine already bound to {self._engine!r}; call reset() "
                "before switching engines"
            )
        self._engine = engine
        if engine == "functional":
            if self._functional is None:
                self._functional = FunctionalSimulator(self.mdp, self.config)
                if self.telemetry is not None:
                    self.telemetry.attach(self._functional, "functional")
            return self._functional
        if self._pipeline is None:
            self._pipeline = QTAccelPipeline(
                self.mdp, self.config, telemetry=self.telemetry
            )
        return self._pipeline

    def run(self, num_samples: int, *, engine: str = "functional") -> RunResult:
        """Process ``num_samples`` Q-value updates on the chosen engine."""
        sim = self._bind(engine)
        if engine == "functional":
            before = sim.stats.episodes
            sim.run(num_samples)
            self._samples += num_samples
            self._episodes = sim.stats.episodes
            return RunResult(
                engine=engine,
                samples=num_samples,
                episodes=sim.stats.episodes - before,
            )
        before = sim.stats.episodes
        cyc0, stall0 = sim.stats.cycles, sim.stats.stall_cycles
        sim.run(num_samples)
        self._samples += num_samples
        self._episodes = sim.stats.episodes
        return RunResult(
            engine=engine,
            samples=num_samples,
            episodes=sim.stats.episodes - before,
            cycles=sim.stats.cycles - cyc0,
            stall_cycles=sim.stats.stall_cycles - stall0,
        )

    def reset(self) -> None:
        """Drop all learned state and unbind the engine."""
        self._engine = None
        self._functional = None
        self._pipeline = None
        self._samples = 0
        self._episodes = 0

    # ------------------------------------------------------------------ #
    # State inspection
    # ------------------------------------------------------------------ #

    @property
    def tables(self) -> Optional[AcceleratorTables]:
        if self._engine == "functional" and self._functional is not None:
            return self._functional.tables
        if self._engine == "cycle" and self._pipeline is not None:
            return self._pipeline.tables
        return None

    @property
    def samples_processed(self) -> int:
        return self._samples

    @property
    def episodes_completed(self) -> int:
        return self._episodes

    def q_values(self) -> np.ndarray:
        """Learned Q table as floats, ``(S, A)``; zeros before any run."""
        t = self.tables
        if t is None:
            return np.zeros((self.mdp.num_states, self.mdp.num_actions))
        return t.q_float_matrix()

    def policy(self) -> np.ndarray:
        """Greedy policy (argmax action per state) of the learned table."""
        return np.argmax(self.q_values(), axis=1).astype(np.int32)

    def convergence(self, *, q_star: np.ndarray | None = None) -> ConvergenceReport:
        """Compare the learned table against the value-iteration oracle."""
        return convergence_report(
            self.mdp,
            self.q_values(),
            gamma=self.config.gamma,
            samples=self._samples,
            q_star=q_star,
        )

    # ------------------------------------------------------------------ #
    # Device-model views
    # ------------------------------------------------------------------ #

    def resource_report(self, **kw) -> ResourceReport:
        """Analytical resource usage on the bound device."""
        return estimate_resources(
            self.mdp.num_states, self.mdp.num_actions, self.config, part=self.part, **kw
        )

    def throughput_estimate(
        self, *, cycles_per_sample: float | None = None
    ) -> ThroughputEstimate:
        """Modelled throughput; cycles/sample defaults to the measured
        value when the cycle engine has run, else the design's 1.0."""
        if cycles_per_sample is None:
            if self._engine == "cycle" and self._pipeline is not None and self._pipeline.stats.retired:
                cycles_per_sample = self._pipeline.stats.cycles_per_sample
            else:
                cycles_per_sample = 1.0
        return throughput(self.resource_report(), cycles_per_sample=cycles_per_sample)

    def power_estimate_mw(self) -> float:
        """Modelled power draw in mW."""
        return power_mw(self.resource_report())

    def record_device_telemetry(self, session=None) -> None:
        """Join this design point's device models into a telemetry session
        (modelled clock / wall-time / energy for the measured cycles).

        Uses ``session``, else this accelerator's explicit session, else
        the ambient one; silently a no-op when none is active.
        """
        from ..telemetry.session import current_session

        sess = session or self.telemetry or current_session()
        if sess is not None:
            sess.record_device(self.resource_report())


class QLearningAccelerator(QTAccelAccelerator):
    """QTAccel customised for Q-Learning (§V-A): random behaviour policy,
    greedy update policy served by the Qmax table."""

    def __init__(
        self, mdp: DenseMdp, *, part: FpgaPart = XCVU13P, telemetry=None, **config_kw
    ):
        super().__init__(
            mdp, QTAccelConfig.qlearning(**config_kw), part=part, telemetry=telemetry
        )


class SarsaAccelerator(QTAccelAccelerator):
    """QTAccel customised for SARSA (§V-B): e-greedy on-policy selection
    with the stage-2 action forwarded to stage 1."""

    def __init__(
        self, mdp: DenseMdp, *, part: FpgaPart = XCVU13P, telemetry=None, **config_kw
    ):
        super().__init__(
            mdp, QTAccelConfig.sarsa(**config_kw), part=part, telemetry=telemetry
        )
