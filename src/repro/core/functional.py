"""Fast functional simulator with pipeline-identical semantics.

The cycle-accurate pipeline's forwarding network makes its update stream
*sequential*: each sample reads the values all older samples wrote (with
one documented exception, see below).  The functional simulator therefore
executes the same algorithm as a plain sequential loop — same LFSR draw
discipline, same fixed-point kernels, same monotonic Qmax write path —
and produces the *bit-identical* Q-table trajectory at a fraction of the
cost.  The test suite asserts that equivalence sample by sample.

The exception: a SARSA episode-restart behaviour read happens in stage 1
while the immediately preceding sample's update is still two stages from
existing, so in hardware that read lags by exactly one sample.  With
``behavior_lag=True`` (default, matching ``hazard_mode="forward"``) the
functional simulator reproduces the lag by reading around the last write;
``behavior_lag=False`` gives strictly sequential semantics (matching
``hazard_mode="stall"``).

Unlike the pipeline, the functional simulator also supports the
``qmax_mode="exact"`` ablation (recomputed row maxima).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..envs.base import DenseMdp
from ..fixedpoint import ops
from .config import QTAccelConfig
from .pipeline import TraceRecord
from .policies import (
    PolicyDraws,
    draw_start_state,
    egreedy_select,
    select_behavior,
    select_update,
)
from .runstats import RunStatsContract
from .tables import AcceleratorTables


@dataclass
class FunctionalStats(RunStatsContract):
    """Counters accumulated by the functional simulator.

    Satisfies the shared run-stats contract (:mod:`repro.core.runstats`):
    ``samples`` is a plain counter field and ``cycles`` is ``None`` —
    the functional engine has no clock.
    """

    samples: int = 0
    episodes: int = 0
    exploits: int = 0
    explores: int = 0


@dataclass
class _LastWrite:
    """The most recent write, for the lagged stage-1 view."""

    pair: int = -1
    state: int = -1
    prev_q: int = 0
    prev_qmax: int = 0
    prev_qmax_action: int = 0


class FunctionalSimulator:
    """Sequential-semantics QTAccel simulator (the HPC fast path)."""

    def __init__(
        self,
        mdp: DenseMdp,
        config: QTAccelConfig,
        *,
        tables: Optional[AcceleratorTables] = None,
        draws: Optional[PolicyDraws] = None,
        behavior_lag: bool = True,
    ):
        self.mdp = mdp
        self.config = config
        self.tables = tables if tables is not None else AcceleratorTables(mdp, config)
        self.draws = draws if draws is not None else PolicyDraws.from_config(config)
        (_, _, self.one_minus_alpha, self.alpha_gamma) = config.coefficients()
        self.alpha_raw = config.coefficients()[0]
        self.behavior_lag = behavior_lag
        #: The configured stage-3 update rule and its raw coefficients
        #: (see :mod:`repro.algorithms`).  The plain rules keep the
        #: original inline hot path; the accelerated kinds branch.
        self.rule = config.rule
        self._rule_kind = self.rule.kind
        self._rule_coefs = self.rule.coefficients(config)
        #: Updates since the last hard target sync (target rule with
        #: ``target_sync_period > 0`` only).
        self._target_count = 0

        self.arch_state: Optional[int] = None
        self._forwarded_action: Optional[int] = None
        self._last_write = _LastWrite()
        self.stats = FunctionalStats()
        self.trace: Optional[list[TraceRecord]] = None
        #: Optional per-sample state log (for collision studies).
        self.state_log: Optional[list[int]] = None
        #: Optional :class:`repro.robustness.guards.DivergenceGuard`
        #: observing every stage-3 result.  None (the default) keeps the
        #: hot loop free of robustness overhead.
        self.guard = None

    # ------------------------------------------------------------------ #
    # Lagged stage-1 read view
    # ------------------------------------------------------------------ #

    def _read_q_behavior(self, state: int, action: int) -> int:
        pair = self.tables.pair_addr(state, action)
        if self.behavior_lag and pair == self._last_write.pair:
            return self._last_write.prev_q
        return self.tables.q.read(pair)

    def _read_qmax_behavior(self, state: int) -> tuple[int, int]:
        if self.behavior_lag and state == self._last_write.state:
            return self._last_write.prev_qmax, self._last_write.prev_qmax_action
        return self.tables.read_qmax(state)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self, num_samples: int) -> FunctionalStats:
        """Execute ``num_samples`` updates sequentially."""
        if num_samples < 0:
            raise ValueError("num_samples must be non-negative")
        cfg = self.config
        T = self.tables
        mdp = self.mdp
        draws = self.draws
        on_policy = cfg.is_on_policy
        next_state = mdp.next_state
        terminal = T.terminal
        coef_fmt = cfg.coef_format
        q_fmt = cfg.q_format
        guard = self.guard
        ecc = T._ecc
        rule_kind = self._rule_kind
        coefs = self._rule_coefs
        mom_ram = T.momentum
        tgt_ram = T.target
        sync_period = cfg.target_sync_period

        for _ in range(num_samples):
            # -------- stage-1 equivalent: state + behaviour action -------- #
            if self.arch_state is None:
                state = draw_start_state(draws, mdp.start_states)
                restart = True
            else:
                state = self.arch_state
                restart = False

            forwarded = None
            if on_policy and not restart:
                forwarded = self._forwarded_action
                if forwarded is None:
                    raise AssertionError("on-policy sample without forwarded action")
            action = select_behavior(
                state,
                config=cfg,
                draws=draws,
                forwarded_action=forwarded,
                read_qmax=self._read_qmax_behavior,
                read_q=self._read_q_behavior,
                num_actions=T.num_actions,
            )
            pair = T.pair_addr(state, action)
            s_next = int(next_state[state, action])
            terminal_next = bool(terminal[s_next])
            q_sa = T.q.read(pair)
            r = T.rewards.read(pair)

            # -------- stage-2 equivalent: update policy -------- #
            sel = select_update(
                s_next,
                config=cfg,
                draws=draws,
                read_qmax=T.read_qmax,
                read_q=T.read_q,
                num_actions=T.num_actions,
            )
            if sel.exploited:
                self.stats.exploits += 1
            else:
                self.stats.explores += 1
            if rule_kind == "target" and not terminal_next:
                # Select-online / evaluate-target: the argmax comes from
                # the online Qmax cache, the bootstrap value from the
                # target table.
                q_next = tgt_ram.read(T.pair_addr(s_next, sel.action))
            else:
                q_next = 0 if terminal_next else sel.q_raw

            # -------- stage-3 equivalent: datapath -------- #
            if rule_kind == "momentum":
                q_new = ops.q_update_momentum(
                    q_sa,
                    r,
                    q_next,
                    mom_ram.read(pair),
                    alpha=self.alpha_raw,
                    one_minus_alpha=self.one_minus_alpha,
                    alpha_gamma=self.alpha_gamma,
                    beta=coefs.beta,
                    coef_fmt=coef_fmt,
                    q_fmt=q_fmt,
                )
            else:
                q_new = ops.q_update(
                    q_sa,
                    r,
                    q_next,
                    alpha=self.alpha_raw,
                    one_minus_alpha=self.one_minus_alpha,
                    alpha_gamma=self.alpha_gamma,
                    coef_fmt=coef_fmt,
                    q_fmt=q_fmt,
                )
            if guard is not None:
                q_new = guard.observe_update(state, action, q_new, q_fmt)

            # -------- stage-4 equivalent: write-back -------- #
            lw = self._last_write
            lw.pair = pair
            lw.state = state
            lw.prev_q = q_sa
            if ecc:
                # Decode the raw words the lagged view snapshots below
                # (ECC tables only; plain tables skip the branch).
                T.qmax.scrub_word(state)
                T.qmax_action.scrub_word(state)
            lw.prev_qmax = int(T.qmax.data[state])
            lw.prev_qmax_action = int(T.qmax_action.data[state])
            T.writeback_now(state, action, q_new)
            if rule_kind == "momentum":
                # Historical iterate: M(s,a) <- the pre-update Q(s,a).
                mom_ram.write_now(pair, q_sa)
            elif rule_kind == "target":
                # Lazy Polyak RMW of the written entry, then the
                # optional periodic hard sync.
                t_new = ops.polyak_update(
                    tgt_ram.read(pair),
                    q_new,
                    tau=coefs.tau,
                    one_minus_tau=coefs.one_minus_tau,
                    coef_fmt=coef_fmt,
                    q_fmt=q_fmt,
                )
                tgt_ram.write_now(pair, t_new)
                self._target_count += 1
                if sync_period and self._target_count >= sync_period:
                    T.sync_target()
                    self._target_count = 0

            if self.trace is not None:
                self.trace.append((self.stats.samples, state, action, q_new))
            if self.state_log is not None:
                self.state_log.append(state)
            self.stats.samples += 1

            if terminal_next:
                self.arch_state = None
                self._forwarded_action = None
                self.stats.episodes += 1
            else:
                self.arch_state = s_next
                self._forwarded_action = sel.action if on_policy else None

        return self.stats

    # ------------------------------------------------------------------ #
    # Externally driven transitions (the repro.serve ingress surface)
    # ------------------------------------------------------------------ #

    def apply_transition(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
    ) -> int:
        """Apply one externally supplied ``(s, a, r, s')`` transition.

        This is stages 2-4 of the accelerator with stage 1 replaced by
        the caller: the environment lookup and behaviour draw are
        skipped (the client chose the action and observed the reward),
        so the only randomness consumed is the update-policy draw of an
        e-greedy configuration — exactly one ``policy`` LFSR word, as
        in :meth:`run`.  The reward is quantised into ``q_format`` on
        ingress (the hardware preloads quantised reward tables; an
        external sample quantises at the same point).

        Interleaving :meth:`apply_transition` with :meth:`run` is
        well-defined: the lag latch, episode latch and forwarded-action
        latch are updated exactly as a :meth:`run` sample would.
        Divergence guards are not consulted on this path (it must stay
        bit-identical to the fleet backends' lane ops, which have no
        guard hook).  Returns the raw written Q value.
        """
        cfg = self.config
        T = self.tables
        if not 0 <= state < T.num_states or not 0 <= next_state < T.num_states:
            raise ValueError(
                f"state/next_state out of range [0, {T.num_states}): "
                f"{state}, {next_state}"
            )
        if not 0 <= action < T.num_actions:
            raise ValueError(f"action {action} out of range [0, {T.num_actions})")

        pair = T.pair_addr(state, action)
        q_sa = T.q.read(pair)
        r = cfg.q_format.quantize(float(reward))

        # -------- stage-2 equivalent: update policy -------- #
        sel = select_update(
            next_state,
            config=cfg,
            draws=self.draws,
            read_qmax=T.read_qmax,
            read_q=T.read_q,
            num_actions=T.num_actions,
        )
        if sel.exploited:
            self.stats.exploits += 1
        else:
            self.stats.explores += 1
        rule_kind = self._rule_kind
        coefs = self._rule_coefs
        if rule_kind == "target" and not terminal:
            q_next = T.target.read(T.pair_addr(next_state, sel.action))
        else:
            q_next = 0 if terminal else sel.q_raw

        # -------- stage-3 equivalent: datapath -------- #
        if rule_kind == "momentum":
            q_new = ops.q_update_momentum(
                q_sa,
                r,
                q_next,
                T.momentum.read(pair),
                alpha=self.alpha_raw,
                one_minus_alpha=self.one_minus_alpha,
                alpha_gamma=self.alpha_gamma,
                beta=coefs.beta,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
        else:
            q_new = ops.q_update(
                q_sa,
                r,
                q_next,
                alpha=self.alpha_raw,
                one_minus_alpha=self.one_minus_alpha,
                alpha_gamma=self.alpha_gamma,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )

        # -------- stage-4 equivalent: write-back -------- #
        lw = self._last_write
        lw.pair = pair
        lw.state = state
        lw.prev_q = q_sa
        if T._ecc:
            T.qmax.scrub_word(state)
            T.qmax_action.scrub_word(state)
        lw.prev_qmax = int(T.qmax.data[state])
        lw.prev_qmax_action = int(T.qmax_action.data[state])
        T.writeback_now(state, action, q_new)
        if rule_kind == "momentum":
            T.momentum.write_now(pair, q_sa)
        elif rule_kind == "target":
            t_new = ops.polyak_update(
                T.target.read(pair),
                q_new,
                tau=coefs.tau,
                one_minus_tau=coefs.one_minus_tau,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
            T.target.write_now(pair, t_new)
            self._target_count += 1
            if cfg.target_sync_period and self._target_count >= cfg.target_sync_period:
                T.sync_target()
                self._target_count = 0

        if self.trace is not None:
            self.trace.append((self.stats.samples, state, action, q_new))
        if self.state_log is not None:
            self.state_log.append(state)
        self.stats.samples += 1

        if terminal:
            self.arch_state = None
            self._forwarded_action = None
            self.stats.episodes += 1
        else:
            self.arch_state = next_state
            self._forwarded_action = sel.action if cfg.is_on_policy else None
        return q_new

    def query_action(self, state: int, explore: bool = True) -> int:
        """Recommend an action for ``state`` without updating any table.

        ``explore=True`` runs the single-draw e-greedy circuit (one
        ``policy`` LFSR word against the committed tables — queries are
        not samples, so the lagged stage-1 view does not apply);
        ``explore=False`` is a pure Qmax-action read and consumes no
        randomness.  Stats counters are untouched either way.
        """
        T = self.tables
        if not 0 <= state < T.num_states:
            raise ValueError(f"state {state} out of range [0, {T.num_states})")
        if not explore:
            return T.read_qmax(state)[1]
        return egreedy_select(
            state,
            epsilon=self.config.epsilon,
            draws=self.draws,
            read_qmax=T.read_qmax,
            read_q=T.read_q,
            num_actions=T.num_actions,
        ).action

    def enable_trace(self) -> list[TraceRecord]:
        """Start recording (index, s, a, q_new) per sample."""
        self.trace = []
        return self.trace

    # ------------------------------------------------------------------ #
    # Checkpointing (see repro.robustness.checkpoint)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Full architectural checkpoint: resuming from it replays the
        exact trajectory an uninterrupted run would produce."""
        lw = self._last_write
        return {
            "tables": self.tables.state_dict(),
            "draws": self.draws.state_dict(),
            "arch_state": self.arch_state,
            "forwarded_action": self._forwarded_action,
            "last_write": (lw.pair, lw.state, lw.prev_q, lw.prev_qmax, lw.prev_qmax_action),
            "stats": vars(self.stats).copy(),
            "rule": self.rule.state_dict(self.tables, self._target_count),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        self.tables.load_state_dict(state["tables"])
        self.draws.load_state_dict(state["draws"])
        self.arch_state = state["arch_state"]
        self._forwarded_action = state["forwarded_action"]
        lw = self._last_write
        (lw.pair, lw.state, lw.prev_q, lw.prev_qmax, lw.prev_qmax_action) = state[
            "last_write"
        ]
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)
        rule_state = state.get("rule")
        self._target_count = (
            self.rule.load_state_dict(rule_state) if rule_state is not None else 0
        )

    def q_float(self) -> np.ndarray:
        """Current Q table as floats, ``(S, A)``."""
        return self.tables.q_float_matrix()
