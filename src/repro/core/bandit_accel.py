"""Multi-armed bandit customisations of QTAccel (paper §VII-B).

Three accelerator variants, each a small specialisation of the same
datapath:

* :class:`EpsilonGreedyBanditAccelerator` — a *stateless* bandit: the Q
  table degenerates to one row of ``M`` arm values, rewards come from the
  on-chip CLT normal sampler instead of the reward table, and the update
  is the exponential moving average ``Q(m) <- (1-a) Q(m) + a r`` (the
  ``gamma = 0`` corner of the standard datapath).
* :class:`Exp3Accelerator` — the paper's probability-distribution policy:
  a per-arm probability table (the third ``|S| x |A|`` BRAM of §IV-B),
  sampled by binary search over the cumulative distribution in
  ``ceil(log2 M)`` cycles (the initiation-interval cost §VII's future
  work acknowledges), with the EXP3 weight/probability update of eq. (5)
  on the write-back path.
* :class:`StatefulBanditAccelerator` — §VII-B "Stateful Bandits": the
  Q-table row index is the concatenation of the per-arm state bits, and
  the usual bootstrapped update applies.

All draws run through LFSRs and all Q arithmetic through the shared
fixed-point kernels, like every other engine in the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..envs.bandits import BanditEnv, StatefulBanditEnv
from ..fixedpoint import ops
from ..fixedpoint.format import FxpFormat
from ..rtl.lfsr import Lfsr
from ..rtl.rng import UniformSource
from .config import QTAccelConfig


def _bandit_group(telemetry, name: str):
    """Counter group for a bandit engine, or ``None`` when detached.

    Bandits have no pipeline to probe; they report run-level counters
    (pulls, mean reward, selection cycles) through a namespaced
    :class:`~repro.telemetry.session.CounterGroup`.
    """
    from ..telemetry.session import current_session

    session = telemetry if telemetry is not None else current_session()
    return session.group(name) if session is not None else None


@dataclass
class BanditRunStats:
    """Outcome of a bandit accelerator run."""

    pulls: int
    chosen: np.ndarray  # arm index per step
    rewards: np.ndarray  # realised reward per step

    def cumulative_regret(self, env: BanditEnv) -> np.ndarray:
        """Cumulative pseudo-regret against the best arm."""
        return env.regret_of(self.chosen)

    @property
    def mean_reward(self) -> float:
        return float(self.rewards.mean()) if self.rewards.size else 0.0


def bandit_cycles_per_sample(num_arms: int, *, probability_policy: bool) -> float:
    """Initiation interval of the bandit pipeline.

    Greedy/e-greedy selection is single-cycle (Qmax read); the
    probability-table policy pays ``ceil(log2 M)`` cycles of binary
    search per sample (§VII-B).
    """
    if probability_policy:
        return max(1.0, math.ceil(math.log2(max(2, num_arms))))
    return 1.0


class EpsilonGreedyBanditAccelerator:
    """Stateless e-greedy bandit on the QTAccel datapath."""

    def __init__(
        self,
        env: BanditEnv,
        *,
        alpha: float = 0.125,
        epsilon: float = 0.1,
        q_format: FxpFormat | None = None,
        lfsr_width: int = 24,
        seed: int = 1,
        telemetry=None,
    ):
        cfg = QTAccelConfig.sarsa(
            alpha=alpha, gamma=0.0, epsilon=epsilon, seed=seed, lfsr_width=lfsr_width
        )
        if q_format is not None:
            cfg = cfg.with_(q_format=q_format)
        self.env = env
        self.config = cfg
        self.q = np.zeros(env.num_arms, dtype=np.int64)
        self._policy = UniformSource(Lfsr(lfsr_width, seed=seed + 0x51))
        (self._alpha, _, self._one_minus_alpha, _) = cfg.coefficients()
        self._tel = _bandit_group(telemetry, "bandit.egreedy")

    def _select(self) -> int:
        """Single-draw e-greedy over the arm values (§V-B circuit)."""
        u = self._policy.bits()
        cut = int((1.0 - self.config.epsilon) * (1 << self._policy.width))
        if u < cut:
            return int(np.argmax(self.q))
        m = self.env.num_arms
        return (u & (m - 1)) if m & (m - 1) == 0 else u % m

    def run(self, pulls: int) -> BanditRunStats:
        """Run ``pulls`` arm selections + EMA updates."""
        qf = self.config.q_format
        cf = self.config.coef_format
        chosen = np.empty(pulls, dtype=np.int64)
        rewards = np.empty(pulls, dtype=np.float64)
        for t in range(pulls):
            arm = self._select()
            r = self.env.pull(arm)
            r_raw = qf.quantize(r)
            # gamma = 0: the bootstrap product is wired to zero.
            self.q[arm] = ops.q_update(
                int(self.q[arm]),
                r_raw,
                0,
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=0,
                coef_fmt=cf,
                q_fmt=qf,
            )
            chosen[t] = arm
            rewards[t] = r
        stats = BanditRunStats(pulls=pulls, chosen=chosen, rewards=rewards)
        if self._tel is not None:
            self._tel.inc("pulls", pulls)
            self._tel.set("mean_reward", stats.mean_reward)
        return stats

    def q_float(self) -> np.ndarray:
        return ops.to_float_array(self.q, self.config.q_format)


class Exp3Accelerator:
    """EXP3 adversarial bandit with a quantised probability table.

    Weights follow the classic EXP3 recipe; the probability table P is
    re-quantised into ``prob_format`` after every update (it is a BRAM
    row in hardware), and arm selection draws one LFSR word and binary
    searches the quantised cumulative distribution — exactly the circuit
    §VII-B sketches, so selection inherits the quantisation error a real
    implementation would have.
    """

    def __init__(
        self,
        env: BanditEnv,
        *,
        gamma_exp: float = 0.1,
        reward_range: tuple[float, float] = (0.0, 1.0),
        prob_format: FxpFormat | None = None,
        lfsr_width: int = 24,
        seed: int = 1,
        telemetry=None,
    ):
        if not 0.0 < gamma_exp <= 1.0:
            raise ValueError("gamma_exp must be in (0, 1]")
        lo, hi = reward_range
        if hi <= lo:
            raise ValueError("reward_range must be increasing")
        self.env = env
        self.gamma_exp = gamma_exp
        self.reward_range = reward_range
        self.prob_format = prob_format or FxpFormat(wordlen=16, frac=15, signed=False)
        self.weights = np.ones(env.num_arms, dtype=np.float64)
        self._select_rng = UniformSource(Lfsr(lfsr_width, seed=seed + 0x71))
        self.selection_cycles = bandit_cycles_per_sample(
            env.num_arms, probability_policy=True
        )
        self._tel = _bandit_group(telemetry, "bandit.exp3")

    def probabilities(self) -> np.ndarray:
        """Float probabilities per eq. (5) of the paper."""
        w = self.weights / self.weights.sum()
        m = self.env.num_arms
        return (1.0 - self.gamma_exp) * w + self.gamma_exp / m

    def prob_table_raw(self) -> np.ndarray:
        """The quantised on-chip probability table."""
        return ops.quantize_array(self.probabilities(), self.prob_format)

    def _select(self) -> int:
        """Binary search of the quantised cumulative distribution."""
        table = self.prob_table_raw()
        cum = np.cumsum(table)
        total = int(cum[-1])
        u = self._select_rng.bits() % max(1, total)
        return int(np.searchsorted(cum, u, side="right"))

    def run(self, pulls: int) -> BanditRunStats:
        """Run ``pulls`` EXP3 rounds."""
        lo, hi = self.reward_range
        m = self.env.num_arms
        chosen = np.empty(pulls, dtype=np.int64)
        rewards = np.empty(pulls, dtype=np.float64)
        for t in range(pulls):
            arm = self._select()
            r = self.env.pull(arm)
            x = min(1.0, max(0.0, (r - lo) / (hi - lo)))  # normalise to [0,1]
            p = self.probabilities()[arm]
            xhat = x / p  # importance-weighted estimate
            self.weights[arm] *= math.exp(self.gamma_exp * xhat / m)
            # Keep weights in a safe dynamic range (hardware renormalises
            # the probability table anyway).
            if self.weights.max() > 1e12:
                self.weights /= self.weights.max()
            chosen[t] = arm
            rewards[t] = r
        stats = BanditRunStats(pulls=pulls, chosen=chosen, rewards=rewards)
        if self._tel is not None:
            self._tel.inc("pulls", pulls)
            # The binary-search initiation interval is the cycle cost the
            # profile's effective-IPC view needs (§VII-B).
            self._tel.inc("selection_cycles", int(pulls * self.selection_cycles))
            self._tel.set("mean_reward", stats.mean_reward)
        return stats


class Ucb1Accelerator:
    """UCB1 on the QTAccel datapath (the paper's future-work "more
    variants of Multi-Armed Bandit problems").

    The index ``mean_m + c * sqrt(ln t / n_m)`` needs a square root and a
    logarithm; in hardware both are small lookup tables indexed by the
    (bounded) pull counts, so we model them as exact functions of the
    integer counters.  Arm statistics use a wide per-arm reward
    accumulator (one adder per sample) with the mean formed on the
    selection path by the same reciprocal LUT — avoiding the freeze-out
    bias a truncating running-mean register would have.
    """

    def __init__(
        self,
        env: BanditEnv,
        *,
        c: float = 2.0,
        q_format: FxpFormat | None = None,
        seed: int = 1,
        telemetry=None,
    ):
        if c <= 0:
            raise ValueError("c must be positive")
        self.env = env
        self.c = c
        self.q_format = q_format or QTAccelConfig().q_format
        self._tel = _bandit_group(telemetry, "bandit.ucb1")
        #: Wide reward accumulators, raw units of ``q_format``.
        self.sums = np.zeros(env.num_arms, dtype=np.int64)
        self.counts = np.zeros(env.num_arms, dtype=np.int64)
        self.t = 0

    def means_raw(self) -> np.ndarray:
        """Per-arm mean in raw fixed-point units (truncating divider)."""
        counts = np.maximum(self.counts, 1)
        return self.sums // counts

    def _select(self) -> int:
        # Each arm is pulled once before any index comparison.
        unpulled = np.nonzero(self.counts == 0)[0]
        if unpulled.size:
            return int(unpulled[0])
        means = ops.to_float_array(self.means_raw(), self.q_format)
        bonus = self.c * np.sqrt(np.log(self.t) / self.counts)
        return int(np.argmax(means + bonus))

    def run(self, pulls: int) -> BanditRunStats:
        """Run ``pulls`` UCB1 rounds."""
        qf = self.q_format
        chosen = np.empty(pulls, dtype=np.int64)
        rewards = np.empty(pulls, dtype=np.float64)
        for i in range(pulls):
            arm = self._select()
            r = self.env.pull(arm)
            self.t += 1
            self.counts[arm] += 1
            self.sums[arm] += qf.quantize(r)
            chosen[i] = arm
            rewards[i] = r
        stats = BanditRunStats(pulls=pulls, chosen=chosen, rewards=rewards)
        if self._tel is not None:
            self._tel.inc("pulls", pulls)
            self._tel.set("mean_reward", stats.mean_reward)
        return stats

    def q_float(self) -> np.ndarray:
        """Per-arm mean estimates as floats."""
        return ops.to_float_array(self.means_raw(), self.q_format)


class StatefulBanditAccelerator:
    """Stateful bandit: Q-table over the concatenated per-arm states."""

    def __init__(
        self,
        env: StatefulBanditEnv,
        *,
        alpha: float = 0.25,
        gamma: float = 0.5,
        epsilon: float = 0.1,
        q_format: FxpFormat | None = None,
        lfsr_width: int = 24,
        seed: int = 1,
        telemetry=None,
    ):
        cfg = QTAccelConfig.sarsa(
            alpha=alpha, gamma=gamma, epsilon=epsilon, seed=seed, lfsr_width=lfsr_width
        )
        if q_format is not None:
            cfg = cfg.with_(q_format=q_format)
        self.env = env
        self.config = cfg
        self.q = np.zeros((env.num_joint_states, env.num_arms), dtype=np.int64)
        self._policy = UniformSource(Lfsr(lfsr_width, seed=seed + 0x91))
        (self._alpha, _, self._one_minus_alpha, self._alpha_gamma) = cfg.coefficients()
        self._tel = _bandit_group(telemetry, "bandit.stateful")

    def _select(self, state: int) -> int:
        u = self._policy.bits()
        cut = int((1.0 - self.config.epsilon) * (1 << self._policy.width))
        if u < cut:
            return int(np.argmax(self.q[state]))
        m = self.env.num_arms
        return (u & (m - 1)) if m & (m - 1) == 0 else u % m

    def run(self, pulls: int) -> BanditRunStats:
        """Run ``pulls`` rounds over the evolving joint arm state."""
        qf = self.config.q_format
        cf = self.config.coef_format
        chosen = np.empty(pulls, dtype=np.int64)
        rewards = np.empty(pulls, dtype=np.float64)
        state = self.env.joint_state
        for t in range(pulls):
            arm = self._select(state)
            r = self.env.pull(arm)
            nxt = self.env.joint_state
            r_raw = qf.quantize(r)
            q_next = int(self.q[nxt].max())
            self.q[state, arm] = ops.q_update(
                int(self.q[state, arm]),
                r_raw,
                q_next,
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=self._alpha_gamma,
                coef_fmt=cf,
                q_fmt=qf,
            )
            chosen[t] = arm
            rewards[t] = r
            state = nxt
        stats = BanditRunStats(pulls=pulls, chosen=chosen, rewards=rewards)
        if self._tel is not None:
            self._tel.inc("pulls", pulls)
            self._tel.set("mean_reward", stats.mean_reward)
        return stats

    def q_float(self) -> np.ndarray:
        return ops.to_float_array(self.q, self.config.q_format)
