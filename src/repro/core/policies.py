"""Action-selection policies (paper §III-B, §V).

The policies are written against *read callables* rather than tables so
the cycle-accurate pipeline can route reads through its forwarding
network while the functional simulator reads committed state directly —
with the exact same draw sequence from the shared LFSRs, which is what
keeps the two simulators bit-identical.

The e-greedy selector is the paper's single-draw circuit (§V-B): one
N-bit LFSR word is compared against ``(1 - eps) * 2**N``; on exploit the
Qmax value/action pair is read, otherwise the word's low bits directly
index the explored action and the Q-table supplies its value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..rtl.lfsr import Lfsr
from ..rtl.rng import UniformSource
from .config import QTAccelConfig

#: ``read_qmax(state) -> (q_raw, argmax_action)``
QmaxReader = Callable[[int], tuple[int, int]]
#: ``read_q(state, action) -> q_raw``
QReader = Callable[[int, int], int]


@dataclass
class PolicyDraws:
    """The accelerator's three LFSR streams.

    Separate registers for start-state, behaviour-action and update-policy
    draws (the hardware instantiates independent LFSRs), so the relative
    evaluation order of pipeline stages cannot perturb any one stream.
    """

    start: UniformSource
    action: UniformSource
    policy: UniformSource

    @classmethod
    def from_config(cls, config: QTAccelConfig, *, salt: int = 0) -> "PolicyDraws":
        w = config.lfsr_width
        base = config.seed + salt * 0x9E37
        return cls(
            start=UniformSource(Lfsr(w, seed=base + 0x11)),
            action=UniformSource(Lfsr(w, seed=base + 0x22)),
            policy=UniformSource(Lfsr(w, seed=base + 0x33)),
        )

    def state_dict(self) -> dict:
        """Checkpoint of the three register states."""
        return {
            "start": self.start.lfsr.state,
            "action": self.action.lfsr.state,
            "policy": self.policy.lfsr.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        self.start.lfsr.state = state["start"]
        self.action.lfsr.state = state["action"]
        self.policy.lfsr.state = state["policy"]


@dataclass(frozen=True)
class UpdateSelection:
    """Result of the stage-2 update-policy selection."""

    action: int
    q_raw: int
    exploited: bool


def egreedy_cut(epsilon: float, width: int) -> int:
    """The exploit threshold ``(1 - eps) * 2**width`` (§V-B)."""
    return int((1.0 - epsilon) * (1 << width))


def draw_start_state(draws: PolicyDraws, start_states) -> int:
    """Random episode start (stage 1, first iteration of an episode)."""
    return int(start_states[draws.start.below(len(start_states))])


def egreedy_select(
    state: int,
    *,
    epsilon: float,
    draws: PolicyDraws,
    read_qmax: QmaxReader,
    read_q: QReader,
    num_actions: int,
) -> UpdateSelection:
    """One-draw e-greedy selection: threshold compare + direct index."""
    u = draws.policy.bits()
    if u < egreedy_cut(epsilon, draws.policy.width):
        q_raw, action = read_qmax(state)
        return UpdateSelection(action=action, q_raw=q_raw, exploited=True)
    if num_actions & (num_actions - 1) == 0:
        action = u & (num_actions - 1)
    else:
        action = u % num_actions
    return UpdateSelection(action=action, q_raw=read_q(state, action), exploited=False)


def select_update(
    next_state: int,
    *,
    config: QTAccelConfig,
    draws: PolicyDraws,
    read_qmax: QmaxReader,
    read_q: QReader,
    num_actions: int,
) -> UpdateSelection:
    """Stage-2 selection of ``(A_{t+1}, Q(S_{t+1}, A_{t+1}))``.

    Greedy (Q-Learning): a single Qmax read — the §V-A optimisation that
    replaces an ``|A|``-entry scan.  E-greedy (SARSA): the single-draw
    circuit above.
    """
    if config.update_policy == "greedy":
        q_raw, action = read_qmax(next_state)
        return UpdateSelection(action=action, q_raw=q_raw, exploited=True)
    return egreedy_select(
        next_state,
        epsilon=config.epsilon,
        draws=draws,
        read_qmax=read_qmax,
        read_q=read_q,
        num_actions=num_actions,
    )


def select_behavior(
    state: int,
    *,
    config: QTAccelConfig,
    draws: PolicyDraws,
    forwarded_action: Optional[int],
    read_qmax: QmaxReader,
    read_q: QReader,
    num_actions: int,
) -> int:
    """Stage-1 selection of the behaviour action ``A_t``.

    For on-policy configurations the previous sample's stage-2 action is
    forwarded in (§V-B) and no draw happens; a fresh e-greedy draw is only
    made at episode boundaries.  Off-policy Q-Learning draws a uniform
    random action every sample.
    """
    if config.behavior_policy == "random":
        return draws.action.below(num_actions)
    # e-greedy behaviour (SARSA)
    if forwarded_action is not None:
        return forwarded_action
    return egreedy_select(
        state,
        epsilon=config.epsilon,
        draws=draws,
        read_qmax=read_qmax,
        read_q=read_q,
        num_actions=num_actions,
    ).action
