"""Configuration of a QTAccel instance.

A :class:`QTAccelConfig` fixes everything the hardware generics would:
the algorithm (behaviour/update policy pair), learning coefficients and
their fixed-point format, Q-word format, hazard-handling strategy, Qmax
semantics, and LFSR seeds/widths.  Both simulators and the device models
consume the same object, so an experiment is fully described by
``(DenseMdp, QTAccelConfig, FpgaPart)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..fixedpoint.format import COEF_FORMAT, Q_FORMAT, FxpFormat
from ..fixedpoint import ops

#: Hazard-handling strategies (DESIGN.md "Forwarding vs stalling vs stale").
HAZARD_MODES = ("forward", "stall", "stale")

#: Qmax maintenance strategies:
#:
#: * ``"monotonic"`` — the paper's write-path update: Qmax is raised when
#:   a written Q-value exceeds it and never lowered.  When an update
#:   *reduces* the per-state maximum (negative rewards), both the cached
#:   value and the cached argmax action go stale — the ablation benches
#:   show this can pin SARSA's exploit action and prevent learning.
#: * ``"follow"`` — our equally-cheap hardware fix (one extra comparator
#:   at stage 4): when the written action *is* the cached argmax, Qmax
#:   follows its value down; otherwise the monotonic raise rule applies.
#: * ``"exact"`` — recomputes the true row maximum on every write.  Not
#:   implementable in one hardware cycle; functional-simulator ablation
#:   only.
QMAX_MODES = ("monotonic", "follow", "exact")

BEHAVIOR_POLICIES = ("random", "egreedy")
UPDATE_POLICIES = ("greedy", "egreedy")


@dataclass(frozen=True)
class QTAccelConfig:
    """Static configuration of one accelerator pipeline.

    The two paper algorithms are presets:

    * :meth:`qlearning` — random behaviour policy, greedy update policy
      (off-policy; §V-A).
    * :meth:`sarsa` — e-greedy on-policy; the stage-2 sampled action is
      forwarded to stage 1 as the next behaviour action (§V-B).
    """

    behavior_policy: str = "random"
    update_policy: str = "greedy"
    alpha: float = 0.5
    gamma: float = 0.9
    epsilon: float = 0.1
    q_format: FxpFormat = Q_FORMAT
    coef_format: FxpFormat = COEF_FORMAT
    hazard_mode: str = "forward"
    qmax_mode: str = "monotonic"
    q_init: float = 0.0
    lfsr_width: int = 24
    seed: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.behavior_policy not in BEHAVIOR_POLICIES:
            raise ValueError(f"unknown behavior policy {self.behavior_policy!r}")
        if self.update_policy not in UPDATE_POLICIES:
            raise ValueError(f"unknown update policy {self.update_policy!r}")
        if self.hazard_mode not in HAZARD_MODES:
            raise ValueError(f"unknown hazard mode {self.hazard_mode!r}")
        if self.qmax_mode not in QMAX_MODES:
            raise ValueError(f"unknown qmax mode {self.qmax_mode!r}")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if self.lfsr_width < 8:
            raise ValueError("lfsr_width must be >= 8")

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #

    @classmethod
    def qlearning(cls, **kw) -> "QTAccelConfig":
        """The paper's Q-Learning customisation (§V-A)."""
        kw.setdefault("name", "qlearning")
        return cls(behavior_policy="random", update_policy="greedy", **kw)

    @classmethod
    def sarsa(cls, **kw) -> "QTAccelConfig":
        """The paper's SARSA customisation (§V-B)."""
        kw.setdefault("name", "sarsa")
        return cls(behavior_policy="egreedy", update_policy="egreedy", **kw)

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #

    @property
    def algorithm(self) -> str:
        """Canonical algorithm label for reports."""
        if self.update_policy == "greedy":
            return "qlearning"
        if self.update_policy == "egreedy":
            return "sarsa"
        return f"{self.behavior_policy}/{self.update_policy}"

    @property
    def is_on_policy(self) -> bool:
        """On-policy pipelines forward the stage-2 action to stage 1."""
        return self.behavior_policy == "egreedy" and self.update_policy == "egreedy"

    def coefficients(self) -> tuple[int, int, int, int]:
        """Raw ``(alpha, gamma, 1 - alpha, alpha * gamma)`` as stage 1
        computes them (see :func:`repro.fixedpoint.ops.coefficient_set`)."""
        return ops.coefficient_set(self.alpha, self.gamma, self.coef_format)

    def with_(self, **changes) -> "QTAccelConfig":
        """Copy with some fields replaced."""
        return replace(self, **changes)
