"""Configuration of a QTAccel instance.

A :class:`QTAccelConfig` fixes everything the hardware generics would:
the algorithm (behaviour/update policy pair), learning coefficients and
their fixed-point format, Q-word format, hazard-handling strategy, Qmax
semantics, and LFSR seeds/widths.  Both simulators and the device models
consume the same object, so an experiment is fully described by
``(DenseMdp, QTAccelConfig, FpgaPart)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace

from ..fixedpoint.format import COEF_FORMAT, Q_FORMAT, FxpFormat
from ..fixedpoint import ops

#: Hazard-handling strategies (DESIGN.md "Forwarding vs stalling vs stale").
HAZARD_MODES = ("forward", "stall", "stale")

#: Qmax maintenance strategies:
#:
#: * ``"monotonic"`` — the paper's write-path update: Qmax is raised when
#:   a written Q-value exceeds it and never lowered.  When an update
#:   *reduces* the per-state maximum (negative rewards), both the cached
#:   value and the cached argmax action go stale — the ablation benches
#:   show this can pin SARSA's exploit action and prevent learning.
#: * ``"follow"`` — our equally-cheap hardware fix (one extra comparator
#:   at stage 4): when the written action *is* the cached argmax, Qmax
#:   follows its value down; otherwise the monotonic raise rule applies.
#: * ``"exact"`` — recomputes the true row maximum on every write.  Not
#:   implementable in one hardware cycle; functional-simulator ablation
#:   only.
QMAX_MODES = ("monotonic", "follow", "exact")

BEHAVIOR_POLICIES = ("random", "egreedy")
UPDATE_POLICIES = ("greedy", "egreedy")


@dataclass(frozen=True)
class QTAccelConfig:
    """Static configuration of one accelerator pipeline.

    The two paper algorithms are presets:

    * :meth:`qlearning` — random behaviour policy, greedy update policy
      (off-policy; §V-A).
    * :meth:`sarsa` — e-greedy on-policy; the stage-2 sampled action is
      forwarded to stage 1 as the next behaviour action (§V-B).
    """

    behavior_policy: str = "random"
    update_policy: str = "greedy"
    alpha: float = 0.5
    gamma: float = 0.9
    epsilon: float = 0.1
    q_format: FxpFormat = Q_FORMAT
    coef_format: FxpFormat = COEF_FORMAT
    hazard_mode: str = "forward"
    qmax_mode: str = "monotonic"
    q_init: float = 0.0
    lfsr_width: int = 24
    seed: int = 1
    name: str = ""
    #: Protect the on-chip tables with SECDED ECC (see docs/robustness.md).
    #: Off by default: the unprotected tables are the paper's design.
    ecc_tables: bool = False

    def __post_init__(self) -> None:
        if self.behavior_policy not in BEHAVIOR_POLICIES:
            raise ValueError(
                f"behavior_policy: unknown value {self.behavior_policy!r}; "
                f"choose one of {BEHAVIOR_POLICIES}"
            )
        if self.update_policy not in UPDATE_POLICIES:
            raise ValueError(
                f"update_policy: unknown value {self.update_policy!r}; "
                f"choose one of {UPDATE_POLICIES}"
            )
        if self.hazard_mode not in HAZARD_MODES:
            raise ValueError(
                f"hazard_mode: unknown value {self.hazard_mode!r}; "
                f"choose one of {HAZARD_MODES}"
            )
        if self.qmax_mode not in QMAX_MODES:
            raise ValueError(
                f"qmax_mode: unknown value {self.qmax_mode!r}; "
                f"choose one of {QMAX_MODES}"
            )
        for fname in ("alpha", "gamma", "epsilon", "q_init"):
            value = getattr(self, fname)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"{fname} must be a real number, got "
                    f"{type(value).__name__} {value!r}"
                )
            if value != value or value in (float("inf"), float("-inf")):
                raise ValueError(f"{fname} must be finite, got {value!r}")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(
                f"alpha (learning rate) must be in (0, 1], got {self.alpha}; "
                f"alpha=0 would make every update a no-op"
            )
        # gamma=0 is legal: the bandit customisation (§VII-B) is Q-Learning
        # with no bootstrap term.
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(
                f"gamma (discount) must be in [0, 1], got {self.gamma}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(
                f"epsilon (exploration rate) must be in [0, 1], got {self.epsilon}"
            )
        for fname in ("q_format", "coef_format"):
            value = getattr(self, fname)
            if not isinstance(value, FxpFormat):
                raise TypeError(
                    f"{fname} must be an FxpFormat (e.g. repro.fixedpoint.Q_FORMAT), "
                    f"got {type(value).__name__} {value!r}"
                )
        if abs(self.q_init) > self.q_format.max_value:
            raise ValueError(
                f"q_init={self.q_init} is outside the representable range "
                f"[{self.q_format.min_value}, {self.q_format.max_value}] of "
                f"q_format {self.q_format}"
            )
        if isinstance(self.lfsr_width, bool) or not isinstance(self.lfsr_width, int):
            raise TypeError(
                f"lfsr_width must be an int, got "
                f"{type(self.lfsr_width).__name__} {self.lfsr_width!r}"
            )
        if self.lfsr_width < 8:
            raise ValueError(
                f"lfsr_width must be >= 8 (narrower registers visibly bias "
                f"the draw streams), got {self.lfsr_width}"
            )
        from ..rtl.lfsr import MAXIMAL_TAPS

        if self.lfsr_width not in MAXIMAL_TAPS:
            supported = sorted(w for w in MAXIMAL_TAPS if w >= 8)
            raise ValueError(
                f"no maximal-length tap table for lfsr_width={self.lfsr_width}; "
                f"supported widths: {supported}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise TypeError(
                f"seed must be an int, got {type(self.seed).__name__} {self.seed!r}"
            )
        if not isinstance(self.ecc_tables, bool):
            raise TypeError(
                f"ecc_tables must be a bool, got "
                f"{type(self.ecc_tables).__name__} {self.ecc_tables!r}"
            )
        if not isinstance(self.name, str):
            raise TypeError(
                f"name must be a str, got {type(self.name).__name__} {self.name!r}"
            )

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #

    @classmethod
    def qlearning(cls, **kw) -> "QTAccelConfig":
        """The paper's Q-Learning customisation (§V-A)."""
        kw.setdefault("name", "qlearning")
        return cls(behavior_policy="random", update_policy="greedy", **kw)

    @classmethod
    def sarsa(cls, **kw) -> "QTAccelConfig":
        """The paper's SARSA customisation (§V-B)."""
        kw.setdefault("name", "sarsa")
        return cls(behavior_policy="egreedy", update_policy="egreedy", **kw)

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #

    @property
    def algorithm(self) -> str:
        """Canonical algorithm label for reports."""
        if self.update_policy == "greedy":
            return "qlearning"
        if self.update_policy == "egreedy":
            return "sarsa"
        return f"{self.behavior_policy}/{self.update_policy}"

    @property
    def is_on_policy(self) -> bool:
        """On-policy pipelines forward the stage-2 action to stage 1."""
        return self.behavior_policy == "egreedy" and self.update_policy == "egreedy"

    def coefficients(self) -> tuple[int, int, int, int]:
        """Raw ``(alpha, gamma, 1 - alpha, alpha * gamma)`` as stage 1
        computes them (see :func:`repro.fixedpoint.ops.coefficient_set`)."""
        return ops.coefficient_set(self.alpha, self.gamma, self.coef_format)

    def with_(self, **changes) -> "QTAccelConfig":
        """Copy with some fields replaced."""
        return replace(self, **changes)


# ---------------------------------------------------------------------- #
# Keyword-only construction (one-release positional shim)
# ---------------------------------------------------------------------- #

#: Declared field order, used only to interpret legacy positional calls.
_FIELD_ORDER = tuple(f.name for f in fields(QTAccelConfig))

_dataclass_init = QTAccelConfig.__init__


def _kwonly_init(self, *args, **kw) -> None:
    """Keyword-only ``QTAccelConfig.__init__``.

    Positional arguments were never self-describing for a 14-field
    config; they still work for one release, mapped onto the declared
    field order with a :class:`DeprecationWarning` (allow-listed in the
    tier-1 ``error::DeprecationWarning`` gate — see pyproject.toml).
    """
    if args:
        if len(args) > len(_FIELD_ORDER):
            raise TypeError(
                f"QTAccelConfig takes at most {len(_FIELD_ORDER)} arguments "
                f"({len(args)} given)"
            )
        names = _FIELD_ORDER[: len(args)]
        warnings.warn(
            "positional QTAccelConfig arguments are deprecated; pass "
            f"{', '.join(names)} by keyword",
            DeprecationWarning,
            stacklevel=2,
        )
        for name, value in zip(names, args):
            if name in kw:
                raise TypeError(
                    f"QTAccelConfig got multiple values for argument {name!r}"
                )
            kw[name] = value
    _dataclass_init(self, **kw)


QTAccelConfig.__init__ = _kwonly_init  # type: ignore[method-assign]
