"""Configuration of a QTAccel instance.

A :class:`QTAccelConfig` fixes everything the hardware generics would:
the algorithm (behaviour/update policy pair), learning coefficients and
their fixed-point format, Q-word format, hazard-handling strategy, Qmax
semantics, and LFSR seeds/widths.  Both simulators and the device models
consume the same object, so an experiment is fully described by
``(DenseMdp, QTAccelConfig, FpgaPart)``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace

from ..fixedpoint.format import COEF_FORMAT, Q_FORMAT, FxpFormat
from ..fixedpoint import ops

#: Hazard-handling strategies (DESIGN.md "Forwarding vs stalling vs stale").
HAZARD_MODES = ("forward", "stall", "stale")

#: Qmax maintenance strategies:
#:
#: * ``"monotonic"`` — the paper's write-path update: Qmax is raised when
#:   a written Q-value exceeds it and never lowered.  When an update
#:   *reduces* the per-state maximum (negative rewards), both the cached
#:   value and the cached argmax action go stale — the ablation benches
#:   show this can pin SARSA's exploit action and prevent learning.
#: * ``"follow"`` — our equally-cheap hardware fix (one extra comparator
#:   at stage 4): when the written action *is* the cached argmax, Qmax
#:   follows its value down; otherwise the monotonic raise rule applies.
#: * ``"exact"`` — recomputes the true row maximum on every write.  Not
#:   implementable in one hardware cycle; functional-simulator ablation
#:   only.
QMAX_MODES = ("monotonic", "follow", "exact")

BEHAVIOR_POLICIES = ("random", "egreedy")
UPDATE_POLICIES = ("greedy", "egreedy")


@dataclass(frozen=True)
class QTAccelConfig:
    """Static configuration of one accelerator pipeline.

    The algorithm is named by ``update_rule`` — a key into the
    :mod:`repro.algorithms` registry — with one preset per registered
    rule:

    * :meth:`qlearning` — random behaviour policy, greedy update policy
      (off-policy; §V-A).
    * :meth:`sarsa` — e-greedy on-policy; the stage-2 sampled action is
      forwarded to stage 1 as the next behaviour action (§V-B).
    * :meth:`momentum` — momentum-accelerated Q-learning
      (arXiv:1910.11673; one extra table, stage-3 momentum term).
    * :meth:`target_q` — Polyak target-table Q-learning
      (arXiv:1905.02841; one extra table, stage-4 soft sync).

    ``behavior_policy``/``update_policy`` remain as derived plumbing for
    the engines; for the plain rules they stay authoritative (so
    ``with_(update_policy=...)`` keeps working), while the accelerated
    rules pin ``update_policy="greedy"`` and reject anything else with
    a typed error.  Constructing with explicit policy strings but no
    ``update_rule`` is deprecated (one-release shim).
    """

    behavior_policy: str = "random"
    update_policy: str = "greedy"
    alpha: float = 0.5
    gamma: float = 0.9
    epsilon: float = 0.1
    q_format: FxpFormat = Q_FORMAT
    coef_format: FxpFormat = COEF_FORMAT
    hazard_mode: str = "forward"
    qmax_mode: str = "monotonic"
    q_init: float = 0.0
    lfsr_width: int = 24
    seed: int = 1
    name: str = ""
    #: Protect the on-chip tables with SECDED ECC (see docs/robustness.md).
    #: Off by default: the unprotected tables are the paper's design.
    ecc_tables: bool = False
    #: Canonical update-rule name (see :mod:`repro.algorithms`).  Empty
    #: means "derive from update_policy" (the legacy plain rules);
    #: ``__post_init__`` always canonicalises it to a registered name.
    update_rule: str = ""
    #: Momentum weight ``b`` for ``update_rule="momentum_qlearning"``.
    momentum_beta: float = 0.3
    #: Polyak step ``tau`` for ``update_rule="target_qlearning"``.
    target_tau: float = 0.05
    #: Optional hard-sync period for the target rule: copy the whole
    #: target table from the online table every N updates (0 = pure
    #: Polyak trailing; the only mode the cycle-accurate pipeline can
    #: host).
    target_sync_period: int = 0

    def __post_init__(self) -> None:
        if self.behavior_policy not in BEHAVIOR_POLICIES:
            raise ValueError(
                f"behavior_policy: unknown value {self.behavior_policy!r}; "
                f"choose one of {BEHAVIOR_POLICIES}"
            )
        if self.update_policy not in UPDATE_POLICIES:
            raise ValueError(
                f"update_policy: unknown value {self.update_policy!r}; "
                f"choose one of {UPDATE_POLICIES}"
            )
        if self.hazard_mode not in HAZARD_MODES:
            raise ValueError(
                f"hazard_mode: unknown value {self.hazard_mode!r}; "
                f"choose one of {HAZARD_MODES}"
            )
        if self.qmax_mode not in QMAX_MODES:
            raise ValueError(
                f"qmax_mode: unknown value {self.qmax_mode!r}; "
                f"choose one of {QMAX_MODES}"
            )
        for fname in ("alpha", "gamma", "epsilon", "q_init"):
            value = getattr(self, fname)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"{fname} must be a real number, got "
                    f"{type(value).__name__} {value!r}"
                )
            if value != value or value in (float("inf"), float("-inf")):
                raise ValueError(f"{fname} must be finite, got {value!r}")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(
                f"alpha (learning rate) must be in (0, 1], got {self.alpha}; "
                f"alpha=0 would make every update a no-op"
            )
        # gamma=0 is legal: the bandit customisation (§VII-B) is Q-Learning
        # with no bootstrap term.
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(
                f"gamma (discount) must be in [0, 1], got {self.gamma}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(
                f"epsilon (exploration rate) must be in [0, 1], got {self.epsilon}"
            )
        for fname in ("q_format", "coef_format"):
            value = getattr(self, fname)
            if not isinstance(value, FxpFormat):
                raise TypeError(
                    f"{fname} must be an FxpFormat (e.g. repro.fixedpoint.Q_FORMAT), "
                    f"got {type(value).__name__} {value!r}"
                )
        if abs(self.q_init) > self.q_format.max_value:
            raise ValueError(
                f"q_init={self.q_init} is outside the representable range "
                f"[{self.q_format.min_value}, {self.q_format.max_value}] of "
                f"q_format {self.q_format}"
            )
        if isinstance(self.lfsr_width, bool) or not isinstance(self.lfsr_width, int):
            raise TypeError(
                f"lfsr_width must be an int, got "
                f"{type(self.lfsr_width).__name__} {self.lfsr_width!r}"
            )
        if self.lfsr_width < 8:
            raise ValueError(
                f"lfsr_width must be >= 8 (narrower registers visibly bias "
                f"the draw streams), got {self.lfsr_width}"
            )
        from ..rtl.lfsr import MAXIMAL_TAPS

        if self.lfsr_width not in MAXIMAL_TAPS:
            supported = sorted(w for w in MAXIMAL_TAPS if w >= 8)
            raise ValueError(
                f"no maximal-length tap table for lfsr_width={self.lfsr_width}; "
                f"supported widths: {supported}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise TypeError(
                f"seed must be an int, got {type(self.seed).__name__} {self.seed!r}"
            )
        if not isinstance(self.ecc_tables, bool):
            raise TypeError(
                f"ecc_tables must be a bool, got "
                f"{type(self.ecc_tables).__name__} {self.ecc_tables!r}"
            )
        if not isinstance(self.name, str):
            raise TypeError(
                f"name must be a str, got {type(self.name).__name__} {self.name!r}"
            )
        if not isinstance(self.update_rule, str):
            raise TypeError(
                f"update_rule must be a str, got "
                f"{type(self.update_rule).__name__} {self.update_rule!r}"
            )
        for fname in ("momentum_beta", "target_tau"):
            value = getattr(self, fname)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"{fname} must be a real number, got "
                    f"{type(value).__name__} {value!r}"
                )
            if value != value or value in (float("inf"), float("-inf")):
                raise ValueError(f"{fname} must be finite, got {value!r}")
        if not 0.0 <= self.momentum_beta < 1.0:
            raise ValueError(
                f"momentum_beta must be in [0, 1), got {self.momentum_beta}"
            )
        if not 0.0 < self.target_tau <= 1.0:
            raise ValueError(
                f"target_tau must be in (0, 1], got {self.target_tau}"
            )
        if isinstance(self.target_sync_period, bool) or not isinstance(
            self.target_sync_period, int
        ):
            raise TypeError(
                f"target_sync_period must be an int, got "
                f"{type(self.target_sync_period).__name__} "
                f"{self.target_sync_period!r}"
            )
        if self.target_sync_period < 0:
            raise ValueError(
                f"target_sync_period must be non-negative, got "
                f"{self.target_sync_period}"
            )

        # Resolve the update rule (lazy import: repro.algorithms must not
        # be imported at module level from here or the cycle closes).
        from ..algorithms.rules import canonical_rule_name, get_rule

        rule_name = self.update_rule
        if rule_name:
            rule_name = canonical_rule_name(rule_name)
        else:
            rule_name = "qlearning" if self.update_policy == "greedy" else "sarsa"
        rule = get_rule(rule_name)
        if rule.kind == "plain":
            # For the plain pair the policy strings stay authoritative:
            # dataclasses.replace() (== with_()) passes every current
            # field, so ``with_(update_policy="egreedy")`` must flip the
            # rule rather than trip a stale-name error.
            rule_name = "qlearning" if self.update_policy == "greedy" else "sarsa"
            rule = get_rule(rule_name)
        object.__setattr__(self, "update_rule", rule_name)
        rule.validate(self)

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #

    @classmethod
    def qlearning(cls, **kw) -> "QTAccelConfig":
        """The paper's Q-Learning customisation (§V-A)."""
        kw.setdefault("name", "qlearning")
        kw.setdefault("update_rule", "qlearning")
        return cls(**kw)

    @classmethod
    def sarsa(cls, **kw) -> "QTAccelConfig":
        """The paper's SARSA customisation (§V-B)."""
        kw.setdefault("name", "sarsa")
        kw.setdefault("update_rule", "sarsa")
        return cls(**kw)

    @classmethod
    def momentum(cls, **kw) -> "QTAccelConfig":
        """Momentum-accelerated Q-learning (arXiv:1910.11673)."""
        kw.setdefault("name", "momentum_qlearning")
        kw.setdefault("update_rule", "momentum_qlearning")
        return cls(**kw)

    @classmethod
    def target_q(cls, **kw) -> "QTAccelConfig":
        """Polyak target-table Q-learning (arXiv:1905.02841)."""
        kw.setdefault("name", "target_qlearning")
        kw.setdefault("update_rule", "target_qlearning")
        return cls(**kw)

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #

    @property
    def algorithm(self) -> str:
        """Canonical algorithm label for reports: the registered rule
        name (``update_rule`` is always canonical after construction)."""
        return self.update_rule

    @property
    def rule(self):
        """The registered :class:`~repro.algorithms.UpdateRule`."""
        from ..algorithms.rules import get_rule

        return get_rule(self.update_rule)

    @property
    def is_on_policy(self) -> bool:
        """On-policy pipelines forward the stage-2 action to stage 1."""
        return self.behavior_policy == "egreedy" and self.update_policy == "egreedy"

    def coefficients(self) -> tuple[int, int, int, int]:
        """Raw ``(alpha, gamma, 1 - alpha, alpha * gamma)`` as stage 1
        computes them (see :func:`repro.fixedpoint.ops.coefficient_set`)."""
        return ops.coefficient_set(self.alpha, self.gamma, self.coef_format)

    def rule_coefficients(self):
        """The configured rule's full raw coefficient set (a
        :class:`~repro.algorithms.RuleCoefficients`)."""
        return self.rule.coefficients(self)

    def with_(self, **changes) -> "QTAccelConfig":
        """Copy with some fields replaced."""
        return replace(self, **changes)


# ---------------------------------------------------------------------- #
# Keyword-only construction (one-release positional shim)
# ---------------------------------------------------------------------- #

#: Declared field order, used only to interpret legacy positional calls.
_FIELD_ORDER = tuple(f.name for f in fields(QTAccelConfig))

_dataclass_init = QTAccelConfig.__init__


def _kwonly_init(self, *args, **kw) -> None:
    """Keyword-only ``QTAccelConfig.__init__``.

    Positional arguments were never self-describing for a 14-field
    config; they still work for one release, mapped onto the declared
    field order with a :class:`DeprecationWarning` (allow-listed in the
    tier-1 ``error::DeprecationWarning`` gate — see pyproject.toml).

    Constructing the algorithm from bare ``behavior_policy``/
    ``update_policy`` strings without naming an ``update_rule`` is
    likewise deprecated for one release: the rule registry is the API
    now (``QTAccelConfig(update_rule=...)`` or the presets).  The shim
    only fires on *explicit* policy kwargs with no rule — ``with_()``
    (``dataclasses.replace``) always passes the current ``update_rule``,
    so copies never warn.
    """
    stringly = (
        ("behavior_policy" in kw or "update_policy" in kw)
        and not kw.get("update_rule")
        and not args
    )
    if args:
        if len(args) > len(_FIELD_ORDER):
            raise TypeError(
                f"QTAccelConfig takes at most {len(_FIELD_ORDER)} arguments "
                f"({len(args)} given)"
            )
        names = _FIELD_ORDER[: len(args)]
        warnings.warn(
            "positional QTAccelConfig arguments are deprecated; pass "
            f"{', '.join(names)} by keyword",
            DeprecationWarning,
            stacklevel=2,
        )
        for name, value in zip(names, args):
            if name in kw:
                raise TypeError(
                    f"QTAccelConfig got multiple values for argument {name!r}"
                )
            kw[name] = value
    if stringly:
        warnings.warn(
            "constructing QTAccelConfig from behavior_policy/update_policy "
            "strings is deprecated; pass update_rule=... (or use a preset "
            "such as QTAccelConfig.qlearning()/.sarsa()/.momentum()/"
            ".target_q())",
            DeprecationWarning,
            stacklevel=2,
        )
    rule_name = kw.get("update_rule")
    if rule_name:
        # Resolve early so the rule's default policies fill any the
        # caller left unspecified (and unknown names fail fast with the
        # typed error, before field validation).
        from ..algorithms.rules import get_rule

        if isinstance(rule_name, str):
            rule = get_rule(rule_name)
            kw.setdefault("behavior_policy", rule.behavior_policy)
            kw.setdefault("update_policy", rule.update_policy)
    _dataclass_init(self, **kw)


QTAccelConfig.__init__ = _kwonly_init  # type: ignore[method-assign]
