"""Unified engine construction: :func:`make_engine` and the :class:`Engine` protocol.

The repo grew six ways to run the QTAccel update loop — the
cycle-accurate pipeline, the bit-identical functional fast path, the
lane-stacked fleet simulator, the raw vectorized fleet backend, the
multi-core sharded fleet backend, and the native fused-kernel
backend.  They share the same execution
contract but historically each had its own constructor spelling.  :func:`make_engine` is the single documented
entry point (see ``docs/api.md``); everything it returns satisfies
:class:`Engine`:

* ``run(num_samples)`` — advance the engine, returning its stats;
* ``state_dict()`` / ``load_state_dict(state)`` — full architectural
  checkpoint (replaying from it reproduces the uninterrupted run);
* ``stats`` — a live counter object satisfying the shared run-stats
  contract (:mod:`repro.core.runstats`): ``.samples``, ``.cycles``,
  ``.as_dict()``.

Engine kinds
------------

======================  ====================================================
``engine=``             constructs
======================  ====================================================
``"functional"``        :class:`~repro.core.functional.FunctionalSimulator`
                        (default; sequential semantics, fastest scalar path)
``"pipeline"``          :class:`~repro.core.pipeline.QTAccelPipeline`
                        (cycle-accurate 4-stage pipeline)
``"batch"``             :class:`~repro.core.batch.BatchIndependentSimulator`
                        (fleet facade; pass ``backend="vectorized"|"scalar"``)
``"vectorized"``        :class:`~repro.backends.vectorized.VectorizedFleetBackend`
                        (the numpy array program, addressed directly)
``"sharded"``           :class:`~repro.backends.sharded.ShardedFleetBackend`
                        (lane shards across ``num_workers`` processes over
                        shared memory; remember to ``close()`` it)
``"native"``            :class:`~repro.backends.native.NativeFleetBackend`
                        (the lock-step program fused into one compiled
                        pass — numba JIT via the ``repro[native]`` extra or
                        a runtime-compiled C kernel; raises a typed
                        :class:`~repro.backends.native.NativeBackendUnavailableError`
                        when neither exists)
======================  ====================================================

Scalar engines (``functional``/``pipeline``) take one ``mdp``; fleet
engines (``batch``/``vectorized``/``sharded``) take ``mdps`` — a single
shared world plus ``num_agents``, or a sequence of same-shaped worlds.  Either
keyword is accepted for either kind (a lone world is a fleet of one
description; a one-element fleet spec is a world), so callers can write
``make_engine(cfg, mdp=world, engine="batch", num_agents=64)``.

Update rules
------------

Every engine kind honours ``config.update_rule`` (see
:mod:`repro.algorithms`): plain Q-Learning/SARSA plus the accelerated
``momentum_qlearning`` and ``target_qlearning`` rules run bit-identically
across all five kinds.  Rule errors are typed and raised as early as
possible: an unknown name or an incompatible policy combination fails at
``QTAccelConfig`` construction
(:class:`~repro.algorithms.UnknownUpdateRuleError`,
:class:`~repro.algorithms.IncompatibleRuleError`), and a combination a
specific engine cannot honour fails inside :func:`make_engine` from that
engine's constructor
(:class:`~repro.algorithms.UnsupportedRuleError` — currently only the
cycle-accurate pipeline with a hard ``target_sync_period``, because a
wholesale table copy has no single-cycle hardware analogue; use the
default Polyak-only sync, or a fleet/functional engine).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Sequence, runtime_checkable

from ..envs.base import DenseMdp
from .config import QTAccelConfig

__all__ = ["Engine", "ENGINE_KINDS", "make_engine"]

#: Recognised ``engine=`` spellings, in documentation order.
ENGINE_KINDS = ("functional", "pipeline", "batch", "vectorized", "sharded", "native")


@runtime_checkable
class Engine(Protocol):
    """Structural contract every :func:`make_engine` product satisfies.

    ``runtime_checkable`` so ``isinstance(obj, Engine)`` works, with the
    usual caveat: the check sees method *presence*, not signatures.
    """

    stats: Any

    def run(self, num_samples: int) -> Any:
        """Advance by ``num_samples`` updates; returns the stats object."""
        ...

    def state_dict(self) -> dict:
        """Full architectural checkpoint."""
        ...

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        ...


def _fleet_worlds(
    engine: str,
    mdp: Optional[DenseMdp],
    mdps: "Optional[DenseMdp | Sequence[DenseMdp]]",
) -> "DenseMdp | Sequence[DenseMdp]":
    if mdp is not None and mdps is not None:
        raise TypeError(f"make_engine(engine={engine!r}): pass mdp or mdps, not both")
    worlds = mdps if mdps is not None else mdp
    if worlds is None:
        raise TypeError(f"make_engine(engine={engine!r}) requires mdp or mdps")
    return worlds


def _scalar_world(
    engine: str,
    mdp: Optional[DenseMdp],
    mdps: "Optional[DenseMdp | Sequence[DenseMdp]]",
) -> DenseMdp:
    if mdp is not None and mdps is not None:
        raise TypeError(f"make_engine(engine={engine!r}): pass mdp or mdps, not both")
    world = mdp if mdp is not None else mdps
    if world is None:
        raise TypeError(f"make_engine(engine={engine!r}) requires an mdp")
    if not isinstance(world, DenseMdp):
        seq = list(world)
        if len(seq) != 1:
            raise TypeError(
                f"make_engine(engine={engine!r}) runs a single world; got "
                f"{len(seq)} mdps — use engine='batch' or 'vectorized' for fleets"
            )
        world = seq[0]
    return world


def make_engine(
    config: QTAccelConfig,
    *,
    engine: str = "functional",
    mdp: Optional[DenseMdp] = None,
    mdps: "Optional[DenseMdp | Sequence[DenseMdp]]" = None,
    **kw,
) -> Engine:
    """Construct a QTAccel execution engine.

    Extra keyword arguments pass through to the chosen constructor —
    e.g. ``behavior_lag=``/``draws=`` for ``"functional"``,
    ``stage2_latency=``/``telemetry=`` for ``"pipeline"``,
    ``num_agents=``/``salts=``/``backend=``/``telemetry=`` for the fleet
    kinds, plus ``num_workers=``/``epoch=``/``checkpoint_interval=`` for
    ``"sharded"``.

    >>> sim = make_engine(QTAccelConfig.qlearning(), mdp=world)
    >>> fleet = make_engine(cfg, engine="batch", mdps=world, num_agents=256)
    """
    if not isinstance(config, QTAccelConfig):
        raise TypeError(
            f"make_engine: config must be a QTAccelConfig, got "
            f"{type(config).__name__} {config!r}"
        )
    if engine == "functional":
        from .functional import FunctionalSimulator

        return FunctionalSimulator(_scalar_world(engine, mdp, mdps), config, **kw)
    if engine == "pipeline":
        from .pipeline import QTAccelPipeline

        return QTAccelPipeline(_scalar_world(engine, mdp, mdps), config, **kw)
    if engine == "batch":
        from .batch import BatchIndependentSimulator

        return BatchIndependentSimulator(_fleet_worlds(engine, mdp, mdps), config, **kw)
    if engine == "vectorized":
        from ..backends.vectorized import VectorizedFleetBackend

        return VectorizedFleetBackend(_fleet_worlds(engine, mdp, mdps), config, **kw)
    if engine == "sharded":
        from ..backends.sharded import ShardedFleetBackend

        return ShardedFleetBackend(_fleet_worlds(engine, mdp, mdps), config, **kw)
    if engine == "native":
        from ..backends.native import NativeFleetBackend

        return NativeFleetBackend(_fleet_worlds(engine, mdp, mdps), config, **kw)
    raise ValueError(
        f"engine: unknown value {engine!r}; choose one of {ENGINE_KINDS}"
    )
