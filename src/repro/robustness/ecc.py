"""SECDED error protection for the on-chip tables.

FPGA block RAM is the canonical victim of single-event upsets (SEUs):
a particle strike flips one stored bit and, in a design like QTAccel
whose entire value proposition is that the Q/Qmax tables stay consistent
under a never-stalling pipeline, a single flipped Q-word can redirect
the greedy policy for the rest of training (the ``fault_campaign``
experiment quantifies exactly that).  Xilinx BRAM36/URAM288 primitives
ship optional built-in ECC for this reason: a (72, 64) extended Hamming
code that corrects single-bit and detects double-bit errors per word.

This module models that protection at word granularity:

* :class:`SecDed` — an extended Hamming (SECDED) codec for a ``w``-bit
  data word: ``r`` Hamming check bits (``2**r >= w + r + 1``) plus one
  overall-parity bit, exactly the structure of the hardened BRAM macro;
* :class:`EccTableRam` — a :class:`~repro.rtl.memory.TableRam` whose
  words carry check bits.  Every read decodes; single-bit errors are
  corrected *in storage* (write-back correction, like the hardware
  macro's optional correction port), double-bit errors are counted as
  detected-uncorrectable and left for the recovery layer;
* :class:`Scrubber` — the background process that sweeps words so
  errors are corrected before a second strike can pair up with them,
  and that repairs Qmax-vs-Q-table *semantic* inconsistencies (a
  corrupted Qmax entry that dropped below its row maximum) through the
  ordinary write path.

The data array of an :class:`EccTableRam` holds the same raw words a
plain :class:`TableRam` would — bulk views (``.data``, ``snapshot()``,
row slices) keep working — and the check bits live in a parallel array,
which is also how the hardware lays out the 8 ECC bits of each 72-bit
BRAM word.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..rtl.memory import BRAM36, BlockKind, TableRam, flip_raw_bit, mask_raw, sign_extend

_I64 = np.int64

#: Decode outcomes (:meth:`SecDed.decode`).
DECODE_CLEAN = "clean"
DECODE_CORRECTED = "corrected"
DECODE_DETECTED = "detected"


class SecDed:
    """Extended-Hamming SECDED codec for ``width``-bit data words.

    Check bits sit at codeword positions ``1, 2, 4, ...`` (1-based),
    data bits fill the remaining positions in order, and one extra
    overall-parity bit covers the whole codeword.  The syndrome of a
    single flipped bit equals its codeword position; the overall parity
    distinguishes single (odd) from double (even) errors.
    """

    def __init__(self, width: int):
        if not 1 <= width <= 57:
            # 57 data + 6 check + 1 parity = 64 codeword bits; wider
            # words would be sliced across two codecs in hardware.
            raise ValueError(f"SECDED model supports widths 1..57, got {width}")
        r = 1
        while (1 << r) < width + r + 1:
            r += 1
        self.width = width
        self.r = r
        #: Codeword position (1-based) of each data bit.
        self.data_pos: list[int] = []
        pos = 1
        while len(self.data_pos) < width:
            if pos & (pos - 1):  # not a power of two -> data position
                self.data_pos.append(pos)
            pos += 1
        self._pos_to_data = {p: j for j, p in enumerate(self.data_pos)}
        #: For check bit ``i``: mask over *data-bit indices* it covers.
        self.masks: list[int] = []
        for i in range(r):
            m = 0
            for j, p in enumerate(self.data_pos):
                if p & (1 << i):
                    m |= 1 << j
            self.masks.append(m)
        self._check_positions = {1 << i: i for i in range(r)}
        # Byte-sliced fold tables: encoding/syndroming a word is then
        # one table hit per data byte instead of ``r`` parity folds.
        # An entry packs the XOR of the covered data bits' codeword
        # positions (bits 0..r-1 — bit ``i`` of that XOR is check bit
        # ``i``'s parity contribution, since check ``i`` covers exactly
        # the positions with bit ``i`` set) with the byte's popcount
        # parity in bit ``r``.
        self._n_bytes = (width + 7) // 8
        self._r_mask = (1 << r) - 1
        self._chk_mask = (1 << (r + 1)) - 1
        enc = np.zeros((self._n_bytes, 256), dtype=_I64)
        for bp in range(self._n_bytes):
            for v in range(256):
                acc = 0
                ones = 0
                for b in range(8):
                    j = 8 * bp + b
                    if j < width and (v >> b) & 1:
                        acc ^= self.data_pos[j]
                        ones += 1
                enc[bp, v] = acc | ((ones & 1) << r)
        self._enc_np = enc
        self._enc_tab = [[int(x) for x in row] for row in enc]
        self._par_np = np.asarray(
            [v.bit_count() & 1 for v in range(1 << (r + 1))], dtype=_I64
        )
        self._par_chk = [int(x) for x in self._par_np]

    @property
    def check_bits(self) -> int:
        """Stored check bits per word (Hamming bits + overall parity)."""
        return self.r + 1

    # ------------------------------------------------------------------ #
    # Scalar paths (read/decode)
    # ------------------------------------------------------------------ #

    def encode(self, word: int) -> int:
        """Check word (``r`` Hamming bits then the overall parity bit)
        for a masked ``width``-bit data word."""
        acc = 0
        for bp in range(self._n_bytes):
            acc ^= self._enc_tab[bp][(word >> (8 * bp)) & 0xFF]
        check = acc & self._r_mask
        parity = (acc >> self.r) ^ self._par_chk[check]
        return check | (parity << self.r)

    def decode(self, word: int, check: int) -> tuple[str, int, int]:
        """Decode one stored ``(data, check)`` pair.

        Returns ``(status, word, check)`` with the corrected values;
        ``status`` is :data:`DECODE_CLEAN`, :data:`DECODE_CORRECTED` or
        :data:`DECODE_DETECTED` (uncorrectable — values unchanged).
        """
        acc = 0
        for bp in range(self._n_bytes):
            acc ^= self._enc_tab[bp][(word >> (8 * bp)) & 0xFF]
        syndrome = (acc ^ check) & self._r_mask
        parity = (acc >> self.r) ^ self._par_chk[check & self._chk_mask]
        if syndrome == 0 and parity == 0:
            return DECODE_CLEAN, word, check
        if parity == 1:  # odd number of flipped bits: correct as single
            if syndrome == 0:
                return DECODE_CORRECTED, word, check ^ (1 << self.r)
            i = self._check_positions.get(syndrome)
            if i is not None:
                return DECODE_CORRECTED, word, check ^ (1 << i)
            j = self._pos_to_data.get(syndrome)
            if j is not None:
                return DECODE_CORRECTED, word ^ (1 << j), check
            # Syndrome points outside the codeword: >= 3 flips.
            return DECODE_DETECTED, word, check
        # Non-zero syndrome with even parity: double error.
        return DECODE_DETECTED, word, check

    def syndrome(self, word: int, check: int) -> int:
        """Scalar twin of :meth:`syndrome_many`: non-zero iff the stored
        pair disagrees (Hamming syndrome in bits ``0..r-1``, overall
        parity in bit ``r``).  The decode-on-read hot path tests this
        before paying for the full :meth:`decode` branch ladder."""
        acc = 0
        for bp in range(self._n_bytes):
            acc ^= self._enc_tab[bp][(word >> (8 * bp)) & 0xFF]
        return ((acc ^ check) & self._r_mask) | (
            ((acc >> self.r) ^ self._par_chk[check & self._chk_mask]) << self.r
        )

    # ------------------------------------------------------------------ #
    # Vector path (bulk encode for writes / initial fill)
    # ------------------------------------------------------------------ #

    def _fold_many(self, words: np.ndarray) -> np.ndarray:
        """Vectorised byte-table fold (check bits + popcount parity)."""
        acc = np.take(self._enc_np[0], words & _I64(0xFF))
        for bp in range(1, self._n_bytes):
            acc ^= np.take(self._enc_np[bp], (words >> (8 * bp)) & _I64(0xFF))
        return acc

    def encode_many(self, words: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode` over an array of masked words."""
        words = np.asarray(words, dtype=_I64)
        acc = self._fold_many(words)
        check = acc & _I64(self._r_mask)
        parity = (acc >> self.r) ^ np.take(self._par_np, check)
        return check | (parity << self.r)

    def syndrome_many(self, words: np.ndarray, checks: np.ndarray) -> np.ndarray:
        """Non-zero entries mark words whose stored ECC disagrees."""
        words = np.asarray(words, dtype=_I64)
        checks = np.asarray(checks, dtype=_I64)
        acc = self._fold_many(words)
        syn = (acc ^ checks) & _I64(self._r_mask)
        parity = (acc >> self.r) ^ np.take(self._par_np, checks & _I64(self._chk_mask))
        return syn | (parity << self.r)


@lru_cache(maxsize=None)
def codec_for(width: int) -> SecDed:
    """Shared :class:`SecDed` instance per word width."""
    return SecDed(width)


class EccTableRam(TableRam):
    """A :class:`TableRam` whose words carry SECDED check bits.

    Reads decode and correct in place (hardware write-back correction);
    writes re-encode.  ``ecc_corrected`` / ``ecc_detected`` count what
    the decoder saw — the detected counter is the *uncorrectable* count
    the recovery layer watches, since SECDED corrects everything else.

    ``signed`` states how flipped data words re-enter the raw domain:
    Q/reward/Qmax words are two's complement, the Qmax-action array is
    an unsigned action index.
    """

    __slots__ = (
        "codec",
        "check",
        "signed",
        "ecc_corrected",
        "ecc_detected",
        "_w_mask",
        "_syndrome",
    )

    def __init__(
        self,
        depth: int,
        width: int,
        *,
        name: str = "ram",
        kind: BlockKind = BRAM36,
        fill: int = 0,
        signed: bool = True,
    ):
        super().__init__(depth, width, name=name, kind=kind, fill=fill)
        self.codec = codec_for(width)
        self.signed = signed
        self._w_mask = (1 << width) - 1
        self._syndrome = self.codec.syndrome  # bound once: per-read hot path
        fill_check = self.codec.encode(mask_raw(fill, width))
        self.check = np.full(depth, fill_check, dtype=_I64)
        self.ecc_corrected = 0
        self.ecc_detected = 0

    # ------------------------------------------------------------------ #
    # Encode/decode plumbing
    # ------------------------------------------------------------------ #

    def _encode_addr(self, addr: int) -> None:
        self.check[addr] = self.codec.encode(int(self.data[addr]) & self._w_mask)

    def _decode_addr(self, addr: int) -> str:
        """Check one word, correcting storage in place.  Returns status."""
        word = int(self.data[addr]) & self._w_mask
        check = int(self.check[addr])
        status, fixed_word, fixed_check = self.codec.decode(word, check)
        if status == DECODE_CLEAN:
            return status
        if status == DECODE_CORRECTED:
            self.ecc_corrected += 1
            if fixed_word != word:
                self.data[addr] = sign_extend(fixed_word, self.width, self.signed)
            if fixed_check != check:
                self.check[addr] = fixed_check
            return status
        self.ecc_detected += 1
        return status

    # ------------------------------------------------------------------ #
    # Port operations (decode on read, encode on write)
    # ------------------------------------------------------------------ #

    def read(self, addr: int) -> int:
        # Clean words (the overwhelmingly common case) pay one table
        # fold and a compare; only a non-zero syndrome enters the full
        # decode/correct/count path.
        value = int(self.data[addr])
        if self._syndrome(value & self._w_mask, int(self.check[addr])):
            self._decode_addr(addr)
            value = int(self.data[addr])
        self.stats.reads += 1
        return value

    def read_many(self, addrs) -> np.ndarray:
        addrs = np.asarray(addrs)
        if addrs.size:
            uniq = np.unique(addrs)
            syn = self.codec.syndrome_many(
                self.data[uniq] & _I64(self._w_mask), self.check[uniq]
            )
            for addr in uniq[syn != 0]:
                self._decode_addr(int(addr))
        return super().read_many(addrs)

    def write_now(self, addr: int, value: int) -> None:
        super().write_now(addr, value)
        self._encode_addr(addr)

    def write_many_now(self, addrs, values) -> None:
        super().write_many_now(addrs, values)
        addrs = np.asarray(addrs)
        self.check[addrs] = self.codec.encode_many(self.data[addrs] & _I64(self._w_mask))

    def commit(self) -> int:
        written = [addr for addr, _ in self._pending]
        collisions = super().commit()
        for addr in written:
            self._encode_addr(addr)
        return collisions

    # ------------------------------------------------------------------ #
    # Fault-injection and scrub surface
    # ------------------------------------------------------------------ #

    @property
    def codeword_bits(self) -> int:
        """Bits an SEU can strike per word: data plus stored check bits."""
        return self.width + self.codec.check_bits

    def inject(self, addr: int, bit: int) -> None:
        """Flip one stored bit — data (``bit < width``) or check bit."""
        if not 0 <= addr < self.depth:
            raise IndexError(f"{self.name}: address {addr} out of range")
        if not 0 <= bit < self.codeword_bits:
            raise ValueError(
                f"{self.name}: bit {bit} outside the {self.codeword_bits}-bit codeword"
            )
        if bit < self.width:
            self.data[addr] = flip_raw_bit(
                int(self.data[addr]), bit, self.width, signed=self.signed
            )
        else:
            self.check[addr] = int(self.check[addr]) ^ (1 << (bit - self.width))

    def scrub_word(self, addr: int) -> str:
        """One scrub visit: decode/correct without counting a port read."""
        return self._decode_addr(addr)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["check"] = self.check.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.check[:] = state["check"]

    def telemetry_snapshot(self) -> dict:
        snap = super().telemetry_snapshot()
        snap["ecc_corrected"] = self.ecc_corrected
        snap["ecc_detected"] = self.ecc_detected
        return snap

    def __repr__(self) -> str:
        return (
            f"EccTableRam({self.name!r}, {self.depth}x{self.width}b"
            f"+{self.codec.check_bits}ecc, {self.blocks} {self.kind.name})"
        )


class Scrubber:
    """Background memory scrubber over protected tables.

    Real deployments sweep BRAM continuously so single-bit upsets are
    corrected before a second strike in the same word turns them into an
    uncorrectable pair.  :meth:`step` visits ``burst`` words round-robin
    across everything registered; :meth:`scrub_all` is one full sweep
    (e.g. before reading a table out for a checkpoint).

    For a full :class:`~repro.core.tables.AcceleratorTables` the
    scrubber additionally repairs *semantic* damage ECC alone cannot
    see: under the monotonic write path ``Qmax[s] >= max_a Q[s, a]``
    always holds, so a visited state violating it has a corrupted (or
    double-error) Qmax entry — the scrubber rewrites it from the Q row
    through the ordinary write path, as stage 4 would.  Out-of-range
    cached argmax actions are repaired the same way.
    """

    def __init__(self, *, burst: int = 32, telemetry=None):
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.burst = burst
        self._rams: list[EccTableRam] = []
        self._tables: list = []  # AcceleratorTables for semantic repair
        self._cursor = 0
        self._state_cursor = 0
        self.words_scrubbed = 0
        self.corrected = 0
        self.detected = 0
        self.scrub_repairs = 0

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        if session is not None:
            session.attach(self, "scrubber")

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def add_ram(self, ram: EccTableRam) -> None:
        """Register one protected RAM for sweeping."""
        if not isinstance(ram, EccTableRam):
            raise TypeError(f"scrubber needs an EccTableRam, got {type(ram).__name__}")
        self._rams.append(ram)

    def add_tables(self, tables) -> None:
        """Register an :class:`AcceleratorTables`: its protected RAMs
        plus the Qmax-consistency repair pass."""
        protected = [
            ram
            for ram in (tables.q, tables.rewards, tables.qmax, tables.qmax_action)
            if isinstance(ram, EccTableRam)
        ]
        if not protected:
            raise TypeError(
                "scrubber needs ECC-backed tables (build with ecc_tables=True)"
            )
        for ram in protected:
            self.add_ram(ram)
        self._tables.append(tables)

    # ------------------------------------------------------------------ #
    # Sweeping
    # ------------------------------------------------------------------ #

    @property
    def total_words(self) -> int:
        return sum(r.depth for r in self._rams)

    def _scrub_one(self, index: int) -> None:
        for ram in self._rams:
            if index < ram.depth:
                status = ram.scrub_word(index)
                self.words_scrubbed += 1
                if status == DECODE_CORRECTED:
                    self.corrected += 1
                elif status == DECODE_DETECTED:
                    self.detected += 1
                return
            index -= ram.depth

    def _repair_state(self, tables, state: int) -> None:
        if tables.config.qmax_mode != "monotonic":
            return  # the follow/exact rules allow qmax below the row max
        # Decode-correct every word this check is about to read: repairing
        # from *corrupted* data would launder the corruption through the
        # write path into a perfectly valid codeword.  A word with an
        # uncorrectable (double) error vetoes the repair — that state is
        # the supervisor's problem, not the scrubber's.
        words = [(tables.qmax, state), (tables.qmax_action, state)]
        base = tables.pair_addr(state, 0)
        words += [(tables.q, base + a) for a in range(tables.num_actions)]
        for ram, addr in words:
            status = ram.scrub_word(addr)
            self.words_scrubbed += 1
            if status == DECODE_CORRECTED:
                self.corrected += 1
            elif status == DECODE_DETECTED:
                self.detected += 1
                return
        row = tables.row_q(state)
        best = int(np.argmax(row))
        row_max = int(row[best])
        qmax = int(tables.qmax.data[state])
        qact = int(tables.qmax_action.data[state])
        if qmax < row_max:
            tables.qmax.write_now(state, row_max)
            tables.qmax_action.write_now(state, best)
            self.scrub_repairs += 1
        elif not 0 <= qact < tables.num_actions:
            tables.qmax_action.write_now(state, best)
            self.scrub_repairs += 1

    def step(self) -> None:
        """Visit the next ``burst`` words (one scrub interval)."""
        total = self.total_words
        if total:
            for _ in range(min(self.burst, total)):
                self._scrub_one(self._cursor)
                self._cursor = (self._cursor + 1) % total
        for tables in self._tables:
            n_states = tables.num_states
            for _ in range(min(self.burst, n_states)):
                self._repair_state(tables, self._state_cursor % n_states)
                self._state_cursor = (self._state_cursor + 1) % n_states

    def scrub_all(self) -> None:
        """One full sweep of every word and every Qmax row."""
        for ram in self._rams:
            for addr in range(ram.depth):
                status = ram.scrub_word(addr)
                self.words_scrubbed += 1
                if status == DECODE_CORRECTED:
                    self.corrected += 1
                elif status == DECODE_DETECTED:
                    self.detected += 1
        for tables in self._tables:
            for state in range(tables.num_states):
                self._repair_state(tables, state)

    def telemetry_snapshot(self) -> dict:
        return {
            "words_scrubbed": self.words_scrubbed,
            "corrected": self.corrected,
            "detected": self.detected,
            "scrub_repairs": self.scrub_repairs,
        }
