"""Divergence guards on the fixed-point datapath.

The stage-3 kernel saturates once per update, so a corrupted operand
(flipped table bit, struck pipeline register) tends to show up at the
output as one of two signatures:

* an **out-of-range** raw word — impossible from the healthy datapath,
  which clamps into the format, so any occurrence is hard evidence of
  corruption downstream of the saturation stage;
* a **stuck-at rail**: the same (state, action) pair writing a saturated
  value (``raw_min``/``raw_max``) many samples in a row.  A single rail
  hit is legal — large negative rewards legitimately clamp — so the
  guard acts on *streaks*, which a healthy contraction-mapping update
  does not produce unless the environment genuinely pins the value
  (compare the golden SARSA wall-grind, whose fixed point -16320 is far
  from the -32768 rail).

The guard's reaction is configurable, mirroring what a deployed
accelerator could do:

* ``"raise"`` — stop the machine (:class:`DivergenceError`): the debug /
  CI posture;
* ``"clamp"`` — force the value back into range and count the event:
  the keep-serving posture;
* ``"quarantine"`` — clamp, and additionally record the (state, action)
  pair (or fleet lane) as suspect so a supervisor can roll it back or
  exclude it (see :mod:`repro.robustness.checkpoint`).

Engines hold ``guard = None`` by default — the hot loops pay one pointer
test per sample, same discipline as the telemetry hook.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..fixedpoint.format import FxpFormat
from ..fixedpoint.ops import saturation_mask

GUARD_POLICIES = ("raise", "clamp", "quarantine")


class DivergenceError(RuntimeError):
    """Raised by a ``policy="raise"`` guard on datapath divergence."""


class DivergenceGuard:
    """Watches stage-3 results for out-of-range values and stuck-at rails.

    One guard instance serves one engine.  Scalar engines call
    :meth:`observe_update` per sample; the batch engine calls
    :meth:`observe_array` per lock-step vector (streaks are then tracked
    per *lane* rather than per pair).  :meth:`check_finite` is the
    NaN/Inf tripwire for float-domain readouts (metrics, convergence
    reports), where non-finite values would otherwise propagate silently.
    """

    def __init__(
        self,
        policy: str = "raise",
        *,
        stuck_limit: int = 64,
        telemetry=None,
    ):
        if policy not in GUARD_POLICIES:
            raise ValueError(
                f"unknown guard policy {policy!r}; choose one of {GUARD_POLICIES}"
            )
        if stuck_limit < 2:
            raise ValueError("stuck_limit must be >= 2")
        self.policy = policy
        self.stuck_limit = stuck_limit
        # Event counts (also mirrored into telemetry_snapshot()).
        self.out_of_range = 0
        self.saturated = 0
        self.stuck_events = 0
        self.nonfinite = 0
        #: Quarantined (state, action) pairs (scalar engines).
        self.quarantined: set[tuple[int, int]] = set()
        #: Quarantined lane indices (batch engine).
        self.quarantined_lanes: set[int] = set()
        # Streak state: scalar engines track one streak (the consecutive
        # saturated writes to a single pair, reset on any other write —
        # the hardware version is a register pair, not a CAM).
        self._streak_pair: Optional[tuple[int, int]] = None
        self._streak = 0
        self._lane_streak: Optional[np.ndarray] = None

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        if session is not None:
            session.attach(self, "guard")

    # ------------------------------------------------------------------ #
    # Scalar path
    # ------------------------------------------------------------------ #

    def observe_update(self, state: int, action: int, raw: int, fmt: FxpFormat) -> int:
        """Inspect one stage-3 result; returns the (possibly clamped)
        value the write-back stage should use."""
        if not fmt.raw_min <= raw <= fmt.raw_max:
            self.out_of_range += 1
            if self.policy == "raise":
                raise DivergenceError(
                    f"Q update for ({state}, {action}) produced raw {raw}, "
                    f"outside [{fmt.raw_min}, {fmt.raw_max}] — corrupted operand "
                    f"or register downstream of the saturation stage"
                )
            if self.policy == "quarantine":
                self.quarantined.add((state, action))
            raw = fmt.raw_min if raw < fmt.raw_min else fmt.raw_max
        if raw == fmt.raw_min or raw == fmt.raw_max:
            self.saturated += 1
            pair = (state, action)
            if pair == self._streak_pair:
                self._streak += 1
            else:
                self._streak_pair = pair
                self._streak = 1
            if self._streak == self.stuck_limit:
                self._stuck(pair)
        else:
            self._streak_pair = None
            self._streak = 0
        return raw

    def _stuck(self, pair: tuple[int, int]) -> None:
        self.stuck_events += 1
        if self.policy == "raise":
            raise DivergenceError(
                f"Q({pair[0]}, {pair[1]}) wrote a saturated value "
                f"{self.stuck_limit} samples in a row — stuck-at rail"
            )
        if self.policy == "quarantine":
            self.quarantined.add(pair)

    # ------------------------------------------------------------------ #
    # Batch path
    # ------------------------------------------------------------------ #

    def observe_array(self, q_new: np.ndarray, fmt: FxpFormat) -> None:
        """Inspect one lock-step update vector (one entry per lane)."""
        sat = saturation_mask(q_new, fmt)
        n_sat = int(sat.sum())
        if n_sat:
            self.saturated += n_sat
        if self._lane_streak is None or self._lane_streak.shape != sat.shape:
            self._lane_streak = np.zeros(sat.shape, dtype=np.int64)
        self._lane_streak = np.where(sat, self._lane_streak + 1, 0)
        stuck = np.nonzero(self._lane_streak == self.stuck_limit)[0]
        for lane in stuck:
            self.stuck_events += 1
            if self.policy == "raise":
                raise DivergenceError(
                    f"lane {int(lane)} wrote saturated values "
                    f"{self.stuck_limit} samples in a row — stuck-at rail"
                )
            if self.policy == "quarantine":
                self.quarantined_lanes.add(int(lane))

    # ------------------------------------------------------------------ #
    # Float-domain tripwire
    # ------------------------------------------------------------------ #

    def check_finite(self, values, where: str = "array") -> bool:
        """Assert a float readout contains no NaN/Inf.  Returns healthy."""
        finite = np.isfinite(np.asarray(values, dtype=np.float64))
        bad = int((~finite).sum())
        if bad == 0:
            return True
        self.nonfinite += bad
        if self.policy == "raise":
            raise DivergenceError(f"{bad} non-finite value(s) in {where}")
        return False

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> int:
        """Total guard trips (out-of-range + stuck + non-finite)."""
        return self.out_of_range + self.stuck_events + self.nonfinite

    def telemetry_snapshot(self) -> dict:
        return {
            "policy": self.policy,
            "out_of_range": self.out_of_range,
            "saturated": self.saturated,
            "stuck_events": self.stuck_events,
            "nonfinite": self.nonfinite,
            "quarantined_pairs": len(self.quarantined),
            "quarantined_lanes": len(self.quarantined_lanes),
        }
