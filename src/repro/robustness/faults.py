"""Deterministic, seeded fault injection for SEU campaigns.

A fault campaign needs two properties at once: the fault *process* must
look like the physical one (independent single-bit upsets, uniform over
the protected storage, Poisson in time), and the whole run must be
exactly reproducible — a campaign result that cannot be replayed bit for
bit cannot be debugged.  :class:`FaultInjector` gives both:

* every random choice comes from one ``numpy`` PCG64 generator seeded at
  construction, so a (seed, rate, target set, step schedule) tuple fully
  determines every flip;
* targets register with their physical bit count, and each upset picks a
  bit uniformly over the *total* storage — a table twice the size takes
  twice the hits, like real silicon;
* :meth:`schedule` pins individual flips to exact sample times for
  directed tests (the golden-trace pins use this), alongside or instead
  of the Poisson process;
* :meth:`corrupt_pipeline` strikes *in-flight* state: a random live
  pipeline register's numeric payload, modelling upsets in flip-flops
  rather than BRAM (these bypass memory ECC entirely — the divergence
  guards and checkpoint layer are the only defences).

When constructed inside an ambient telemetry session the injector's
counts appear as live registry counters under ``faults.*``.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from ..rtl.memory import TableRam, flip_raw_bit
from .ecc import EccTableRam


class _RamTarget:
    """One registered :class:`TableRam` (plain or ECC-protected)."""

    __slots__ = ("ram", "signed", "bits_per_word")

    def __init__(self, ram: TableRam, *, signed: bool = True):
        self.ram = ram
        self.signed = signed
        # ECC targets expose their check bits to upsets too: the code
        # must survive strikes on its own redundancy.
        self.bits_per_word = (
            ram.codeword_bits if isinstance(ram, EccTableRam) else ram.width
        )

    @property
    def label(self) -> str:
        return self.ram.name

    @property
    def total_bits(self) -> int:
        return self.ram.depth * self.bits_per_word

    def flip(self, addr: int, bit: int) -> None:
        ram = self.ram
        if isinstance(ram, EccTableRam):
            ram.inject(addr, bit)
        else:
            ram.data[addr] = flip_raw_bit(
                int(ram.data[addr]), bit, ram.width, signed=self.signed
            )


class _ArrayTarget:
    """A raw lane-vector array (the batch engine's per-lane tables)."""

    __slots__ = ("array", "width", "signed", "label", "bits_per_word")

    def __init__(self, array: np.ndarray, width: int, *, signed: bool = True, label: str = "array"):
        if array.dtype != np.int64:
            raise TypeError(f"fault target {label!r} must be int64, got {array.dtype}")
        self.array = array
        self.width = width
        self.signed = signed
        self.label = label
        self.bits_per_word = width

    @property
    def total_bits(self) -> int:
        return int(self.array.size) * self.width

    def flip(self, addr: int, bit: int) -> None:
        flat = self.array.reshape(-1)
        flat[addr] = flip_raw_bit(int(flat[addr]), bit, self.width, signed=self.signed)


#: Numeric Sample fields a register upset can strike, with the format
#: each travels in (all are q_format words in the current datapath).
_REGISTER_FIELDS = ("q_sa", "r", "q_next", "q_new")


class FaultInjector:
    """Seeded single-event-upset process over registered storage.

    ``rate`` is the expected number of upsets *per step unit* (the
    caller decides whether a step is a sample or a cycle); :meth:`step`
    advances the process clock and fires Poisson-distributed random
    flips plus any scheduled ones that came due.
    """

    def __init__(self, *, seed: int = 0, rate: float = 0.0, telemetry=None):
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._targets: list = []
        self._schedule: list[tuple[int, int, object, int, int]] = []  # heap
        self._seq = 0  # tie-break so heap never compares targets
        self.clock = 0
        self.injected = 0
        self.injected_scheduled = 0
        self.injected_registers = 0
        self._group = None

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        if session is not None:
            self._group = session.group("faults")
            session.attach(self, "fault_injector")

    # ------------------------------------------------------------------ #
    # Target registration
    # ------------------------------------------------------------------ #

    def add_table(self, ram: TableRam, *, signed: bool = True) -> None:
        """Register one RAM; strikes hit data bits (and check bits, for
        ECC-protected RAMs) uniformly."""
        self._targets.append(_RamTarget(ram, signed=signed))

    def add_tables(self, tables, include: tuple[str, ...] = ("q", "qmax")) -> None:
        """Register a table set's RAMs by name.  The default hits the
        *learned* state (Q and Qmax); rewards are typically excluded
        because a reward upset is a change of environment, not of learner
        state — include ``"rewards"`` explicitly to model it.  Update-rule
        extra tables (``"momentum"``, ``"target"``) are valid names
        whenever the configured rule allocates them — they are learned
        state in BRAM and therefore SECDED victims like the Q table."""
        by_name = {
            "q": (tables.q, True),
            "rewards": (tables.rewards, True),
            "qmax": (tables.qmax, True),
            "qmax_action": (tables.qmax_action, False),
        }
        for name, ram in tables.extra_rams.items():
            by_name[name] = (ram, True)
        for name in include:
            if name not in by_name:
                raise ValueError(
                    f"unknown table {name!r}; choose from {sorted(by_name)}"
                )
            ram, signed = by_name[name]
            self.add_table(ram, signed=signed)

    def add_array(
        self, array: np.ndarray, width: int, *, signed: bool = True, label: str = "array"
    ) -> None:
        """Register a raw int64 array (batch-engine lane tables)."""
        self._targets.append(_ArrayTarget(array, width, signed=signed, label=label))

    @property
    def total_bits(self) -> int:
        """Total storage bits an upset can strike."""
        return sum(t.total_bits for t in self._targets)

    # ------------------------------------------------------------------ #
    # Firing
    # ------------------------------------------------------------------ #

    def schedule(self, at: int, target, addr: int, bit: int) -> None:
        """Pin one flip to process time ``at`` (fires during the
        :meth:`step` that reaches it).  ``target`` is the ram/array
        object itself; it need not be registered for random strikes."""
        if at < self.clock:
            raise ValueError(f"cannot schedule at {at}; clock is already {self.clock}")
        self._seq += 1
        heapq.heappush(self._schedule, (at, self._seq, target, addr, bit))

    def _flip_target(self, target, addr: int, bit: int) -> None:
        if isinstance(target, (_RamTarget, _ArrayTarget)):
            target.flip(addr, bit)
        elif isinstance(target, TableRam):
            _RamTarget(target).flip(addr, bit)
        elif isinstance(target, np.ndarray):
            flat = target.reshape(-1)
            flat[addr] = flip_raw_bit(int(flat[addr]), bit, 64)
        else:
            raise TypeError(f"cannot flip bits of {type(target).__name__}")

    def _random_strike(self) -> None:
        total = self.total_bits
        if total == 0:
            return
        flat = int(self._rng.integers(total))
        for target in self._targets:
            if flat < target.total_bits:
                addr, bit = divmod(flat, target.bits_per_word)
                target.flip(addr, bit)
                self.injected += 1
                if self._group is not None:
                    self._group.inc("injected")
                return
            flat -= target.total_bits
        raise AssertionError("strike index out of range")

    def step(self, n: int = 1) -> int:
        """Advance the process clock ``n`` units; returns flips fired."""
        if n < 0:
            raise ValueError("n must be non-negative")
        before = self.injected + self.injected_scheduled
        self.clock += n
        while self._schedule and self._schedule[0][0] <= self.clock:
            _, _, target, addr, bit = heapq.heappop(self._schedule)
            self._flip_target(target, addr, bit)
            self.injected_scheduled += 1
            if self._group is not None:
                self._group.inc("injected_scheduled")
        if self.rate > 0.0 and self._targets:
            for _ in range(int(self._rng.poisson(self.rate * n))):
                self._random_strike()
        return self.injected + self.injected_scheduled - before

    # ------------------------------------------------------------------ #
    # In-flight register corruption
    # ------------------------------------------------------------------ #

    def corrupt_pipeline(self, pipe) -> Optional[str]:
        """Flip one bit of a random live pipeline-register payload.

        Returns a ``"reg.field[bit]"`` description of the strike, or
        ``None`` if the pipeline had no valid register to corrupt.
        These upsets bypass table ECC entirely; they are what the
        divergence guards and checkpoint rollback exist for.
        """
        live = [
            (name, reg.value)
            for name, reg in (
                ("reg12", pipe.reg12),
                ("reg23", pipe.reg23),
                ("reg34", pipe.reg34),
            )
            if reg.valid and reg.value is not None
        ]
        if not live:
            return None
        name, smp = live[int(self._rng.integers(len(live)))]
        field = _REGISTER_FIELDS[int(self._rng.integers(len(_REGISTER_FIELDS)))]
        width = pipe.config.q_format.wordlen
        bit = int(self._rng.integers(width))
        setattr(smp, field, flip_raw_bit(getattr(smp, field), bit, width))
        self.injected_registers += 1
        if self._group is not None:
            self._group.inc("injected_registers")
        return f"{name}.{field}[{bit}]"

    def telemetry_snapshot(self) -> dict:
        return {
            "rate": self.rate,
            "clock": self.clock,
            "total_bits": self.total_bits,
            "injected": self.injected,
            "injected_scheduled": self.injected_scheduled,
            "injected_registers": self.injected_registers,
        }
