"""Fault injection, ECC/scrubbing, divergence guards, and recovery.

The robustness layer of the reproduction (see ``docs/robustness.md``):

* :mod:`~repro.robustness.ecc` — SECDED codec, :class:`EccTableRam`,
  background :class:`Scrubber`;
* :mod:`~repro.robustness.faults` — deterministic seeded
  :class:`FaultInjector` (Poisson + scheduled campaigns, pipeline
  register strikes);
* :mod:`~repro.robustness.guards` — :class:`DivergenceGuard` for the
  fixed-point datapath (saturation/stuck-at/NaN, raise/clamp/quarantine);
* :mod:`~repro.robustness.checkpoint` — engine checkpoints,
  :class:`FleetSupervisor` rollback/retry/quarantine, :class:`Watchdog`;
* :mod:`~repro.robustness.sharded_smoke` — the CI worker-crash recovery
  smoke for the process-parallel
  :class:`~repro.backends.sharded.ShardedFleetBackend` (which embeds a
  :class:`CheckpointStore` and applies the same rollback/retry/
  quarantine discipline to whole worker processes).

Everything here is opt-in: engines built without these objects run the
exact PR-1 hot loops (one ``None`` pointer test per hook site).
"""

from .checkpoint import (
    BatchLanes,
    CheckpointStore,
    FleetSupervisor,
    SimLanes,
    SupervisorReport,
    Watchdog,
)
from .ecc import EccTableRam, Scrubber, SecDed
from .faults import FaultInjector
from .guards import DivergenceError, DivergenceGuard

__all__ = [
    "BatchLanes",
    "CheckpointStore",
    "DivergenceError",
    "DivergenceGuard",
    "EccTableRam",
    "FaultInjector",
    "FleetSupervisor",
    "Scrubber",
    "SecDed",
    "SimLanes",
    "SupervisorReport",
    "Watchdog",
]
