"""CI smoke: worker-crash recovery in the sharded fleet backend.

``python -m repro.robustness.sharded_smoke`` builds a small sharded
fleet, kills one worker process mid-run, and asserts that the
supervisor's checkpoint/replay recovery leaves the fleet *bit-identical*
to an uninterrupted single-process vectorized run — the strongest
possible statement that recovery worked, because any dropped or
double-counted sample would show up in the tables or the stats.

Exit code 0 on success, 1 on any mismatch; the ``perf-regression`` CI
job runs this after the sharded throughput gate.  Uses the ``fork``
context (fast on CI Linux runners); the pytest suite covers ``spawn``.
"""

from __future__ import annotations

import sys

import numpy as np


def main() -> int:
    from ..backends.sharded import ShardedFleetBackend
    from ..backends.vectorized import VectorizedFleetBackend
    from ..core.config import QTAccelConfig
    from ..envs.gridworld import GridWorld

    mdp = GridWorld.empty(8, 4).to_mdp()
    cfg = QTAccelConfig.qlearning(seed=11, qmax_mode="follow")
    lanes, steps = 8, 100

    reference = VectorizedFleetBackend(mdp, cfg, num_agents=lanes)
    reference.run(2 * steps)

    fleet = ShardedFleetBackend(
        mdp,
        cfg,
        num_agents=lanes,
        num_workers=2,
        epoch=25,
        checkpoint_interval=1,
        mp_context="fork",
    )
    try:
        fleet.run(steps)
        fleet.kill_worker(1)
        fleet.run(steps)

        failures = []
        if fleet.restarts < 1:
            failures.append(f"expected >=1 worker restart, saw {fleet.restarts}")
        if fleet.quarantined_workers:
            failures.append(f"workers quarantined: {sorted(fleet.quarantined_workers)}")
        for name in ("q", "qmax", "qmax_action"):
            if not np.array_equal(getattr(fleet, name), getattr(reference, name)):
                failures.append(f"{name} diverged from uninterrupted vectorized run")
        for name in ("samples_per_agent", "episodes", "exploits", "explores"):
            got = getattr(fleet.stats, name)
            want = getattr(reference.stats, name)
            if got != want:
                failures.append(f"stats.{name}: {got} != {want}")
    finally:
        fleet.close()

    if failures:
        for line in failures:
            print(f"sharded recovery smoke: {line}", file=sys.stderr)
        return 1
    print(
        f"sharded recovery smoke ok: killed 1 of 2 workers at sample {steps}, "
        f"recovered via checkpoint replay, bit-identical at sample {2 * steps} "
        f"(restarts={fleet.restarts})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
