"""Checkpoint/restore and fleet supervision.

Every engine in the reproduction is *deterministic*: its next state is a
pure function of its architectural state (tables, LFSR registers, the
episode/forwarding latches).  The engines therefore expose
``state_dict()`` / ``load_state_dict()`` snapshots of exactly that
state, and recovery reduces to a very strong primitive — restore a
checkpoint and re-run, and the machine reproduces the original
trajectory bit for bit.  Corruption injected from *outside* the machine
(an SEU) is not part of that function, so a rollback-and-retry of a
poisoned interval genuinely heals it.

Layers in this module:

* :class:`CheckpointStore` — a bounded ring of recent snapshots;
* :class:`BatchLanes` / :class:`SimLanes` — adapters giving the fleet
  engines (:class:`~repro.core.batch.BatchIndependentSimulator`,
  :class:`~repro.core.multi_pipeline.IndependentPipelines` or any list
  of scalar simulators) one lane-oriented interface;
* :class:`Watchdog` — a progress monitor that trips after ``patience``
  intervals without forward progress;
* :class:`FleetSupervisor` — the recovery loop: run in chunks, health-
  check every lane after each chunk, roll back and retry poisoned
  chunks, and quarantine lanes that stay unhealthy so the rest of the
  fleet keeps training (graceful degradation).

The process-parallel :class:`~repro.backends.sharded.ShardedFleetBackend`
reuses :class:`CheckpointStore` as its epoch-snapshot ring and applies
the same rollback/retry/quarantine discipline at worker-process
granularity: a crashed worker's shard is restored from the last
checkpoint and replayed (determinism makes the replay bit-exact), and a
worker that keeps dying is quarantined so the surviving shards train on.
:class:`FleetSupervisor` also composes *over* a sharded fleet through
:class:`BatchLanes`, layering per-lane health checks on top of the
backend's own crash recovery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..fixedpoint.format import FxpFormat


class CheckpointStore:
    """A bounded ring of ``(tag, state)`` snapshots, newest last.

    States are the engines' ``state_dict()`` payloads, which already
    copy their arrays — the store never aliases live engine state.
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque = deque(maxlen=capacity)

    def push(self, tag, state: dict) -> None:
        self._ring.append((tag, state))

    def latest(self) -> tuple:
        """Newest ``(tag, state)``; raises if empty."""
        if not self._ring:
            raise LookupError("no checkpoints stored")
        return self._ring[-1]

    def get(self, tag):
        """The newest state stored under ``tag``; raises if absent."""
        for t, state in reversed(self._ring):
            if t == tag:
                return state
        raise LookupError(f"no checkpoint tagged {tag!r}")

    def __len__(self) -> int:
        return len(self._ring)

    def tags(self) -> list:
        return [t for t, _ in self._ring]


# ---------------------------------------------------------------------- #
# Lane adapters
# ---------------------------------------------------------------------- #


class BatchLanes:
    """Lane adapter over a :class:`BatchIndependentSimulator`.

    The batch engine advances all lanes in lock-step, so the rollback
    unit is the whole fleet: restore the checkpoint and re-run the chunk.
    Determinism makes this safe — healthy lanes replay bit-identically,
    and only externally injected corruption (which is *not* part of the
    replay) disappears.  Persistent corruption is handled per lane via
    :meth:`restore_lane` + quarantine.
    """

    def __init__(self, sim):
        self.sim = sim

    @property
    def num_lanes(self) -> int:
        return self.sim.K

    def checkpoint(self) -> dict:
        return self.sim.state_dict()

    def restore(self, state: dict) -> None:
        self.sim.load_state_dict(state)

    def restore_lane(self, k: int, state: dict) -> None:
        self.sim.load_lane_state(k, self.sim.lane_state(k, state))

    def run_chunk(self, samples: int, lanes_mask: Optional[np.ndarray] = None) -> None:
        # Lock-step engine: quarantined lanes keep stepping (their
        # results are excluded by the supervisor), exactly like a fleet
        # whose broken pipeline keeps clocking.
        self.sim.run(samples)

    def lane_health(self, k: int) -> bool:
        """Default health predicate: per-lane structural invariants.

        Under the monotonic rule ``Qmax[s] >= max_a Q[s, a]`` holds for
        every state of a healthy lane; the cached argmax must be a legal
        action index.  (A flip that only *lowers* a Q entry stays
        consistent and is undetectable here — that is what ECC is for.)
        """
        sim = self.sim
        rows = sim.q[k].reshape(sim.S, sim.A)
        acts = sim.qmax_action[k]
        if not bool(np.all((acts >= 0) & (acts < sim.A))):
            return False
        if sim.config.qmax_mode == "monotonic":
            return bool(np.all(sim.qmax[k] >= rows.max(axis=1)))
        return True


class SimLanes:
    """Lane adapter over independent scalar simulators.

    Accepts a list of :class:`~repro.core.functional.FunctionalSimulator`
    (or anything with the same ``run``/``state_dict`` surface), e.g.
    ``IndependentPipelines.sims``.  Lanes advance independently, so both
    rollback and retry happen per lane, and quarantined lanes simply stop
    being run.
    """

    def __init__(self, sims: Sequence):
        if not sims:
            raise ValueError("need at least one lane")
        self.sims = list(sims)

    @property
    def num_lanes(self) -> int:
        return len(self.sims)

    def checkpoint(self) -> dict:
        return {"lanes": [sim.state_dict() for sim in self.sims]}

    def restore(self, state: dict) -> None:
        for sim, lane in zip(self.sims, state["lanes"]):
            sim.load_state_dict(lane)

    def restore_lane(self, k: int, state: dict) -> None:
        self.sims[k].load_state_dict(state["lanes"][k])

    def run_chunk(self, samples: int, lanes_mask: Optional[np.ndarray] = None) -> None:
        for k, sim in enumerate(self.sims):
            if lanes_mask is None or lanes_mask[k]:
                sim.run(samples)

    def run_lane_chunk(self, k: int, samples: int) -> None:
        self.sims[k].run(samples)

    def lane_health(self, k: int) -> bool:
        sim = self.sims[k]
        tables = sim.tables
        acts = tables.qmax_action.data
        if not bool(np.all((acts >= 0) & (acts < tables.num_actions))):
            return False
        if sim.config.qmax_mode == "monotonic":
            return tables.qmax_invariant_holds()
        return True


# ---------------------------------------------------------------------- #
# Watchdog
# ---------------------------------------------------------------------- #


class Watchdog:
    """Trips after ``patience`` beats without forward progress.

    ``beat(progress)`` returns True while healthy; once the same (or a
    lower) progress value has been reported ``patience`` times in a row
    the watchdog is expired and every further beat returns False.
    """

    def __init__(self, patience: int = 3):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.strikes = 0
        self._best: Optional[float] = None

    @property
    def expired(self) -> bool:
        return self.strikes >= self.patience

    def beat(self, progress: float) -> bool:
        if self._best is None or progress > self._best:
            self._best = progress
            self.strikes = 0
        else:
            self.strikes += 1
        return not self.expired


# ---------------------------------------------------------------------- #
# Supervisor
# ---------------------------------------------------------------------- #


@dataclass
class SupervisorReport:
    """Outcome of one supervised run."""

    chunks: int = 0
    samples_per_lane: int = 0
    retries: int = 0
    rollbacks: int = 0
    quarantined: tuple[int, ...] = ()
    completed: bool = True

    @property
    def healthy_lanes(self) -> int:
        return self._num_lanes - len(self.quarantined)

    _num_lanes: int = field(default=0, repr=False)


class FleetSupervisor:
    """Checkpointed, self-healing execution of a lane fleet.

    Per chunk of ``interval`` samples: snapshot, run, health-check every
    (non-quarantined) lane.  Unhealthy lanes trigger rollback to the
    chunk-start snapshot and a retry, up to ``max_retries`` times; a lane
    that is still unhealthy afterwards is restored to the snapshot and
    **quarantined** — excluded from health accounting while the rest of
    the fleet continues (and, for independent lanes, no longer run).

    ``on_chunk(attempt, chunk)`` is the poison hook: tests and campaigns
    use it to inject faults mid-interval.  ``health`` overrides the
    adapter's per-lane predicate.
    """

    def __init__(
        self,
        lanes,
        *,
        interval: int = 256,
        max_retries: int = 2,
        health: Optional[Callable[[object, int], bool]] = None,
        on_chunk: Optional[Callable[[int, int], None]] = None,
        store: Optional[CheckpointStore] = None,
        watchdog: Optional[Watchdog] = None,
        telemetry=None,
    ):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.lanes = lanes
        self.interval = interval
        self.max_retries = max_retries
        self._health = health
        self.on_chunk = on_chunk
        self.store = store if store is not None else CheckpointStore()
        self.watchdog = watchdog
        self.quarantined: set[int] = set()
        self.report = SupervisorReport(_num_lanes=lanes.num_lanes)
        self._group = None

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        #: Session pulsed once per chunk attempt for live-metrics export.
        self._session = session
        if session is not None:
            self._group = session.group("supervisor")
            session.attach(self, "supervisor")

    # ------------------------------------------------------------------ #

    def _lane_healthy(self, k: int) -> bool:
        if self._health is not None:
            return self._health(self.lanes, k)
        return self.lanes.lane_health(k)

    def _unhealthy(self) -> list[int]:
        return [
            k
            for k in range(self.lanes.num_lanes)
            if k not in self.quarantined and not self._lane_healthy(k)
        ]

    def _active_mask(self) -> np.ndarray:
        mask = np.ones(self.lanes.num_lanes, dtype=bool)
        for k in self.quarantined:
            mask[k] = False
        return mask

    def run(self, samples_per_lane: int) -> SupervisorReport:
        """Supervised run of ``samples_per_lane`` updates per lane."""
        if samples_per_lane < 0:
            raise ValueError("samples_per_lane must be non-negative")
        done = 0
        chunk_index = self.report.chunks
        while done < samples_per_lane:
            n = min(self.interval, samples_per_lane - done)
            snapshot = self.lanes.checkpoint()
            self.store.push(("chunk", chunk_index), snapshot)

            bad: list[int] = []
            for attempt in range(self.max_retries + 1):
                if attempt > 0:
                    # Rollback.  Lock-step fleets restore whole; per-lane
                    # fleets restore only the poisoned lanes and re-run them.
                    self.report.retries += 1
                    if self._group is not None:
                        self._group.inc("retries")
                    if hasattr(self.lanes, "run_lane_chunk"):
                        for k in bad:
                            self.report.rollbacks += 1
                            self.lanes.restore_lane(k, snapshot)
                            self.lanes.run_lane_chunk(k, n)
                    else:
                        self.report.rollbacks += 1
                        self.lanes.restore(snapshot)
                        self.lanes.run_chunk(n, self._active_mask())
                else:
                    self.lanes.run_chunk(n, self._active_mask())
                if self.on_chunk is not None:
                    self.on_chunk(attempt, chunk_index)
                if self._session is not None:
                    self._session.pulse()
                bad = self._unhealthy()
                if not bad:
                    break

            if bad:
                # Unrecoverable this interval: park the lanes at the
                # last good state and take them out of the fleet.
                for k in bad:
                    self.lanes.restore_lane(k, snapshot)
                    self.quarantined.add(k)
                    if self._group is not None:
                        self._group.inc("quarantined")
                self.report.quarantined = tuple(sorted(self.quarantined))

            done += n
            chunk_index += 1
            self.report.chunks = chunk_index
            self.report.samples_per_lane += n
            if self._group is not None:
                self._group.inc("chunks")

            if self.watchdog is not None:
                active = self.lanes.num_lanes - len(self.quarantined)
                if not self.watchdog.beat(done * max(active, 0)):
                    self.report.completed = False
                    break
            if len(self.quarantined) == self.lanes.num_lanes:
                # Nothing left to supervise.
                self.report.completed = False
                break
        return self.report

    def telemetry_snapshot(self) -> dict:
        r = self.report
        return {
            "chunks": r.chunks,
            "samples_per_lane": r.samples_per_lane,
            "retries": r.retries,
            "rollbacks": r.rollbacks,
            "quarantined": len(self.quarantined),
            "completed": r.completed,
        }


def range_health(fmt: FxpFormat) -> Callable[[object, int], bool]:
    """A health predicate checking every Q word stays in ``fmt``'s raw
    range (useful for ``wrap``-overflow ablations where corruption can
    push words outside the format)."""

    def check(lanes, k: int) -> bool:
        if isinstance(lanes, BatchLanes):
            q = lanes.sim.q[k]
        else:
            q = lanes.sims[k].tables.q.data
        return bool(np.all((q >= fmt.raw_min) & (q <= fmt.raw_max)))

    return check
