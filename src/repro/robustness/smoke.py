"""Fault-injection smoke gate: run the campaign, enforce the headline.

CI entry point (``python -m repro.robustness.smoke``): regenerates the
:mod:`~repro.experiments.fault_campaign` artifact and fails the build
unless the protection story holds —

* every ECC+scrub run reports **zero uncorrectable** words at the
  default rate and ends **bit-identical** to the fault-free run;
* every ECC+scrub run converges at least as well as the clean run
  (success rate no lower), at the stress rate included.

Everything in the campaign is seeded, so this is a deterministic gate,
not a flaky statistical one.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..experiments.registry import run_experiment


def check_headline(result) -> list[str]:
    """Return a list of human-readable violations (empty = pass)."""
    failures: list[str] = []
    clean = next(r for r in result.rows if r[1] == "none (clean)")
    clean_success = float(clean[6])
    protected = [r for r in result.rows if r[1] == "ecc+scrub"]
    if not protected:
        return ["campaign produced no ECC-protected rows"]
    default_rate = min(float(r[0]) for r in protected)
    for row in protected:
        rate, _, injected, corrected, uncorrectable, _, success, _, matches = row
        tag = f"ecc+scrub @ rate {rate}"
        if float(success) < clean_success:
            failures.append(
                f"{tag}: success {success} below clean run's {clean_success}"
            )
        if float(rate) == default_rate:
            if uncorrectable != 0:
                failures.append(f"{tag}: {uncorrectable} uncorrectable words")
            if matches != "yes":
                failures.append(f"{tag}: final Q table not bit-identical to clean")
        if injected and not corrected:
            failures.append(f"{tag}: {injected} upsets injected, none corrected")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qtaccel-fault-smoke",
        description="Run the SEU campaign and enforce the ECC headline.",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write the campaign artifact to DIR/fault_campaign.txt",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-length campaign (minutes) instead of the quick one",
    )
    args = parser.parse_args(argv)

    result = run_experiment("fault_campaign", quick=not args.full)
    text = result.format()
    print(text)
    if args.output:
        out = pathlib.Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        (out / "fault_campaign.txt").write_text(text + "\n")

    failures = check_headline(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("fault-injection smoke: headline holds")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
