"""Shared surface of the fleet backends.

A *fleet backend* runs ``n_lanes`` independent QTAccel learners — one
Q/Qmax table set, one LFSR triple and one architectural latch set per
lane — behind one lane-oriented interface.  Three implementations exist:

* :class:`~repro.backends.vectorized.VectorizedFleetBackend` — the
  array program: every per-sample quantity is a length-``n_lanes``
  numpy vector and the 4-multiplier update rule is applied lane-parallel
  per lock-step step (the software analogue of the paper's Fig. 9
  replicated pipelines);
* :class:`~repro.backends.scalar.ScalarFleetBackend` — a pure-Python
  loop of per-lane :class:`~repro.core.functional.FunctionalSimulator`
  instances (Da Silva-style "no batching"), kept as the reference
  baseline the throughput benches compare against;
* :class:`~repro.backends.sharded.ShardedFleetBackend` — the
  vectorized array program partitioned into contiguous lane shards,
  one ``multiprocessing`` worker per shard over shared-memory state
  (the multi-core analogue of replicating whole accelerators).

All are **bit-identical per lane** to a scalar functional simulator
seeded with the same salt — draws, lag semantics, Qmax rules and
fixed-point arithmetic included (asserted by the test suite) — so the
backend choice is purely a throughput decision.

This module owns what the implementations share: the fleet-environment
normalisation/validation, the :class:`BatchStats` counters, the
:class:`FleetBackend` protocol, and the name registry behind
``BatchIndependentSimulator(..., backend=...)`` and
:func:`repro.core.engine.make_engine`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.runstats import RunStatsContract
from ..envs.base import DenseMdp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import QTAccelConfig


@dataclass
class BatchStats(RunStatsContract):
    """Aggregate counters of a fleet run (any backend)."""

    agents: int = 0
    samples_per_agent: int = 0
    episodes: int = 0
    exploits: int = 0
    explores: int = 0

    @property
    def samples(self) -> int:
        """Total updates retired across the fleet (the shared contract)."""
        return self.agents * self.samples_per_agent

    @property
    def total_samples(self) -> int:
        """Deprecated spelling of :attr:`samples`."""
        warnings.warn(
            "BatchStats.total_samples is deprecated; use BatchStats.samples",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.samples


#: Alias under the fleet vocabulary; ``BatchStats`` stays the canonical
#: name (checkpoints serialise its field dict).
FleetStats = BatchStats


@dataclass(frozen=True)
class FleetSpec:
    """Validated, normalised fleet construction inputs."""

    mdps: tuple[DenseMdp, ...]
    homogeneous: bool
    salts: np.ndarray  # (n_lanes,) int64

    @property
    def n_lanes(self) -> int:
        return len(self.mdps)

    @property
    def num_states(self) -> int:
        return self.mdps[0].num_states

    @property
    def num_actions(self) -> int:
        return self.mdps[0].num_actions


def normalize_fleet(
    mdps: "DenseMdp | Sequence[DenseMdp]",
    *,
    n_lanes: int | None = None,
    salts: Sequence[int] | None = None,
) -> FleetSpec:
    """Validate fleet inputs into a :class:`FleetSpec`.

    Accepts either one shared world (requires ``n_lanes``) or a sequence
    of same-shaped worlds (one per lane).  ``salts`` defaults to
    ``range(n_lanes)`` — lane ``k`` then matches a scalar simulator built
    with ``PolicyDraws.from_config(config, salt=k)``.
    """
    if isinstance(mdps, DenseMdp):
        if n_lanes is None:
            raise ValueError("num_agents is required with a single shared world")
        fleet = (mdps,) * n_lanes
        homogeneous = True
    else:
        fleet = tuple(mdps)
        if n_lanes is not None and n_lanes != len(fleet):
            raise ValueError("num_agents contradicts the mdps list")
        homogeneous = False
    if not fleet:
        raise ValueError("need at least one agent")
    k = len(fleet)
    shape = (fleet[0].num_states, fleet[0].num_actions)
    if any((m.num_states, m.num_actions) != shape for m in fleet):
        raise ValueError("all agent worlds must share (|S|, |A|)")
    n_starts = len(fleet[0].start_states)
    if any(len(m.start_states) != n_starts for m in fleet):
        raise ValueError(
            "all agent worlds must have equally many start states "
            "(the start draw reduces modulo that count)"
        )
    if salts is None:
        salts = range(k)
    salt_arr = np.asarray(list(salts), dtype=np.int64)
    if salt_arr.size != k:
        raise ValueError("need one salt per agent")
    return FleetSpec(mdps=fleet, homogeneous=homogeneous, salts=salt_arr)


@runtime_checkable
class FleetBackend(Protocol):
    """The lane-oriented interface every fleet backend implements.

    Attribute vocabulary (kept from the original batch engine so lane
    adapters like :class:`repro.robustness.checkpoint.BatchLanes` work
    on either backend): ``K`` lanes over ``S`` states x ``A`` actions,
    with ``q``/``qmax``/``qmax_action`` exposed as stacked per-lane
    arrays of shape ``(K, S*A)`` / ``(K, S)`` / ``(K, S)``.

    Update rules (:mod:`repro.algorithms`): every backend honours
    ``config.update_rule`` uniformly — the accelerated rules' extra
    per-lane tables (momentum iterate, Polyak target) are allocated,
    stepped, checkpointed in :meth:`state_dict`/:meth:`lane_state`, and
    reset by :meth:`reset_lane` exactly like the Q table, and every
    backend stays bit-identical per lane to a scalar functional
    simulator built with the same config and salt.  Rule selection
    errors are typed (:class:`repro.algorithms.UnknownUpdateRuleError`,
    :class:`repro.algorithms.IncompatibleRuleError`) and raised at
    :class:`~repro.core.config.QTAccelConfig` construction, before any
    backend is built; combinations a specific engine cannot honour
    raise :class:`repro.algorithms.UnsupportedRuleError` from its
    constructor (e.g. the cycle-accurate pipeline with a hard
    ``target_sync_period`` — a wholesale table copy has no single-cycle
    implementation).
    """

    K: int
    S: int
    A: int
    config: "QTAccelConfig"
    stats: BatchStats

    def step(self) -> None: ...

    def run(self, samples_per_agent: int) -> BatchStats: ...

    def state_dict(self) -> dict: ...

    def load_state_dict(self, state: dict) -> None: ...

    def lane_state(self, k: int, state: dict | None = None) -> dict: ...

    def load_lane_state(self, k: int, lane: dict) -> None: ...

    def q_float(self, agent: int) -> np.ndarray: ...

    def q_float_all(self) -> np.ndarray: ...

    def telemetry_snapshot(self) -> dict: ...

    # Lane leasing — the ``repro.serve`` surface.  A *leased* lane is
    # driven by externally supplied transitions instead of the built-in
    # environment tables: ``reset_lane`` re-seeds lane ``k`` to the
    # pristine state of a fresh lane with the given salt,
    # ``apply_transition`` retires one client-supplied ``(s, a, r, s')``
    # sample through the full 4-stage datapath (one policy draw for
    # e-greedy update policies, none for greedy), and ``query_action``
    # recommends an action from the committed tables (consuming one
    # policy draw only when ``explore=True``).  All three are
    # bit-identical across backends for the same salt and call sequence.

    def reset_lane(self, k: int, salt: int) -> None: ...

    def apply_transition(
        self,
        k: int,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
    ) -> int: ...

    def query_action(self, k: int, state: int, explore: bool = True) -> int: ...


def fleet_backends() -> dict[str, type]:
    """Name -> class registry of the known fleet backends.

    Registration is unconditional — constructing ``"native"`` on a host
    with no compiled kernel tier raises a typed
    :class:`~repro.backends.native.NativeBackendUnavailableError`; use
    :func:`fleet_backend_availability` to probe without constructing.
    """
    from .native import NativeFleetBackend
    from .scalar import ScalarFleetBackend
    from .sharded import ShardedFleetBackend
    from .vectorized import VectorizedFleetBackend

    return {
        "vectorized": VectorizedFleetBackend,
        "scalar": ScalarFleetBackend,
        "sharded": ShardedFleetBackend,
        "native": NativeFleetBackend,
    }


def fleet_backend_availability() -> dict[str, dict]:
    """Per-backend availability report, ``name -> {available, detail}``.

    The pure-Python/numpy backends are always available; ``"native"``
    needs a compiled kernel tier (numba via the ``repro[native]`` extra,
    or a system C compiler).
    """
    from .native import native_available

    report = {
        name: {"available": True, "detail": ""}
        for name in ("vectorized", "scalar", "sharded")
    }
    ok, detail = native_available()
    report["native"] = {"available": ok, "detail": detail}
    return report


def resolve_fleet_backend(name: str) -> type:
    """Look one backend class up by name, with a helpful error."""
    registry = fleet_backends()
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown fleet backend {name!r}; choose one of {sorted(registry)}"
        ) from None


def make_fleet_backend(
    mdps: "DenseMdp | Sequence[DenseMdp]",
    config: "QTAccelConfig",
    *,
    backend: str = "vectorized",
    num_agents: int | None = None,
    salts: Sequence[int] | None = None,
    telemetry=None,
    **kw,
) -> FleetBackend:
    """Construct a fleet backend by name (the functional entry point).

    Extra keyword arguments forward to the chosen backend's constructor
    — e.g. ``num_workers=`` for ``"sharded"``, ``kernel=`` for
    ``"native"`` — matching the batch facade and ``make_engine``.
    """
    cls = resolve_fleet_backend(backend)
    return cls(
        mdps, config, num_agents=num_agents, salts=salts, telemetry=telemetry, **kw
    )
