"""Native fused fleet kernel: the whole lock-step program in one pass.

:class:`~repro.backends.vectorized.VectorizedFleetBackend` executes one
lock-step sample as ~40 numpy array operations over ~10 temporaries —
every intermediate crosses memory once per step, which BENCH_1/2 showed
is the software ceiling.  This module lowers that exact program (env
step, epsilon-greedy argmax with LFSR draws, and the stage-3 fixed-point
update of every registered :class:`~repro.algorithms.UpdateRule` with a
compiled lowering) into **one fused pass**, mirroring how the paper's
4-stage pipeline fuses read/bootstrap/update/write-back into a single
hardware traversal:

* the loop nest is interchanged to *lane-outer, step-inner* — legal
  because lanes never interact — so one lane's tables stay cache-hot
  across a whole chunk of steps instead of the fleet's entire state
  being streamed through memory every step;
* the fixed-point arithmetic is integer ``int64`` raw math replicating
  :mod:`repro.fixedpoint.ops` bit for bit (wide accumulate, one
  ``rshift_round`` in either rounding mode, one saturate/wrap clamp);
* which stage-3/stage-4 arithmetic a rule needs is taken from its
  :class:`~repro.algorithms.RuleKernel` lowering descriptor — rules
  without a compiled lowering are rejected with a typed
  :class:`~repro.algorithms.UnsupportedRuleError` at construction.

Three kernel tiers share a single implementation:

``numba``
    :func:`numba.njit` ``(parallel=True, cache=True)`` over the lane
    axis (requires the ``repro[native]`` extra).
``cc``
    The same program as static C, compiled at import-to-use time with
    the system compiler (``cc``/``gcc``/``clang``) into a cached shared
    object and called through :mod:`ctypes` — no third-party packages.
``python``
    The shared implementation interpreted directly (bit-identical,
    slow; selected only explicitly — it exists so the contract suite
    can prove all tiers agree without a compiler).

Importing this module never requires numba; tier resolution happens at
backend construction (``kernel="auto"`` prefers numba, then cc, then
raises :class:`NativeBackendUnavailableError`).

Everything else — storage layout, checkpointing, the serve-facing
``reset_lane``/``apply_transition``/``query_action`` lane ops, lane
state, q_float views — is inherited unchanged from the vectorized
backend: the kernel mutates the very same arrays in place, so mixing
fused ``run()`` calls with the inherited per-step surfaces stays
bit-identical.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import tempfile
from typing import Sequence

import numpy as np

from ..core.config import QTAccelConfig
from ..envs.base import DenseMdp
from ..rtl.rng import DECIMATION
from .vectorized import VectorizedFleetBackend

_I64 = np.int64

#: Tier resolution order of ``kernel="auto"`` (``python`` is excluded —
#: it is a correctness oracle, not a performance tier).
AUTO_TIERS = ("numba", "cc")

#: Recognised ``kernel=`` spellings.
KERNEL_TIERS = ("numba", "cc", "python")

#: Environment override consulted when the constructor gets no explicit
#: ``kernel=`` (``make_engine``/``make_fleet_backend`` don't forward one).
KERNEL_ENV_VAR = "QTACCEL_NATIVE_KERNEL"

#: Qmax-rule dispatch tags inside the fused kernel.
_QMAX_MODES = {"exact": 0, "monotonic": 1, "follow": 2}

#: RuleKernel.kernel_id values this kernel lowers, and the rule *kind*
#: whose extra-table allocation each id assumes.
_KERNEL_ID_KINDS = {0: ("plain",), 1: ("momentum",), 2: ("target",)}


class NativeBackendUnavailableError(ImportError):
    """No native kernel tier is available on this host.

    Raised by :class:`NativeFleetBackend` (and therefore by
    ``make_engine(engine="native")`` and
    ``make_fleet_backend(backend="native")``) instead of a bare
    :class:`ImportError`, naming the install extra that fixes it.
    """


def _find_compiler() -> str | None:
    """The C compiler of the ``cc`` tier, or None."""
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def native_kernel_tiers() -> dict[str, bool]:
    """Availability of each kernel tier on this host (no imports run)."""
    return {
        "numba": importlib.util.find_spec("numba") is not None,
        "cc": _find_compiler() is not None,
        "python": True,
    }


def native_available() -> tuple[bool, str]:
    """Whether ``kernel="auto"`` would resolve, with a human detail."""
    tiers = native_kernel_tiers()
    for tier in AUTO_TIERS:
        if tiers[tier]:
            return True, f"kernel tier {tier!r}"
    return False, (
        "no compiled kernel tier: numba is not installed (pip install "
        "'repro[native]') and no C compiler (cc/gcc/clang) was found"
    )


# ---------------------------------------------------------------------- #
# The fused kernel (shared implementation)
#
# One function body serves the numba and python tiers: ``prange`` below
# is a module global bound to ``range`` and swapped for ``numba.prange``
# immediately before JIT compilation (numba resolves globals at compile
# time; ``numba.prange`` degrades to ``range`` under plain
# interpretation, so the python tier is unaffected by the swap).
# ---------------------------------------------------------------------- #

prange = range


def _fleet_steps_impl(
    n_steps, K, S, A, n_starts,
    q, qmax, qmax_action, momentum, target, target_count,
    arch_state, forwarded, prev_pair, prev_state, prev_q,
    prev_qmax, prev_qmax_action,
    s_start, s_action, s_policy, leap, dec, dec_mask,
    nxt, rew, term, starts, het,
    egreedy_cut, behavior_random, update_greedy, on_policy,
    rule_kind, qmax_mode,
    one_minus_alpha, alpha, alpha_gamma, beta, tau, one_minus_tau,
    shift, nearest, saturate, raw_min, raw_max, span, signed_fmt,
    sync_period, counts,
):
    """Advance every lane ``n_steps`` lock-step samples, fused.

    Bit-identical per lane to ``n_steps`` calls of
    :meth:`VectorizedFleetBackend.step` (asserted by the test suite).
    All arrays are flat ``int64``; all scalars integers.  ``counts``
    receives ``(exploits, explores, episodes)`` deltas.
    """
    SA = S * A
    a_pow2 = (A & (A - 1)) == 0
    st_pow2 = (n_starts & (n_starts - 1)) == 0
    ex_total = 0
    er_total = 0
    ep_total = 0
    for k in prange(K):
        sa_base = k * SA
        s_base = k * S
        if het:
            e_sa = k * SA
            e_s = k * S
            e_start = k * n_starts
        else:
            e_sa = 0
            e_s = 0
            e_start = 0
        st = arch_state[k]
        fw = forwarded[k]
        ss = s_start[k]
        sa_rng = s_action[k]
        sp = s_policy[k]
        p_state = prev_state[k]
        p_qa = prev_qmax_action[k]
        tc = target_count[k] if rule_kind == 2 else 0
        p_pair = prev_pair[k]
        p_q = prev_q[k]
        p_qm = prev_qmax[k]
        for _ in range(n_steps):
            # ---- stage 1: state + behaviour action ---- #
            restart = st < 0
            if restart:
                ss = (ss >> dec) ^ leap[ss & dec_mask]
                idx = (ss & (n_starts - 1)) if st_pow2 else (ss % n_starts)
                state = starts[e_start + idx]
            else:
                state = st
            if behavior_random:
                sa_rng = (sa_rng >> dec) ^ leap[sa_rng & dec_mask]
                action = (sa_rng & (A - 1)) if a_pow2 else (sa_rng % A)
            else:
                # SARSA: forwarded action, except at restarts where a
                # fresh e-greedy draw reads the *lagged* table view.
                if restart:
                    sp = (sp >> dec) ^ leap[sp & dec_mask]
                    if sp < egreedy_cut:
                        if state == p_state:
                            action = p_qa
                        else:
                            action = qmax_action[s_base + state]
                    else:
                        action = (sp & (A - 1)) if a_pow2 else (sp % A)
                else:
                    action = fw

            # ---- environment tables ---- #
            pair = state * A + action
            s_next = nxt[e_sa + pair]
            r = rew[e_sa + pair]
            terminal = term[e_s + s_next] != 0
            isa = sa_base + pair
            q_sa = q[isa]

            # ---- stage 2: update policy ---- #
            ins = s_base + s_next
            if update_greedy:
                a_next = qmax_action[ins]
                if rule_kind == 2:
                    # Select online, evaluate target.
                    q_next = target[sa_base + s_next * A + a_next]
                else:
                    q_next = qmax[ins]
                ex_total += 1
            else:
                sp = (sp >> dec) ^ leap[sp & dec_mask]
                if sp < egreedy_cut:
                    a_next = qmax_action[ins]
                    q_next = qmax[ins]
                    ex_total += 1
                else:
                    a_next = (sp & (A - 1)) if a_pow2 else (sp % A)
                    q_next = q[sa_base + s_next * A + a_next]
                    er_total += 1
            if terminal:
                q_next = 0

            # ---- stage 3: wide accumulate, one round, one clamp ---- #
            acc = one_minus_alpha * q_sa + alpha * r + alpha_gamma * q_next
            if rule_kind == 1:
                acc += beta * (q_sa - momentum[isa])
            if shift == 0:
                q_new = acc
            elif nearest:
                half = 1 << (shift - 1)
                if acc >= 0:
                    q_new = (acc + half) >> shift
                else:
                    q_new = -((-acc + half) >> shift)
            else:
                q_new = acc >> shift
            if saturate:
                if q_new < raw_min:
                    q_new = raw_min
                elif q_new > raw_max:
                    q_new = raw_max
            else:
                q_new = q_new & (span - 1)
                if signed_fmt and q_new > raw_max:
                    q_new = q_new - span

            # ---- stage 4: write-back + Qmax rule ---- #
            ist = s_base + state
            cur_val = qmax[ist]
            cur_act = qmax_action[ist]
            q[isa] = q_new
            if qmax_mode == 0:  # exact: first-max row scan
                row = sa_base + state * A
                best = 0
                best_val = q[row]
                for a in range(1, A):
                    v = q[row + a]
                    if v > best_val:
                        best_val = v
                        best = a
                qmax[ist] = best_val
                qmax_action[ist] = best
            else:
                upd = q_new > cur_val
                if qmax_mode == 2 and action == cur_act:
                    upd = True
                if upd:
                    qmax[ist] = q_new
                    qmax_action[ist] = action

            if rule_kind == 1:
                # Momentum: the pre-update Q(s, a) becomes the iterate.
                momentum[isa] = q_sa
            elif rule_kind == 2:
                # Lazy Polyak read-modify-write on the written pair.
                acc2 = one_minus_tau * target[isa] + tau * q_new
                if shift == 0:
                    t_new = acc2
                elif nearest:
                    half = 1 << (shift - 1)
                    if acc2 >= 0:
                        t_new = (acc2 + half) >> shift
                    else:
                        t_new = -((-acc2 + half) >> shift)
                else:
                    t_new = acc2 >> shift
                if saturate:
                    if t_new < raw_min:
                        t_new = raw_min
                    elif t_new > raw_max:
                        t_new = raw_max
                else:
                    t_new = t_new & (span - 1)
                    if signed_fmt and t_new > raw_max:
                        t_new = t_new - span
                target[isa] = t_new
                tc += 1
                if sync_period > 0 and tc >= sync_period:
                    for i in range(SA):
                        target[sa_base + i] = q[sa_base + i]
                    tc = 0

            # ---- lag latches + episode bookkeeping ---- #
            p_pair = pair
            p_state = state
            p_q = q_sa
            p_qm = cur_val
            p_qa = cur_act
            if terminal:
                ep_total += 1
                st = -1
                if on_policy:
                    fw = -1
            else:
                st = s_next
                if on_policy:
                    fw = a_next

        arch_state[k] = st
        forwarded[k] = fw
        s_start[k] = ss
        s_action[k] = sa_rng
        s_policy[k] = sp
        prev_pair[k] = p_pair
        prev_state[k] = p_state
        prev_q[k] = p_q
        prev_qmax[k] = p_qm
        prev_qmax_action[k] = p_qa
        if rule_kind == 2:
            target_count[k] = tc
    counts[0] += ex_total
    counts[1] += er_total
    counts[2] += ep_total


_NUMBA_KERNEL = None


def _get_numba_kernel():
    """JIT-compile the shared implementation with numba (cached)."""
    global _NUMBA_KERNEL, prange
    if _NUMBA_KERNEL is None:
        import numba

        prange = numba.prange
        _NUMBA_KERNEL = numba.njit(parallel=True, cache=True)(_fleet_steps_impl)
    return _NUMBA_KERNEL


# ---------------------------------------------------------------------- #
# cc tier: the same program as static C, compiled once per source hash
# ---------------------------------------------------------------------- #

_C_SOURCE = r"""
/* qtaccel fused fleet kernel -- generated-by-hand C mirror of
 * repro.backends.native._fleet_steps_impl.  Bit-identity with the
 * Python/numba tiers is asserted by the test suite; arithmetic right
 * shift on negative int64_t (gcc/clang behaviour) is assumed. */
#include <stdint.h>

void qtaccel_fleet_steps(
    int64_t n_steps, int64_t K, int64_t S, int64_t A, int64_t n_starts,
    int64_t *q, int64_t *qmax, int64_t *qmax_action,
    int64_t *momentum, int64_t *target, int64_t *target_count,
    int64_t *arch_state, int64_t *forwarded,
    int64_t *prev_pair, int64_t *prev_state, int64_t *prev_q,
    int64_t *prev_qmax, int64_t *prev_qmax_action,
    int64_t *s_start, int64_t *s_action, int64_t *s_policy,
    int64_t *leap, int64_t dec, int64_t dec_mask,
    int64_t *nxt, int64_t *rew, int64_t *term, int64_t *starts,
    int64_t het,
    int64_t egreedy_cut, int64_t behavior_random, int64_t update_greedy,
    int64_t on_policy, int64_t rule_kind, int64_t qmax_mode,
    int64_t one_minus_alpha, int64_t alpha, int64_t alpha_gamma,
    int64_t beta, int64_t tau, int64_t one_minus_tau,
    int64_t shift, int64_t nearest, int64_t saturate,
    int64_t raw_min, int64_t raw_max, int64_t span, int64_t signed_fmt,
    int64_t sync_period, int64_t *counts)
{
    const int64_t SA = S * A;
    const int a_pow2 = (A & (A - 1)) == 0;
    const int st_pow2 = (n_starts & (n_starts - 1)) == 0;
    int64_t ex_total = 0, er_total = 0, ep_total = 0;
    for (int64_t k = 0; k < K; k++) {
        const int64_t sa_base = k * SA;
        const int64_t s_base = k * S;
        const int64_t e_sa = het ? k * SA : 0;
        const int64_t e_s = het ? k * S : 0;
        const int64_t e_start = het ? k * n_starts : 0;
        int64_t st = arch_state[k];
        int64_t fw = forwarded[k];
        int64_t ss = s_start[k];
        int64_t sa_rng = s_action[k];
        int64_t sp = s_policy[k];
        int64_t p_state = prev_state[k];
        int64_t p_qa = prev_qmax_action[k];
        int64_t tc = (rule_kind == 2) ? target_count[k] : 0;
        int64_t p_pair = prev_pair[k];
        int64_t p_q = prev_q[k];
        int64_t p_qm = prev_qmax[k];
        for (int64_t n = 0; n < n_steps; n++) {
            /* stage 1: state + behaviour action */
            const int restart = st < 0;
            int64_t state, action;
            if (restart) {
                ss = (ss >> dec) ^ leap[ss & dec_mask];
                int64_t idx = st_pow2 ? (ss & (n_starts - 1)) : (ss % n_starts);
                state = starts[e_start + idx];
            } else {
                state = st;
            }
            if (behavior_random) {
                sa_rng = (sa_rng >> dec) ^ leap[sa_rng & dec_mask];
                action = a_pow2 ? (sa_rng & (A - 1)) : (sa_rng % A);
            } else if (restart) {
                sp = (sp >> dec) ^ leap[sp & dec_mask];
                if (sp < egreedy_cut) {
                    action = (state == p_state) ? p_qa
                                                : qmax_action[s_base + state];
                } else {
                    action = a_pow2 ? (sp & (A - 1)) : (sp % A);
                }
            } else {
                action = fw;
            }

            /* environment tables */
            const int64_t pair = state * A + action;
            const int64_t s_next = nxt[e_sa + pair];
            const int64_t r = rew[e_sa + pair];
            const int terminal = term[e_s + s_next] != 0;
            const int64_t isa = sa_base + pair;
            const int64_t q_sa = q[isa];

            /* stage 2: update policy */
            const int64_t ins = s_base + s_next;
            int64_t a_next, q_next;
            if (update_greedy) {
                a_next = qmax_action[ins];
                q_next = (rule_kind == 2)
                             ? target[sa_base + s_next * A + a_next]
                             : qmax[ins];
                ex_total++;
            } else {
                sp = (sp >> dec) ^ leap[sp & dec_mask];
                if (sp < egreedy_cut) {
                    a_next = qmax_action[ins];
                    q_next = qmax[ins];
                    ex_total++;
                } else {
                    a_next = a_pow2 ? (sp & (A - 1)) : (sp % A);
                    q_next = q[sa_base + s_next * A + a_next];
                    er_total++;
                }
            }
            if (terminal)
                q_next = 0;

            /* stage 3: wide accumulate, one round, one clamp */
            int64_t acc = one_minus_alpha * q_sa + alpha * r
                          + alpha_gamma * q_next;
            if (rule_kind == 1)
                acc += beta * (q_sa - momentum[isa]);
            int64_t q_new;
            if (shift == 0) {
                q_new = acc;
            } else if (nearest) {
                const int64_t half = (int64_t)1 << (shift - 1);
                q_new = (acc >= 0) ? ((acc + half) >> shift)
                                   : -((-acc + half) >> shift);
            } else {
                q_new = acc >> shift;
            }
            if (saturate) {
                if (q_new < raw_min) q_new = raw_min;
                else if (q_new > raw_max) q_new = raw_max;
            } else {
                q_new &= span - 1;
                if (signed_fmt && q_new > raw_max) q_new -= span;
            }

            /* stage 4: write-back + Qmax rule */
            const int64_t ist = s_base + state;
            const int64_t cur_val = qmax[ist];
            const int64_t cur_act = qmax_action[ist];
            q[isa] = q_new;
            if (qmax_mode == 0) { /* exact: first-max row scan */
                const int64_t row = sa_base + state * A;
                int64_t best = 0, best_val = q[row];
                for (int64_t a = 1; a < A; a++) {
                    if (q[row + a] > best_val) {
                        best_val = q[row + a];
                        best = a;
                    }
                }
                qmax[ist] = best_val;
                qmax_action[ist] = best;
            } else {
                int upd = q_new > cur_val;
                if (qmax_mode == 2 && action == cur_act) upd = 1;
                if (upd) {
                    qmax[ist] = q_new;
                    qmax_action[ist] = action;
                }
            }

            if (rule_kind == 1) {
                momentum[isa] = q_sa;
            } else if (rule_kind == 2) {
                const int64_t acc2 = one_minus_tau * target[isa]
                                     + tau * q_new;
                int64_t t_new;
                if (shift == 0) {
                    t_new = acc2;
                } else if (nearest) {
                    const int64_t half = (int64_t)1 << (shift - 1);
                    t_new = (acc2 >= 0) ? ((acc2 + half) >> shift)
                                        : -((-acc2 + half) >> shift);
                } else {
                    t_new = acc2 >> shift;
                }
                if (saturate) {
                    if (t_new < raw_min) t_new = raw_min;
                    else if (t_new > raw_max) t_new = raw_max;
                } else {
                    t_new &= span - 1;
                    if (signed_fmt && t_new > raw_max) t_new -= span;
                }
                target[isa] = t_new;
                tc++;
                if (sync_period > 0 && tc >= sync_period) {
                    for (int64_t i = 0; i < SA; i++)
                        target[sa_base + i] = q[sa_base + i];
                    tc = 0;
                }
            }

            /* lag latches + episode bookkeeping */
            p_pair = pair;
            p_state = state;
            p_q = q_sa;
            p_qm = cur_val;
            p_qa = cur_act;
            if (terminal) {
                ep_total++;
                st = -1;
                if (on_policy) fw = -1;
            } else {
                st = s_next;
                if (on_policy) fw = a_next;
            }
        }
        arch_state[k] = st;
        forwarded[k] = fw;
        s_start[k] = ss;
        s_action[k] = sa_rng;
        s_policy[k] = sp;
        prev_pair[k] = p_pair;
        prev_state[k] = p_state;
        prev_q[k] = p_q;
        prev_qmax[k] = p_qm;
        prev_qmax_action[k] = p_qa;
        if (rule_kind == 2) target_count[k] = tc;
    }
    counts[0] += ex_total;
    counts[1] += er_total;
    counts[2] += ep_total;
}
"""

_CC_KERNEL = None


def _cc_build_library() -> str:
    """Compile the C kernel into a source-hash-cached shared object."""
    compiler = _find_compiler()
    if compiler is None:  # pragma: no cover - guarded by tier resolution
        raise NativeBackendUnavailableError("no C compiler found for the cc tier")
    digest = hashlib.sha1(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"qtaccel-native-{os.getuid()}"
    )
    os.makedirs(cache_dir, exist_ok=True)
    lib_path = os.path.join(cache_dir, f"qtaccel_fleet_{digest}.so")
    if not os.path.exists(lib_path):
        src_path = os.path.join(cache_dir, f"qtaccel_fleet_{digest}.c")
        tmp_path = lib_path + f".tmp{os.getpid()}"
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        try:
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_path, src_path],
                check=True,
                capture_output=True,
                text=True,
            )
        except subprocess.CalledProcessError as exc:
            raise NativeBackendUnavailableError(
                f"cc tier compile failed with {compiler}:\n{exc.stderr}"
            ) from exc
        os.replace(tmp_path, lib_path)  # atomic vs concurrent builders
    return lib_path


def _get_cc_kernel():
    """The C kernel as a Python callable taking the impl's arguments."""
    global _CC_KERNEL
    if _CC_KERNEL is None:
        import ctypes

        lib = ctypes.CDLL(_cc_build_library())
        fn = lib.qtaccel_fleet_steps
        fn.restype = None
        i64p = ctypes.POINTER(ctypes.c_int64)

        def call(*args):
            fn(*[
                a.ctypes.data_as(i64p)
                if isinstance(a, np.ndarray)
                else ctypes.c_int64(int(a))
                for a in args
            ])

        _CC_KERNEL = call
    return _CC_KERNEL


def _resolve_kernel(kernel: str):
    """Resolve a tier request into ``(tier_name, callable)``."""
    tiers = native_kernel_tiers()
    if kernel == "auto":
        for tier in AUTO_TIERS:
            if tiers[tier]:
                kernel = tier
                break
        else:
            ok, detail = native_available()
            assert not ok
            raise NativeBackendUnavailableError(
                f"NativeFleetBackend: {detail}; the pure-Python oracle is "
                f"available explicitly via kernel='python' (or "
                f"{KERNEL_ENV_VAR}=python) but is slower than the "
                f"vectorized backend"
            )
    if kernel not in KERNEL_TIERS:
        raise ValueError(
            f"unknown native kernel tier {kernel!r}; choose one of "
            f"{('auto',) + KERNEL_TIERS}"
        )
    if not tiers[kernel]:
        raise NativeBackendUnavailableError(
            f"native kernel tier {kernel!r} is unavailable on this host "
            f"(numba missing: pip install 'repro[native]'; cc missing: "
            f"install a C compiler)"
        )
    if kernel == "numba":
        return "numba", _get_numba_kernel()
    if kernel == "cc":
        return "cc", _get_cc_kernel()
    return "python", _fleet_steps_impl


class NativeFleetBackend(VectorizedFleetBackend):
    """The vectorized fleet's lock-step program, fused into one
    compiled pass per chunk of steps (lane-outer, step-inner).

    Construction raises :class:`NativeBackendUnavailableError` when no
    compiled tier exists (``kernel="auto"``) and
    :class:`~repro.algorithms.UnsupportedRuleError` when the configured
    update rule declares no compiled lowering
    (:class:`~repro.algorithms.RuleKernel`).  Every inherited surface —
    checkpoints, lane ops, ``q_float`` — operates on the same arrays the
    kernel mutates, so mixing them with fused runs is bit-safe.
    """

    _TELEMETRY_NAME = "native"

    #: Steps fused per kernel invocation when a telemetry session is
    #: attached (the session is pulsed between chunks; without a session
    #: the whole run is one invocation).
    PULSE_CHUNK = 256

    def __init__(
        self,
        mdps: "DenseMdp | Sequence[DenseMdp]",
        config: QTAccelConfig,
        *,
        num_agents: int | None = None,
        salts: Sequence[int] | None = None,
        telemetry=None,
        kernel: str | None = None,
    ):
        super().__init__(
            mdps, config, num_agents=num_agents, salts=salts, telemetry=telemetry
        )
        rk = self.rule.kernel
        kinds = _KERNEL_ID_KINDS.get(rk.kernel_id)
        if kinds is None or self._rule_kind not in kinds:
            from ..algorithms import UnsupportedRuleError

            raise UnsupportedRuleError(
                f"update_rule={self.rule.name!r} (kind={self._rule_kind!r}) "
                f"declares kernel_id={rk.kernel_id}, which the native fused "
                f"kernel does not lower; use the vectorized backend or add "
                f"a RuleKernel lowering"
            )
        if kernel is None:
            kernel = os.environ.get(KERNEL_ENV_VAR) or "auto"
        self.kernel_tier, self._kernel_fn = _resolve_kernel(kernel)

        # Kernel-side constants and buffers.  The terminal flags become
        # an int64 copy once (env tables are immutable after build).
        self._counts = np.zeros(3, dtype=_I64)
        self._dummy_i64 = np.zeros(1, dtype=_I64)
        self._leap = self._bank_start._leap_table_np(DECIMATION)
        self._terminal_i64 = self._terminal_flat.astype(_I64)
        coefs = self._rule_coefs
        qf = config.q_format
        self._static_args = (
            int(self._egreedy_cut),
            int(config.behavior_policy == "random"),
            int(config.update_policy == "greedy"),
            int(config.is_on_policy),
            int(rk.kernel_id),
            _QMAX_MODES[config.qmax_mode],
            int(self._one_minus_alpha),
            int(self._alpha),
            int(self._alpha_gamma),
            int(coefs.beta),
            int(coefs.tau),
            int(coefs.one_minus_tau),
            int(config.coef_format.frac),
            int(qf.rounding == "nearest"),
            int(qf.overflow == "saturate"),
            int(qf.raw_min),
            int(qf.raw_max),
            1 << qf.wordlen,
            int(qf.signed),
            int(config.target_sync_period or 0),
        )

    def telemetry_snapshot(self) -> dict:
        snap = super().telemetry_snapshot()
        snap["kernel"] = self.kernel_tier
        return snap

    def _invoke(self, n_steps: int) -> None:
        """One fused kernel pass of ``n_steps`` per lane."""
        counts = self._counts
        counts[:] = 0
        self._kernel_fn(
            n_steps, self.K, self.S, self.A, self._n_starts,
            self._q_flat, self._qmax_flat, self._qmax_action_flat,
            self._momentum_flat if self.momentum is not None else self._dummy_i64,
            self._target_flat if self.target is not None else self._dummy_i64,
            self._target_count if self._target_count is not None else self._dummy_i64,
            self._arch_state, self._forwarded,
            self._prev_pair, self._prev_state, self._prev_q,
            self._prev_qmax, self._prev_qmax_action,
            self._bank_start.states, self._bank_action.states,
            self._bank_policy.states,
            self._leap, DECIMATION, (1 << DECIMATION) - 1,
            self._next_flat, self._rewards_flat, self._terminal_i64,
            self._starts_flat, int(self._env_sa_off is not None),
            *self._static_args,
            counts,
        )
        stats = self.stats
        stats.exploits += int(counts[0])
        stats.explores += int(counts[1])
        stats.episodes += int(counts[2])

    def step(self) -> None:
        if self.guard is not None:
            # The divergence guard observes every update vector, which
            # only the per-step numpy program produces; state is shared,
            # so falling back keeps the trajectory bit-identical.
            super().step()
            return
        self._invoke(1)

    def run(self, samples_per_agent: int):
        """Advance every lane by ``samples_per_agent`` fused updates."""
        if samples_per_agent < 0:
            raise ValueError("samples_per_agent must be non-negative")
        if self.guard is not None:
            return super().run(samples_per_agent)
        session = self._session
        if session is None:
            if samples_per_agent:
                self._invoke(samples_per_agent)
        else:
            remaining = samples_per_agent
            while remaining > 0:
                chunk = min(remaining, self.PULSE_CHUNK)
                self._invoke(chunk)
                session.pulse()
                remaining -= chunk
        self.stats.samples_per_agent += samples_per_agent
        return self.stats
