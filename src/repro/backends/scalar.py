"""Scalar fleet backend: a pure-Python loop of per-lane simulators.

This is the degenerate "no batching" design — one
:class:`~repro.core.functional.FunctionalSimulator` per lane, advanced
in a Python loop — i.e. exactly what the fleet paths did before the
vectorised backend existed, and the software analogue of Da Silva et
al.'s per-state-action baseline (:mod:`repro.baseline`).  It is kept
for two jobs:

* the **reference** the bit-identity tests and the ``fleet_throughput``
  bench compare the vectorised backend against;
* the fallback for workloads that need per-lane hooks the array program
  does not expose (per-lane tracing, heterogeneous guards).

Lane ``k`` uses ``PolicyDraws.from_config(config, salt=salts[k])``, so
both backends produce bit-identical per-lane trajectories.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import QTAccelConfig
from ..core.functional import FunctionalSimulator
from ..core.policies import PolicyDraws
from ..envs.base import DenseMdp
from ..fixedpoint import ops
from .base import BatchStats, normalize_fleet


class ScalarFleetBackend:
    """``n_lanes`` independent scalar simulators behind the fleet surface."""

    _TELEMETRY_NAME = "batch"

    def __init__(
        self,
        mdps: "DenseMdp | Sequence[DenseMdp]",
        config: QTAccelConfig,
        *,
        num_agents: int | None = None,
        salts: Sequence[int] | None = None,
        telemetry=None,
    ):
        spec = normalize_fleet(mdps, n_lanes=num_agents, salts=salts)
        self.mdps = list(spec.mdps)
        self._homogeneous = spec.homogeneous
        self.config = config
        self.K = spec.n_lanes
        self.S, self.A = spec.num_states, spec.num_actions
        self.sims = [
            FunctionalSimulator(
                mdp, config, draws=PolicyDraws.from_config(config, salt=int(salt))
            )
            for mdp, salt in zip(self.mdps, spec.salts)
        ]
        self.stats = BatchStats(agents=self.K)
        self._guard = None

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        self._session = session
        if session is not None:
            session.attach(self, self._TELEMETRY_NAME)

    @property
    def n_lanes(self) -> int:
        return self.K

    # ------------------------------------------------------------------ #
    # Guard pass-through (one DivergenceGuard observing every lane)
    # ------------------------------------------------------------------ #

    @property
    def guard(self):
        return self._guard

    @guard.setter
    def guard(self, value) -> None:
        self._guard = value
        for sim in self.sims:
            sim.guard = value

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _sync_stats(self) -> None:
        self.stats.episodes = sum(s.stats.episodes for s in self.sims)
        self.stats.exploits = sum(s.stats.exploits for s in self.sims)
        self.stats.explores = sum(s.stats.explores for s in self.sims)

    def step(self) -> None:
        """One lock-step sample on every lane."""
        for sim in self.sims:
            sim.run(1)
        self.stats.samples_per_agent += 1
        self._sync_stats()

    def run(self, samples_per_agent: int) -> BatchStats:
        """Advance every lane by ``samples_per_agent`` updates.

        With no telemetry session the lanes run in per-lane chunks (the
        classic scalar batch loop); under a session the backend steps in
        lock-step and pulses once per step, mirroring the vectorised
        backend's live-export cadence.
        """
        if samples_per_agent < 0:
            raise ValueError("samples_per_agent must be non-negative")
        session = self._session
        if session is None:
            for sim in self.sims:
                sim.run(samples_per_agent)
            self.stats.samples_per_agent += samples_per_agent
            self._sync_stats()
        else:
            for _ in range(samples_per_agent):
                self.step()
                session.pulse()
        return self.stats

    def telemetry_snapshot(self) -> dict:
        """Fleet-level counters for a telemetry profile."""
        return {
            "agents": self.K,
            "states": self.S,
            "actions": self.A,
            "samples_per_agent": self.stats.samples_per_agent,
            "total_samples": self.stats.samples,
            "episodes": self.stats.episodes,
            "exploits": self.stats.exploits,
            "explores": self.stats.explores,
        }

    # ------------------------------------------------------------------ #
    # Lane leasing (the repro.serve surface): straight delegation to the
    # per-lane simulators, which are already the reference semantics.
    # ------------------------------------------------------------------ #

    def reset_lane(self, k: int, salt: int) -> None:
        """Replace lane ``k`` with a pristine simulator seeded by ``salt``."""
        if not 0 <= k < self.K:
            raise IndexError(f"lane {k} out of range 0..{self.K - 1}")
        sim = FunctionalSimulator(
            self.mdps[k],
            self.config,
            draws=PolicyDraws.from_config(self.config, salt=int(salt)),
        )
        sim.guard = self._guard
        self.sims[k] = sim
        self._sync_stats()

    def apply_transition(
        self,
        k: int,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
    ) -> int:
        """Apply one external transition to lane ``k`` (see
        :meth:`FunctionalSimulator.apply_transition
        <repro.core.functional.FunctionalSimulator.apply_transition>`)."""
        q_new = self.sims[k].apply_transition(state, action, reward, next_state, terminal)
        self._sync_stats()
        return q_new

    def query_action(self, k: int, state: int, explore: bool = True) -> int:
        """Recommend an action for lane ``k`` at ``state`` (no update)."""
        return self.sims[k].query_action(state, explore)

    # ------------------------------------------------------------------ #
    # Stacked views (the vectorised backend's attribute vocabulary)
    # ------------------------------------------------------------------ #

    @property
    def q(self) -> np.ndarray:
        """Stacked raw Q tables, ``(n_lanes, S*A)`` (a fresh copy)."""
        return np.stack([s.tables.q.data.copy() for s in self.sims])

    @property
    def qmax(self) -> np.ndarray:
        """Stacked raw Qmax rows, ``(n_lanes, S)`` (a fresh copy)."""
        return np.stack([s.tables.qmax.data.copy() for s in self.sims])

    @property
    def qmax_action(self) -> np.ndarray:
        """Stacked cached argmax rows, ``(n_lanes, S)`` (a fresh copy)."""
        return np.stack([s.tables.qmax_action.data.copy() for s in self.sims])

    def _stacked_extra(self, name: str) -> "np.ndarray | None":
        if name not in self.config.rule.extra_tables:
            return None
        return np.stack(
            [s.tables.extra_rams[name].data.copy() for s in self.sims]
        )

    @property
    def momentum(self) -> "np.ndarray | None":
        """Stacked momentum tables, ``(n_lanes, S*A)``, or ``None`` when
        the configured rule allocates none (matches the vectorised
        backend's attribute vocabulary)."""
        return self._stacked_extra("momentum")

    @property
    def target(self) -> "np.ndarray | None":
        """Stacked target tables, ``(n_lanes, S*A)``, or ``None``."""
        return self._stacked_extra("target")

    # ------------------------------------------------------------------ #
    # Checkpointing (see repro.robustness.checkpoint)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Per-lane checkpoints plus the aggregate stats."""
        return {
            "lanes": [sim.state_dict() for sim in self.sims],
            "stats": vars(self.stats).copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        lanes = state["lanes"]
        if len(lanes) != len(self.sims):
            raise ValueError(
                f"checkpoint has {len(lanes)} lanes, fleet has {len(self.sims)}"
            )
        for sim, lane in zip(self.sims, lanes):
            sim.load_state_dict(lane)
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)

    def lane_state(self, k: int, state: dict | None = None) -> dict:
        """Lane ``k``'s checkpoint (default: freshly taken)."""
        if state is None:
            return self.sims[k].state_dict()
        return state["lanes"][k]

    def load_lane_state(self, k: int, lane: dict) -> None:
        """Restore one lane, leaving the others untouched."""
        self.sims[k].load_state_dict(lane)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def q_float(self, agent: int) -> np.ndarray:
        """Lane ``agent``'s Q table as floats, ``(S, A)``."""
        return self.sims[agent].q_float()

    def q_float_all(self) -> np.ndarray:
        """All Q tables, ``(n_lanes, S, A)``."""
        return ops.to_float_array(self.q.reshape(self.K, self.S, self.A),
                                  self.config.q_format)
