"""Sharded multi-core fleet backend: process-parallel lane shards.

The Fig. 9 deployment scales QTAccel by *replicating* independent
pipelines; one Python process caps the software analogue at a single
core no matter how wide the numpy array program gets.  This backend
breaks that ceiling: ``n_lanes`` is partitioned into ``num_workers``
contiguous shards, each shard is a full
:class:`~repro.backends.vectorized.VectorizedFleetBackend` running in
its own ``multiprocessing`` worker, and every per-lane state array —
Q/Qmax tables, the architectural latches, the three LFSR banks — lives
in one ``multiprocessing.shared_memory`` block that both sides map as
numpy views.  Checkpoints, telemetry reads and result gathers on the
parent are therefore zero-copy: the parent *is* looking at the
workers' live state (only ever read between epochs, when workers are
idle).

Bit-identity is preserved by construction: per-lane salts are a pure
function of the lane index (``normalize_fleet`` defaults them to
``range(n_lanes)``), and a shard's worker builds its backend with
exactly the salt slice its lanes would have had in a single-process
fleet — so any worker count and any shard split produces the same
per-lane trajectories as ``VectorizedFleetBackend`` (asserted by the
test suite across 1/2/odd splits and workers > lanes).

Execution proceeds in *sync epochs* of ``epoch`` lock-step samples:
the parent broadcasts one ``run`` command per worker, collects per-
worker stat deltas, refreshes the aggregate :class:`BatchStats`, takes
a :class:`~repro.robustness.checkpoint.CheckpointStore` snapshot every
``checkpoint_interval`` epochs, and pulses the ambient telemetry
session.  A worker that dies mid-epoch (crash, OOM-kill,
:meth:`ShardedFleetBackend.kill_worker` in the CI smoke) is recovered
by the rollback-retry-quarantine discipline of
:mod:`repro.robustness`: its shard's slice of shared memory is
restored from the last checkpoint, a fresh worker adopts the restored
state and replays forward to the fleet's current epoch — bit-identical
thanks to determinism — and a shard that keeps dying is quarantined so
the rest of the fleet continues.  The existing
:class:`~repro.robustness.checkpoint.FleetSupervisor` composes on top
unchanged (via :class:`~repro.robustness.checkpoint.BatchLanes`),
because the parent exposes the same lane-oriented surface as the
single-process backends.

Observability: the serving layer may assign ``obs_tracer`` /
``obs_recorder`` (:mod:`repro.obs`) after construction.  With a tracer
set, pipe commands grow an optional trailing trace-context element
(``("run", n, ctx)``) that the worker uses to parent a ``shard.run``
span built in *its* process, shipped back in the reply and adopted
into the parent's ring — so a merged timeline shows the worker-side
replay of a recovery.  Workers that receive the short command forms
behave exactly as before; both sides tolerate either length.
"""

from __future__ import annotations

import atexit
import functools
import multiprocessing as mp
import os
import signal as _signal
import time
import weakref
from contextlib import nullcontext
from multiprocessing import shared_memory
from types import SimpleNamespace
from typing import Sequence

import numpy as np

from ..core.config import QTAccelConfig
from ..core.policies import egreedy_cut
from ..envs.base import DenseMdp
from .base import BatchStats, normalize_fleet
from .vectorized import VectorizedFleetBackend

_I64 = np.int64

#: Reusable no-op context for the untraced path.
_NOSPAN = nullcontext()

#: Samples a worker runs between heartbeat bumps — the hang watchdog's
#: progress resolution (an epoch of 256 gets 4 bumps).
_HEARTBEAT_CHUNK = 64

#: Every live (not yet closed) backend, for the atexit/signal sweeps.
_LIVE_BACKENDS: "weakref.WeakSet" = weakref.WeakSet()

#: Signals :func:`install_signal_cleanup` has already hooked.
_HOOKED_SIGNALS: dict[int, object] = {}


def _atexit_close(ref) -> None:
    """Per-instance atexit callback (weakref: the hook must not keep a
    dead backend's shared-memory block alive until interpreter exit)."""
    backend = ref()
    if backend is not None:
        try:
            backend.close()
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass


def close_all_backends() -> None:
    """Close every live :class:`ShardedFleetBackend` (best-effort).

    Idempotent and safe from atexit or a signal handler: ``close`` stops
    workers, drops the shared-memory views and unlinks the block.
    """
    for backend in list(_LIVE_BACKENDS):
        try:
            backend.close()
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass


def install_signal_cleanup(signals: Sequence[int] = (_signal.SIGTERM, _signal.SIGINT)) -> None:
    """Hook ``signals`` so live backends are closed before the process dies.

    A SIGTERM with the default disposition kills the interpreter without
    running ``atexit`` — orphaning worker processes and leaking the
    ``/dev/shm`` block until reboot.  The installed handler closes every
    live backend, restores the previous (or default) disposition and
    re-raises the signal, so the exit status still reports the signal
    death.  Long-running entry points (``python -m repro.serve``, the CI
    smokes) call this once at startup; calling it twice is a no-op.
    Main-thread only (CPython restricts ``signal.signal``).
    """
    for sig in signals:
        if sig in _HOOKED_SIGNALS:
            continue

        def _handler(signum, frame):
            close_all_backends()
            previous = _HOOKED_SIGNALS.get(signum)
            if callable(previous):
                previous(signum, frame)
                return
            _signal.signal(signum, previous if previous is not None else _signal.SIG_DFL)
            os.kill(os.getpid(), signum)

        _HOOKED_SIGNALS[sig] = _signal.signal(sig, _handler)


class _ShmLayout:
    """Byte layout of the shared lane-state block.

    Every :class:`VectorizedFleetBackend` state array (keys matching its
    ``_STATE_ARRAYS`` checkpoint vocabulary) plus the three LFSR banks,
    all int64, concatenated; worker ``w`` touches only rows
    ``[lo_w, hi_w)`` of each field, so shards never alias each other.

    The extra ``heartbeat`` field is liveness plumbing, not lane state
    (it is deliberately absent from ``_STATE_ARRAYS``, so checkpoints
    ignore it): worker ``w`` bumps slot ``lo_w`` as it makes progress
    through an epoch, and the parent's hang watchdog reads it to tell
    a *slow* worker (heartbeat advancing) from a *stuck* one (SIGSTOP,
    livelock — heartbeat frozen).
    """

    def __init__(self, k: int, s: int, a: int, config: QTAccelConfig | None = None):
        fields: list[tuple[str, tuple]] = [
            ("q", (k, s * a)),
            ("qmax", (k, s)),
            ("qmax_action", (k, s)),
            ("arch_state", (k,)),
            ("forwarded", (k,)),
            ("prev_pair", (k,)),
            ("prev_state", (k,)),
            ("prev_q", (k,)),
            ("prev_qmax", (k,)),
            ("prev_qmax_action", (k,)),
        ]
        # Update-rule extra lane state (momentum iterate / Polyak target
        # table + sync counter): same keys as the backend's per-instance
        # _STATE_ARRAYS, inserted before the LFSR/heartbeat plumbing so
        # rule-free layouts are byte-for-byte what they always were.
        if config is not None:
            kind = config.rule.kind
            if kind == "momentum":
                fields.append(("momentum", (k, s * a)))
            elif kind == "target":
                fields.append(("target", (k, s * a)))
                fields.append(("target_count", (k,)))
        fields += [
            ("lfsr_start", (k,)),
            ("lfsr_action", (k,)),
            ("lfsr_policy", (k,)),
            ("heartbeat", (k,)),
        ]
        self.fields = tuple(fields)
        self.offsets: dict[str, int] = {}
        off = 0
        for key, shape in self.fields:
            self.offsets[key] = off
            off += int(np.prod(shape))
        self.nbytes = off * 8

    def views(self, buf) -> dict[str, np.ndarray]:
        """Numpy views of every field over a shared-memory buffer."""
        return {
            key: np.ndarray(
                shape, dtype=np.int64, buffer=buf, offset=self.offsets[key] * 8
            )
            for key, shape in self.fields
        }


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    The parent owns the block's lifetime (it unlinks on close).
    Python 3.13+ has ``track=False`` for exactly this.  On older
    versions the attach re-registers the name with the resource
    tracker — harmless, because POSIX ``multiprocessing`` children
    share the parent's tracker process and its cache is a set, so the
    parent's single unlink-time unregister still balances it.  (Do
    *not* unregister here: that would race the parent's unregister on
    the shared tracker.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _shard_worker_main(conn, shm_name: str, dims: tuple, spec: dict) -> None:
    """Entry point of one shard worker process.

    Builds the shard's :class:`VectorizedFleetBackend`, rebinds every
    state array (and the LFSR bank registers) onto the shared-memory
    rows ``[lo, hi)`` — copying its freshly seeded state in unless
    ``spec["adopt"]`` says the block already holds restored state —
    then serves ``("run", n)`` / ``("ping",)`` / ``("stop",)`` commands
    over the pipe, answering each run with the stat deltas it retired.

    A ``run`` command may carry an optional trailing trace context
    (the wire ``{"trace_id", "span_id"}`` dict); the worker then times
    the run as a ``shard.run`` span dict in *this* process and ships it
    back as an optional trailing reply element for the parent to adopt.
    """
    from ..obs.tracing import _reseed_ids, ctx_from_wire, new_id

    _reseed_ids()  # fresh span-id prefix for this process
    proc_label = f"shard{spec.get('worker', '?')}"
    shm = _attach_shm(shm_name)
    backend = None
    views = None
    try:
        try:
            k, s, a = dims
            views = _ShmLayout(k, s, a, spec["config"]).views(shm.buf)
            backend = VectorizedFleetBackend(
                spec["mdps"],
                spec["config"],
                num_agents=spec["num_agents"],
                salts=spec["salts"],
            )
            lo, hi = spec["lo"], spec["hi"]
            adopt = spec["adopt"]
            # The *instance* tuple: includes the update rule's extra
            # tables (momentum/target), which must ride in shared memory
            # like every other lane-state array.
            for attr, key in backend._STATE_ARRAYS:
                view = views[key][lo:hi]
                if not adopt:
                    view[...] = getattr(backend, attr)
                setattr(backend, attr, view)
            for key, bank in (
                ("lfsr_start", backend._bank_start),
                ("lfsr_action", backend._bank_action),
                ("lfsr_policy", backend._bank_policy),
            ):
                view = views[key][lo:hi]
                if not adopt:
                    view[...] = bank.states
                bank.states = view
            backend._rebind_flat_views()
        except Exception as exc:  # startup failure: report, don't hang
            conn.send(("error", repr(exc)))
            return
        # Heartbeat slot: bumped as the worker makes progress so the
        # parent can distinguish slow from stuck (see _ShmLayout).
        hb = views["heartbeat"]
        hb[lo] += 1
        conn.send(("ready", None))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "run":
                if spec["debug_fail"]:
                    os._exit(17)  # simulated crash (tests/CI smoke)
                ctx = ctx_from_wire(msg[2]) if len(msg) > 2 else None
                t0 = time.monotonic()
                st = backend.stats
                before = (st.episodes, st.exploits, st.explores)
                # Run in sub-chunks, bumping the heartbeat between them.
                # run(a); run(b) is bit-identical to run(a+b) (the epoch
                # loop above already relies on this), so chunking changes
                # only the watchdog's resolution, never the trajectories.
                n, done = msg[1], 0
                while done < n:
                    chunk = min(_HEARTBEAT_CHUNK, n - done)
                    backend.run(chunk)
                    done += chunk
                    hb[lo] += 1
                spans = None
                if ctx is not None:
                    spans = [
                        {
                            "name": "shard.run",
                            "trace_id": ctx.trace_id,
                            "span_id": new_id(),
                            "parent_id": ctx.span_id,
                            "proc": proc_label,
                            "start": t0,
                            "end": time.monotonic(),
                            "attrs": {"samples": n},
                        }
                    ]
                conn.send(
                    (
                        "done",
                        {
                            "episodes": st.episodes - before[0],
                            "exploits": st.exploits - before[1],
                            "explores": st.explores - before[2],
                        },
                        spans,
                    )
                )
            elif cmd == "ping":
                hb[lo] += 1
                conn.send(("pong", None))
            elif cmd == "stop":
                conn.send(("bye", None))
                return
            else:
                conn.send(("error", f"unknown command {cmd!r}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        backend = None
        views = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views already dropped
            pass


class ShardedFleetBackend:
    """``n_lanes`` learners sharded over ``num_workers`` processes,
    bit-identical per lane to :class:`VectorizedFleetBackend`.

    The parent holds the shared-memory views under the same attribute
    names as the single-process backends (``q``/``qmax``/... shaped
    ``(K, S*A)`` / ``(K, S)``), so checkpoints, per-lane rollback,
    ``q_float_all`` and the :class:`~repro.robustness.checkpoint.BatchLanes`
    adapter all work unchanged and without copying.

    Construction/teardown is explicit: workers and the shared block are
    released by :meth:`close` (also a context manager).  ``epoch`` sets
    the sync-barrier granularity; ``checkpoint_interval`` (in epochs;
    0 disables) bounds how far a crashed shard must replay.
    """

    #: Name this engine attaches under in a telemetry session profile.
    _TELEMETRY_NAME = "sharded"

    #: Rule-free default; construction replaces it with the instance
    #: tuple (base + the configured rule's extra tables).
    _STATE_ARRAYS = VectorizedFleetBackend._BASE_STATE_ARRAYS

    def __init__(
        self,
        mdps: "DenseMdp | Sequence[DenseMdp]",
        config: QTAccelConfig,
        *,
        num_agents: int | None = None,
        salts: Sequence[int] | None = None,
        telemetry=None,
        num_workers: int | None = None,
        epoch: int = 256,
        checkpoint_interval: int = 1,
        store=None,
        max_worker_restarts: int = 2,
        mp_context: str = "spawn",
        debug_fail_workers: Sequence[int] = (),
        ping_timeout_s: float = 5.0,
        hang_timeout_s: float = 10.0,
        stop_timeout_s: float = 5.0,
    ):
        spec = normalize_fleet(mdps, n_lanes=num_agents, salts=salts)
        self.mdps = list(spec.mdps)
        self._homogeneous = spec.homogeneous
        k = spec.n_lanes
        self.config = config
        self.K = k
        self.S, self.A = spec.num_states, spec.num_actions
        self._salts = [int(x) for x in spec.salts]

        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be non-negative")
        if num_workers is None:
            num_workers = max(1, min(k, os.cpu_count() or 1))
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        #: Workers never outnumber lanes (a shard must be non-empty).
        self.num_workers = min(num_workers, k)
        self.epoch = epoch
        self.checkpoint_interval = checkpoint_interval
        self.max_worker_restarts = max_worker_restarts
        self._bounds = [
            (i * k) // self.num_workers for i in range(self.num_workers + 1)
        ]
        self._debug_fail = set(debug_fail_workers)
        self._ctx = mp.get_context(mp_context)
        if ping_timeout_s <= 0 or hang_timeout_s <= 0 or stop_timeout_s <= 0:
            raise ValueError("worker timeouts must be positive")
        #: Ping-probe patience of :meth:`check_workers`.
        self.ping_timeout_s = ping_timeout_s
        #: Mid-epoch watchdog: a worker whose heartbeat makes no
        #: progress for this long while a result is owed is declared
        #: hung and escalated to kill + checkpoint-replay recovery.
        self.hang_timeout_s = hang_timeout_s
        #: Patience per worker during :meth:`close` before SIGKILL.
        self.stop_timeout_s = stop_timeout_s

        # Update-rule resolution (same per-instance _STATE_ARRAYS
        # protocol as the vectorized backend: base pairs + the rule's
        # extra tables, so checkpoints/restores/teardown all carry them).
        self._bind_rule(config)
        extra_state: list[tuple[str, str]] = []
        self.momentum = None
        self.target = None
        self._target_count = None
        if self._rule_kind == "momentum":
            extra_state.append(("momentum", "momentum"))
        elif self._rule_kind == "target":
            extra_state.append(("target", "target"))
            extra_state.append(("_target_count", "target_count"))
        self._STATE_ARRAYS = (
            VectorizedFleetBackend._BASE_STATE_ARRAYS + tuple(extra_state)
        )

        # The shared lane-state block, mapped under the standard fleet
        # attribute names so the whole checkpoint surface is inherited.
        self._layout = _ShmLayout(k, self.S, self.A, config)
        self._shm = shared_memory.SharedMemory(create=True, size=self._layout.nbytes)
        self._closed = False
        views = self._layout.views(self._shm.buf)
        self._views = views
        for attr, key in self._STATE_ARRAYS:
            setattr(self, attr, views[key])
        self._bank_start = SimpleNamespace(states=views["lfsr_start"])
        self._bank_action = SimpleNamespace(states=views["lfsr_action"])
        self._bank_policy = SimpleNamespace(states=views["lfsr_policy"])

        # Config scalars the borrowed per-lane serve surface needs
        # (identical derivations to VectorizedFleetBackend.__init__).
        self._egreedy_cut = _I64(egreedy_cut(config.epsilon, config.lfsr_width))
        (self._alpha, _, self._one_minus_alpha, self._alpha_gamma) = config.coefficients()

        # Leak hygiene: close on interpreter exit even if the owner never
        # calls close() (the signal path is opt-in: install_signal_cleanup).
        self._atexit_cb = functools.partial(_atexit_close, weakref.ref(self))
        atexit.register(self._atexit_cb)
        _LIVE_BACKENDS.add(self)

        self.stats = BatchStats(agents=k)
        self._stats_base = {"episodes": 0, "exploits": 0, "explores": 0}
        self._worker_cum = [[0, 0, 0] for _ in range(self.num_workers)]
        #: Recovery bookkeeping (see ``_recover_worker``).
        self.restarts = 0
        #: Workers the watchdog declared hung (SIGSTOP, livelock) and
        #: escalated to the kill -> checkpoint-replay recovery path.
        self.hangs = 0
        self.quarantined_workers: set[int] = set()
        #: Optional observability wiring, assigned by the serving layer
        #: after construction: a :class:`repro.obs.tracing.Tracer` for
        #: ``shard.recover`` spans (plus worker-side ``shard.run`` spans
        #: adopted from replies) and a
        #: :class:`repro.obs.recorder.FlightRecorder` for structured
        #: worker lifecycle events (hang/dead/restart/quarantine).
        self.obs_tracer = None
        self.obs_recorder = None

        self._procs: list = [None] * self.num_workers
        self._conns: list = [None] * self.num_workers
        try:
            for w in range(self.num_workers):
                self._spawn_worker(w, adopt=False)
            for w in range(self.num_workers):
                self._await_ready(w)
        except BaseException:
            self.close()
            raise

        if store is None:
            from ..robustness.checkpoint import CheckpointStore

            store = CheckpointStore(capacity=4)
        self.store = store
        self._last_ckpt: dict | None = None
        self._epochs_done = 0
        if self.checkpoint_interval:
            self._take_checkpoint()

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        #: Session pulsed once per sync epoch for live-metrics export.
        self._session = session
        if session is not None:
            session.attach(self, self._TELEMETRY_NAME)

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #

    def _worker_spec(self, w: int, *, adopt: bool) -> dict:
        lo, hi = self._bounds[w], self._bounds[w + 1]
        if self._homogeneous:
            worlds: object = self.mdps[0]
            num_agents = hi - lo
        else:
            worlds = self.mdps[lo:hi]
            num_agents = None
        return {
            "lo": lo,
            "hi": hi,
            "worker": w,
            "mdps": worlds,
            "num_agents": num_agents,
            "config": self.config,
            "salts": self._salts[lo:hi],
            "adopt": adopt,
            "debug_fail": w in self._debug_fail,
        }

    def _spawn_worker(self, w: int, *, adopt: bool) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                self._shm.name,
                (self.K, self.S, self.A),
                self._worker_spec(w, adopt=adopt),
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[w] = proc
        self._conns[w] = parent_conn

    def _await_ready(self, w: int) -> None:
        try:
            msg = self._conns[w].recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(f"shard worker {w} died during startup") from exc
        if msg[0] != "ready":
            raise RuntimeError(f"shard worker {w} failed to start: {msg[1]}")

    # -- observability plumbing (no-ops until obs_tracer/obs_recorder
    #    are assigned by the serving layer) ---------------------------- #

    def _wire_ctx(self):
        """The ambient trace context as a pipe-command trailing element."""
        if self.obs_tracer is None:
            return None
        from ..obs.tracing import Tracer, ctx_to_wire

        return ctx_to_wire(Tracer.current_context())

    def _obs_span(self, name: str, **attrs):
        if self.obs_tracer is None:
            return _NOSPAN
        return self.obs_tracer.span(name, attrs=attrs or None)

    def _obs_event(self, kind: str, **fields) -> None:
        if self.obs_recorder is not None:
            try:
                self.obs_recorder.record_event(kind, **fields)
            except Exception:  # pragma: no cover - recorder is best-effort
                pass

    def _adopt_spans(self, msg) -> None:
        """File worker-side spans riding as a reply's trailing element."""
        if self.obs_tracer is not None and len(msg) > 2 and msg[2]:
            self.obs_tracer.adopt(msg[2])

    def _reap_worker(self, w: int) -> None:
        proc = self._procs[w]
        if proc is not None:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=5.0)
            self._procs[w] = None
        conn = self._conns[w]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            self._conns[w] = None

    def kill_worker(self, w: int) -> None:
        """Hard-kill shard worker ``w`` (SIGKILL) — the fault-injection
        hook used by the recovery tests and the CI crash smoke.  The
        next epoch detects the dead pipe and triggers recovery.
        SIGKILL also terminates a SIGSTOP'd (hung) worker, so this is
        the watchdog's escalation primitive too."""
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=10.0)

    def hang_worker(self, w: int) -> None:
        """SIGSTOP shard worker ``w`` — the *hang* fault-injection hook.

        The worker stays alive (``proc.is_alive()`` is True, its pipe
        accepts writes) but makes no progress: exactly the failure mode
        ``check_workers``'s ping timeout and the mid-epoch heartbeat
        watchdog exist to catch.  Undo with :meth:`resume_worker`.
        """
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, _signal.SIGSTOP)

    def resume_worker(self, w: int) -> None:
        """SIGCONT a worker previously stopped by :meth:`hang_worker`."""
        proc = self._procs[w]
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, _signal.SIGCONT)

    def check_workers(self, timeout: float | None = None) -> list[tuple[int, int]]:
        """Health-probe every worker; recover dead *and hung* ones.

        The epoch loop only notices a failed worker when it next runs an
        epoch; a serving deployment (:mod:`repro.serve`) may go long
        stretches without one, so this probes each non-quarantined
        worker with a ping and routes failures through the same
        rollback-retry-quarantine path as a mid-epoch death (replaying
        zero run-samples — the shard's slice is restored to the last
        checkpoint either way).  A worker that is alive but does not
        answer the ping within ``timeout`` (default ``ping_timeout_s``)
        is *hung* — SIGSTOP'd, livelocked — and is SIGKILL'd first
        (SIGKILL terminates stopped processes) so recovery is bounded.
        Returns the ``(lo, hi)`` lane ranges that were rolled back, so
        a caller holding per-lane state built *after* that checkpoint
        (the serve session manager's journals) knows exactly which
        lanes to re-restore and replay.
        """
        if timeout is None:
            timeout = self.ping_timeout_s
        recovered: list[tuple[int, int]] = []
        for w in range(self.num_workers):
            if w in self.quarantined_workers:
                continue
            proc, conn = self._procs[w], self._conns[w]
            dead = proc is None or not proc.is_alive()
            if not dead:
                try:
                    conn.send(("ping",))
                    if conn.poll(timeout):
                        dead = conn.recv()[0] != "pong"
                    else:  # hung: alive but unresponsive — escalate
                        self.hangs += 1
                        self._obs_event("worker_hang", worker=w)
                        self.kill_worker(w)
                        dead = True
                except (BrokenPipeError, EOFError, OSError):
                    dead = True
            if dead:
                lo, hi = self._bounds[w], self._bounds[w + 1]
                self._obs_event("worker_dead", worker=w, lanes=[lo, hi])
                self._recover_worker(w, 0)
                self._refresh_stats()
                recovered.append((lo, hi))
        return recovered

    # ------------------------------------------------------------------ #
    # Execution: sync epochs + recovery
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """One lock-step sample on every lane (a one-sample epoch)."""
        self.run(1)

    def run(self, samples_per_agent: int) -> BatchStats:
        """Advance every lane by ``samples_per_agent`` updates, in sync
        epochs of at most ``self.epoch`` samples."""
        if samples_per_agent < 0:
            raise ValueError("samples_per_agent must be non-negative")
        session = self._session
        done = 0
        while done < samples_per_agent:
            n = min(self.epoch, samples_per_agent - done)
            self._run_epoch(n)
            self.stats.samples_per_agent += n
            done += n
            self._epochs_done += 1
            if (
                self.checkpoint_interval
                and self._epochs_done % self.checkpoint_interval == 0
            ):
                self._take_checkpoint()
            if session is not None:
                session.pulse()
        return self.stats

    def _await_result(self, w: int, timeout: float | None = None) -> bool:
        """Wait for worker ``w``'s next message, watching its heartbeat.

        Returns True once a message is ready to ``recv``.  Returns
        False — after SIGKILLing the worker, so the follow-up recovery
        is bounded — when the worker owes a result but its heartbeat
        makes no progress for ``timeout`` (default ``hang_timeout_s``)
        seconds: a *slow* worker keeps bumping its heartbeat between
        sub-chunks and is waited on indefinitely; a *stuck* one
        (SIGSTOP, livelock) cannot.
        """
        if timeout is None:
            timeout = self.hang_timeout_s
        conn = self._conns[w]
        hb = self._views["heartbeat"]
        lo = self._bounds[w]
        last_hb = int(hb[lo])
        stalled_since = time.monotonic()
        while True:
            try:
                if conn.poll(min(0.05, timeout)):
                    return True
            except (BrokenPipeError, OSError):
                return True  # dead pipe: let the recv raise and recover
            now = time.monotonic()
            beat = int(hb[lo])
            if beat != last_hb:
                last_hb = beat
                stalled_since = now
            elif now - stalled_since >= timeout:
                self.hangs += 1
                self._obs_event("worker_hang", worker=w)
                self.kill_worker(w)
                return False

    def _run_epoch(self, n: int) -> None:
        failed: list[int] = []
        sent: list[int] = []
        ctx = self._wire_ctx()
        cmd = ("run", n) if ctx is None else ("run", n, ctx)
        for w in range(self.num_workers):
            if w in self.quarantined_workers:
                continue
            try:
                self._conns[w].send(cmd)
                sent.append(w)
            except (BrokenPipeError, OSError):
                failed.append(w)
        for w in sent:
            try:
                if not self._await_result(w):
                    failed.append(w)  # hung mid-epoch; worker killed
                    continue
                msg = self._conns[w].recv()
                tag, delta = msg[0], msg[1]
            except (EOFError, OSError):
                failed.append(w)
                continue
            if tag != "done":
                failed.append(w)
                continue
            self._adopt_spans(msg)
            cum = self._worker_cum[w]
            cum[0] += delta["episodes"]
            cum[1] += delta["exploits"]
            cum[2] += delta["explores"]
        for w in failed:
            self._recover_worker(w, n)
        self._refresh_stats()

    def _recover_worker(self, w: int, n: int) -> None:
        """Rollback-retry-quarantine for a shard whose worker died.

        Restores the shard's shared-memory slice from the last
        checkpoint, spawns a fresh worker that *adopts* the restored
        state, and replays forward to the fleet's current position
        (including the epoch that just failed) — bit-identical, because
        the engine is deterministic.  A shard that keeps dying is
        restored to the checkpoint and quarantined; the rest of the
        fleet keeps training.
        """
        snap = self._last_ckpt
        if snap is None:
            self._reap_worker(w)
            raise RuntimeError(
                f"shard worker {w} died with checkpointing disabled "
                "(checkpoint_interval=0); cannot replay"
            )
        # samples_per_agent is not yet incremented for the failing epoch.
        replay = self.stats.samples_per_agent + n - snap["samples_per_agent"]
        self._reap_worker(w)
        with self._obs_span("shard.recover", worker=w, replay=replay):
            ctx = self._wire_ctx()
            run_cmd = ("run", replay) if ctx is None else ("run", replay, ctx)
            for _ in range(self.max_worker_restarts):
                self.restarts += 1
                self._restore_shard(w, snap)
                try:
                    self._spawn_worker(w, adopt=True)
                    self._await_ready(w)
                    self._conns[w].send(run_cmd)
                    if not self._await_result(w):
                        self._reap_worker(w)
                        continue
                    msg = self._conns[w].recv()
                    tag, delta = msg[0], msg[1]
                except (RuntimeError, EOFError, OSError, BrokenPipeError):
                    self._reap_worker(w)
                    continue
                if tag != "done":
                    self._reap_worker(w)
                    continue
                self._adopt_spans(msg)
                cum = self._worker_cum[w]
                cum[0] += delta["episodes"]
                cum[1] += delta["exploits"]
                cum[2] += delta["explores"]
                self._obs_event("worker_restarted", worker=w, replay=replay)
                return
            self._restore_shard(w, snap)
            self.quarantined_workers.add(w)
            self._obs_event("worker_quarantined", worker=w)

    def _restore_shard(self, w: int, snap: dict) -> None:
        lo, hi = self._bounds[w], self._bounds[w + 1]
        state = snap["state"]
        for attr, key in self._STATE_ARRAYS:
            getattr(self, attr)[lo:hi] = state[key][lo:hi]
        self._bank_start.states[lo:hi] = state["lfsr"]["start"][lo:hi]
        self._bank_action.states[lo:hi] = state["lfsr"]["action"][lo:hi]
        self._bank_policy.states[lo:hi] = state["lfsr"]["policy"][lo:hi]
        self._worker_cum[w] = list(snap["worker_cum"][w])

    def _refresh_stats(self) -> None:
        st = self.stats
        base = self._stats_base
        st.episodes = base["episodes"] + sum(c[0] for c in self._worker_cum)
        st.exploits = base["exploits"] + sum(c[1] for c in self._worker_cum)
        st.explores = base["explores"] + sum(c[2] for c in self._worker_cum)

    def _take_checkpoint(self) -> None:
        state = self.state_dict()
        self.store.push(("epoch", self._epochs_done), state)
        self._last_ckpt = {
            "state": state,
            "worker_cum": [list(c) for c in self._worker_cum],
            "samples_per_agent": self.stats.samples_per_agent,
        }

    # ------------------------------------------------------------------ #
    # Checkpoint / view surface — the shared-memory arrays sit under the
    # standard attribute names, so the vectorized implementations apply
    # verbatim (and read/write worker state zero-copy).
    # ------------------------------------------------------------------ #

    state_dict = VectorizedFleetBackend.state_dict
    lane_state = VectorizedFleetBackend.lane_state
    load_lane_state = VectorizedFleetBackend.load_lane_state
    q_float = VectorizedFleetBackend.q_float
    q_float_all = VectorizedFleetBackend.q_float_all

    # The per-lane serve surface (lane leasing + external transitions)
    # works on the same attribute vocabulary, so it is borrowed too.
    # Contract: only call these while the workers are idle (between
    # sync epochs) — the parent and a running worker must never write
    # the same shard concurrently.
    reset_lane = VectorizedFleetBackend.reset_lane
    apply_transition = VectorizedFleetBackend.apply_transition
    query_action = VectorizedFleetBackend.query_action
    _lane_draw = VectorizedFleetBackend._lane_draw
    _bind_rule = VectorizedFleetBackend._bind_rule

    def _count_external(self, exploited: bool, terminal: bool) -> None:
        """External-transition stat deltas go into the worker-independent
        base so ``_refresh_stats`` (which rebuilds from worker deltas)
        cannot erase them."""
        base = self._stats_base
        if exploited:
            base["exploits"] += 1
        else:
            base["explores"] += 1
        if terminal:
            base["episodes"] += 1
        self._refresh_stats()

    def load_state_dict(self, state: dict) -> None:
        """Restore a fleet checkpoint (from this backend *or* from a
        :class:`VectorizedFleetBackend` — the payloads are identical)."""
        VectorizedFleetBackend.load_state_dict(self, state)
        self._stats_base = {
            "episodes": self.stats.episodes,
            "exploits": self.stats.exploits,
            "explores": self.stats.explores,
        }
        self._worker_cum = [[0, 0, 0] for _ in range(self.num_workers)]
        if self.checkpoint_interval:
            self._take_checkpoint()

    @property
    def n_lanes(self) -> int:
        """Lane count (alias of the historical ``K``)."""
        return self.K

    def shard_bounds(self, w: int) -> tuple[int, int]:
        """Worker ``w``'s contiguous lane range as ``(lo, hi)``."""
        if not 0 <= w < self.num_workers:
            raise IndexError(f"worker {w} out of range 0..{self.num_workers - 1}")
        return self._bounds[w], self._bounds[w + 1]

    def telemetry_snapshot(self) -> dict:
        """Fleet-level counters plus shard/recovery health."""
        return {
            "agents": self.K,
            "states": self.S,
            "actions": self.A,
            "samples_per_agent": self.stats.samples_per_agent,
            "total_samples": self.stats.samples,
            "episodes": self.stats.episodes,
            "exploits": self.stats.exploits,
            "explores": self.stats.explores,
            "workers": self.num_workers,
            "epoch": self.epoch,
            "restarts": self.restarts,
            "hangs": self.hangs,
            "quarantined_workers": len(self.quarantined_workers),
        }

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop the workers and release the shared-memory block.

        Idempotent; also invoked by ``__exit__``, by a per-instance
        ``atexit`` hook, by :func:`install_signal_cleanup` handlers and
        (best-effort) by ``__del__`` — so neither a forgotten close nor
        a SIGTERM leaves orphaned workers or a leaked ``/dev/shm``
        block.  After close the backend is unusable.
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        _LIVE_BACKENDS.discard(self)
        cb = getattr(self, "_atexit_cb", None)
        if cb is not None:
            try:
                atexit.unregister(cb)
            except Exception:  # pragma: no cover - interpreter shutdown
                pass
        # Bounded-time teardown: a hung (e.g. SIGSTOP'd) worker cannot
        # answer the stop handshake or join, so every wait is capped by
        # stop_timeout_s and escalates to SIGKILL (which terminates
        # stopped processes too).
        stop_timeout = getattr(self, "stop_timeout_s", 5.0)
        for w in range(self.num_workers):
            conn = self._conns[w]
            proc = self._procs[w]
            if conn is not None and proc is not None and proc.is_alive():
                try:
                    conn.send(("stop",))
                    if conn.poll(stop_timeout):
                        conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
            if proc is not None:
                proc.join(timeout=stop_timeout)
                if proc.is_alive():  # stuck worker: escalate
                    proc.kill()
                    proc.join(timeout=stop_timeout)
                self._procs[w] = None
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                self._conns[w] = None
        # Drop every view of the buffer before closing the mapping.
        for attr, _ in self._STATE_ARRAYS:
            setattr(self, attr, None)
        self._bank_start = self._bank_action = self._bank_policy = None
        self._views = None
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass

    def __enter__(self) -> "ShardedFleetBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
