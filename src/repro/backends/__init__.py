"""Fleet execution backends: the same learners, different array programs.

``n_lanes`` independent QTAccel learners can be advanced by any of
three interchangeable backends (see :mod:`repro.backends.base` for the
shared :class:`FleetBackend` surface):

* ``"vectorized"`` (default) — :class:`VectorizedFleetBackend`, lanes
  as numpy array programs (the software analogue of Fig. 9's replicated
  pipelines; 1-2 orders of magnitude faster);
* ``"scalar"`` — :class:`ScalarFleetBackend`, a pure-Python loop of
  per-lane functional simulators (the reference baseline);
* ``"sharded"`` — :class:`ShardedFleetBackend`, the vectorized program
  partitioned into contiguous lane shards, one spawn-safe
  ``multiprocessing`` worker per shard with all per-lane state in a
  ``multiprocessing.shared_memory`` block (multi-core scaling with
  checkpointed crash recovery; remember to ``close()`` it).

All are bit-identical per lane to a scalar
:class:`~repro.core.functional.FunctionalSimulator` with the same salt.
Select one via :func:`make_fleet_backend`,
``BatchIndependentSimulator(..., backend=...)`` or
``repro.make_engine(..., engine="batch"|"vectorized"|"sharded")``.
"""

from .base import (
    BatchStats,
    FleetBackend,
    FleetSpec,
    FleetStats,
    fleet_backends,
    make_fleet_backend,
    normalize_fleet,
    resolve_fleet_backend,
)
from .scalar import ScalarFleetBackend
from .sharded import ShardedFleetBackend
from .vectorized import VectorizedFleetBackend

__all__ = [
    "BatchStats",
    "FleetBackend",
    "FleetSpec",
    "FleetStats",
    "ScalarFleetBackend",
    "ShardedFleetBackend",
    "VectorizedFleetBackend",
    "fleet_backends",
    "make_fleet_backend",
    "normalize_fleet",
    "resolve_fleet_backend",
]
