"""Fleet execution backends: the same learners, different array programs.

``n_lanes`` independent QTAccel learners can be advanced by any of
four interchangeable backends (see :mod:`repro.backends.base` for the
shared :class:`FleetBackend` surface):

* ``"vectorized"`` (default) — :class:`VectorizedFleetBackend`, lanes
  as numpy array programs (the software analogue of Fig. 9's replicated
  pipelines; 1-2 orders of magnitude faster);
* ``"scalar"`` — :class:`ScalarFleetBackend`, a pure-Python loop of
  per-lane functional simulators (the reference baseline);
* ``"sharded"`` — :class:`ShardedFleetBackend`, the vectorized program
  partitioned into contiguous lane shards, one spawn-safe
  ``multiprocessing`` worker per shard with all per-lane state in a
  ``multiprocessing.shared_memory`` block (multi-core scaling with
  checkpointed crash recovery; remember to ``close()`` it);
* ``"native"`` — :class:`NativeFleetBackend`, the whole lock-step
  program fused into one compiled pass per chunk of steps (numba JIT
  via the ``repro[native]`` extra, or a runtime-compiled C kernel);
  raises :class:`NativeBackendUnavailableError` when no compiled tier
  exists (see :func:`fleet_backend_availability`).

All are bit-identical per lane to a scalar
:class:`~repro.core.functional.FunctionalSimulator` with the same salt.
Select one via :func:`make_fleet_backend`,
``BatchIndependentSimulator(..., backend=...)`` or
``repro.make_engine(..., engine="batch"|"vectorized"|"sharded"|"native")``.
"""

from .base import (
    BatchStats,
    FleetBackend,
    FleetSpec,
    FleetStats,
    fleet_backend_availability,
    fleet_backends,
    make_fleet_backend,
    normalize_fleet,
    resolve_fleet_backend,
)
from .native import (
    NativeBackendUnavailableError,
    NativeFleetBackend,
    native_available,
    native_kernel_tiers,
)
from .scalar import ScalarFleetBackend
from .sharded import ShardedFleetBackend
from .vectorized import VectorizedFleetBackend

__all__ = [
    "BatchStats",
    "FleetBackend",
    "FleetSpec",
    "FleetStats",
    "NativeBackendUnavailableError",
    "NativeFleetBackend",
    "ScalarFleetBackend",
    "ShardedFleetBackend",
    "VectorizedFleetBackend",
    "fleet_backend_availability",
    "fleet_backends",
    "make_fleet_backend",
    "native_available",
    "native_kernel_tiers",
    "normalize_fleet",
    "resolve_fleet_backend",
]
