"""Vectorised NumPy fleet backend: ``n_lanes`` learners as one array program.

The Fig. 9 deployment — N pipelines, each learning its own Q table —
is embarrassingly parallel, which in numpy terms means every per-sample
quantity becomes a length-``n_lanes`` *lane* vector: LFSR banks step
``n_lanes`` registers in three ops, table reads are fancy-indexed
gathers, write-backs are per-lane-row scatters (no conflicts: each lane
owns its row), and the 4-multiplier fixed-point update rule
``(1 - a)*Q + a*R + a*g*Qmax[s']`` runs through the same integer array
kernel the scalar simulators use — fixed-point configs therefore come
for free via int64 dtype arithmetic.

Bit-fidelity is the design constraint, not an afterthought: lane ``k``
of a :class:`VectorizedFleetBackend` seeded with ``salts[k]`` produces
exactly the trajectory of a scalar
:class:`~repro.core.functional.FunctionalSimulator` built with
``PolicyDraws.from_config(config, salt=salts[k])`` — draws, lag
semantics, Qmax rules and all (asserted by the test suite).  That makes
this backend a drop-in for large fleet studies at 1-2 orders of
magnitude the scalar throughput (see the ``fleet_throughput`` bench).

Lanes may share one world (ensemble training on the same map) or each
own a same-shaped world (the partitioned tiles of
:func:`repro.envs.multi_agent.partition_grid`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import QTAccelConfig
from ..core.policies import egreedy_cut
from ..core.tables import apply_qmax_rule
from ..envs.base import DenseMdp
from ..fixedpoint import ops
from ..rtl.lfsr import Lfsr
from ..rtl.lfsr_batch import LfsrBank
from ..rtl.rng import DECIMATION
from .base import BatchStats, normalize_fleet

_I64 = np.int64

#: Cached per-width leap tables for the scalar per-lane draws of the
#: serving surface (``apply_transition``/``query_action``).  The tables
#: are the same ``Lfsr._leap_table`` LUTs the banks gather from, so a
#: scalar lane draw is bit-identical to one ``UniformSource.bits()``.
_LANE_LEAP_TABLES: dict[int, list[int]] = {}


def _lane_leap_table(width: int) -> list[int]:
    table = _LANE_LEAP_TABLES.get(width)
    if table is None:
        table = Lfsr(width, seed=1)._leap_table(DECIMATION)
        _LANE_LEAP_TABLES[width] = table
    return table


class VectorizedFleetBackend:
    """``n_lanes`` independent QTAccel learners, advanced in vectorised
    lock-step (Q tables stacked ``(n_lanes, |S|, |A|)``, Qmax
    ``(n_lanes, |S|)``)."""

    #: Name this engine attaches under in a telemetry session profile.
    _TELEMETRY_NAME = "batch"

    def __init__(
        self,
        mdps: "DenseMdp | Sequence[DenseMdp]",
        config: QTAccelConfig,
        *,
        num_agents: int | None = None,
        salts: Sequence[int] | None = None,
        telemetry=None,
    ):
        spec = normalize_fleet(mdps, n_lanes=num_agents, salts=salts)
        self.mdps = list(spec.mdps)
        self._homogeneous = spec.homogeneous
        k = spec.n_lanes

        self.config = config
        self.K = k
        self.S, self.A = spec.num_states, spec.num_actions
        qf = config.q_format
        n_starts = len(self.mdps[0].start_states)

        # Stacked environment tables: (K, S, A) transitions/rewards and
        # (K, S) terminal flags.  Homogeneous fleets broadcast one copy.
        if self._homogeneous:
            base = self.mdps[0]
            self._next = np.broadcast_to(base.next_state, (k, self.S, self.A))
            self._rewards = np.broadcast_to(
                ops.quantize_array(base.rewards, qf), (k, self.S, self.A)
            )
            self._terminal = np.broadcast_to(base.terminal, (k, self.S))
            self._starts = np.broadcast_to(base.start_states, (k, n_starts))
            # Flat gather sources: one copy, indexed without lane offsets.
            self._next_flat = np.ascontiguousarray(base.next_state, dtype=_I64).reshape(-1)
            self._rewards_flat = np.ascontiguousarray(
                ops.quantize_array(base.rewards, qf), dtype=_I64
            ).reshape(-1)
            self._terminal_flat = np.ascontiguousarray(base.terminal, dtype=bool).reshape(-1)
            self._starts_flat = np.ascontiguousarray(base.start_states, dtype=_I64).reshape(-1)
            self._env_sa_off = self._env_s_off = self._env_start_off = None
        else:
            self._next = np.stack([m.next_state for m in self.mdps])
            self._rewards = np.stack([ops.quantize_array(m.rewards, qf) for m in self.mdps])
            self._terminal = np.stack([m.terminal for m in self.mdps])
            self._starts = np.stack([m.start_states for m in self.mdps])
            # Flat gather sources: per-lane tables, indexed with the
            # lane's base offset added in.
            self._next_flat = np.ascontiguousarray(self._next, dtype=_I64).reshape(-1)
            self._rewards_flat = np.ascontiguousarray(self._rewards, dtype=_I64).reshape(-1)
            self._terminal_flat = np.ascontiguousarray(self._terminal, dtype=bool).reshape(-1)
            self._starts_flat = np.ascontiguousarray(self._starts, dtype=_I64).reshape(-1)
            lanes = np.arange(k, dtype=_I64)
            self._env_sa_off = lanes * (self.S * self.A)
            self._env_s_off = lanes * self.S
            self._env_start_off = lanes * n_starts
        self._n_starts = n_starts

        # Learner state: per-lane Q / Qmax / argmax tables.
        q_init = qf.quantize(config.q_init)
        self.q = np.full((k, self.S * self.A), q_init, dtype=_I64)
        self.qmax = np.full((k, self.S), q_init, dtype=_I64)
        self.qmax_action = np.zeros((k, self.S), dtype=_I64)

        # Update-rule extra lane state (see repro.algorithms): the
        # momentum/target tables are full (K, S*A) checkpoint members,
        # appended to the per-instance _STATE_ARRAYS tuple so every
        # state_dict/lane_state/shared-memory path carries them.
        self._bind_rule(config)
        extra_state: list[tuple[str, str]] = []
        self.momentum = None
        self.target = None
        self._target_count = None
        if self._rule_kind == "momentum":
            self.momentum = np.full((k, self.S * self.A), q_init, dtype=_I64)
            extra_state.append(("momentum", "momentum"))
        elif self._rule_kind == "target":
            self.target = np.full((k, self.S * self.A), q_init, dtype=_I64)
            self._target_count = np.zeros(k, dtype=_I64)
            extra_state.append(("target", "target"))
            extra_state.append(("_target_count", "target_count"))
        self._STATE_ARRAYS = self._BASE_STATE_ARRAYS + tuple(extra_state)

        # LFSR banks seeded exactly like PolicyDraws.from_config(salt=..).
        base_seed = config.seed + spec.salts * 0x9E37
        w = config.lfsr_width
        self._bank_start = LfsrBank(w, base_seed + 0x11)
        self._bank_action = LfsrBank(w, base_seed + 0x22)
        self._bank_policy = LfsrBank(w, base_seed + 0x33)
        self._egreedy_cut = _I64(egreedy_cut(config.epsilon, w))

        (self._alpha, _, self._one_minus_alpha, self._alpha_gamma) = config.coefficients()

        # Architectural lane state (-1 sentinels = "none").
        self._arch_state = np.full(k, -1, dtype=_I64)
        self._forwarded = np.full(k, -1, dtype=_I64)
        # Lag view of the most recent write (SARSA restart reads).
        self._prev_pair = np.full(k, -1, dtype=_I64)
        self._prev_state = np.full(k, -1, dtype=_I64)
        self._prev_q = np.zeros(k, dtype=_I64)
        self._prev_qmax = np.zeros(k, dtype=_I64)
        self._prev_qmax_action = np.zeros(k, dtype=_I64)

        self.stats = BatchStats(agents=k)
        self._rows = np.arange(k)

        # Flat lane offsets + preallocated per-step scratch: step() runs
        # allocation-free, and every state array is only ever mutated in
        # place — the sharded backend relies on both when it rebinds the
        # table attributes to shared-memory slices (then calls
        # :meth:`_rebind_flat_views`).
        self._lane_sa_off = np.arange(k, dtype=_I64) * (self.S * self.A)
        self._lane_s_off = np.arange(k, dtype=_I64) * self.S
        for name in (
            "_t_start", "_t_state", "_t_action", "_t_pair", "_t_ienv",
            "_t_isa", "_t_is", "_t_snext", "_t_r", "_t_qsa", "_t_qnext",
            "_t_anext", "_t_qnew", "_t_acc", "_t_tmp",
            # Rule-specific temporaries: the momentum/target gather and
            # the Polyak result (kept separate from _t_tmp, which stage 4
            # still owns for the Qmax merge).  Allocated unconditionally
            # so every rule path stays allocation-free and _bind_rule can
            # be re-run (checkpoint load) without reshaping scratch.
            "_t_rule", "_t_rule2",
        ):
            setattr(self, name, np.empty(k, dtype=_I64))
        for name in (
            "_m_restart", "_m_exploit", "_m_lag", "_m_term", "_m_upd", "_m_tmp",
        ):
            setattr(self, name, np.empty(k, dtype=bool))
        # Target-sync due mask, kept as a (k, 1) column so the whole-table
        # `where=` broadcast in step() reuses this buffer instead of
        # materialising `due[:, None]` every sync check.
        self._m_due_col = np.empty((k, 1), dtype=bool)
        self._m_due = self._m_due_col[:, 0]
        self._rebind_flat_views()
        #: Optional :class:`repro.robustness.guards.DivergenceGuard`
        #: observing every lock-step update vector (None = fast path).
        self.guard = None

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        #: Session pulsed once per lock-step step for live-metrics export.
        self._session = session
        if session is not None:
            session.attach(self, self._TELEMETRY_NAME)

    @property
    def n_lanes(self) -> int:
        """Lane count (alias of the historical ``K``)."""
        return self.K

    def telemetry_snapshot(self) -> dict:
        """Fleet-level counters for a telemetry profile."""
        return {
            "agents": self.K,
            "states": self.S,
            "actions": self.A,
            "samples_per_agent": self.stats.samples_per_agent,
            "total_samples": self.stats.samples,
            "episodes": self.stats.episodes,
            "exploits": self.stats.exploits,
            "explores": self.stats.explores,
        }

    # ------------------------------------------------------------------ #
    # Draw helpers (exactly the scalar UniformSource reductions)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _reduce(states: np.ndarray, m: int) -> np.ndarray:
        if m & (m - 1) == 0:
            return states & (m - 1)
        return states % m

    @staticmethod
    def _reduce_into(states: np.ndarray, m: int, out: np.ndarray) -> np.ndarray:
        """:meth:`_reduce` into a preallocated buffer."""
        if m & (m - 1) == 0:
            return np.bitwise_and(states, _I64(m - 1), out=out)
        return np.remainder(states, _I64(m), out=out)

    def _bind_rule(self, config: QTAccelConfig) -> None:
        """Resolve the configured update rule and its raw coefficients
        (shared with the sharded backend, which borrows the lane-op
        surface and needs the same scalars without a full construct)."""
        self.rule = config.rule
        self._rule_kind = self.rule.kind
        self._rule_coefs = self.rule.coefficients(config)

    def _rebind_flat_views(self) -> None:
        """(Re)derive the flat 1-D aliases of q/qmax/qmax_action (and
        the rule extra tables when present).

        Called at construction and again by the sharded backend after it
        rebinds the table attributes to shared-memory slices — the flat
        views used by the offset-indexed gathers in :meth:`step` must
        always alias the current storage (contiguous row slices reshape
        to views, never copies)."""
        self._q_flat = self.q.reshape(-1)
        self._qmax_flat = self.qmax.reshape(-1)
        self._qmax_action_flat = self.qmax_action.reshape(-1)
        if self.momentum is not None:
            self._momentum_flat = self.momentum.reshape(-1)
        if self.target is not None:
            self._target_flat = self.target.reshape(-1)

    # ------------------------------------------------------------------ #
    # One lock-step sample for every lane
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        cfg = self.config
        on_policy = cfg.is_on_policy
        A = self.A

        # ---- stage-1 equivalent: state + behaviour action ---- #
        restart = np.less(self._arch_state, 0, out=self._m_restart)
        start_idx = self._reduce_into(
            self._bank_start.draw_where(restart, DECIMATION),
            self._n_starts,
            self._t_start,
        )
        if self._env_start_off is not None:
            np.add(start_idx, self._env_start_off, out=start_idx)
        np.take(self._starts_flat, start_idx, out=start_idx)
        state = self._t_state
        np.copyto(state, self._arch_state)
        np.copyto(state, start_idx, where=restart)

        action = self._t_action
        if cfg.behavior_policy == "random":
            self._reduce_into(self._bank_action.draw_all(DECIMATION), A, action)
        else:
            # SARSA: forwarded action, except at restarts where a fresh
            # e-greedy draw happens against the *lagged* table view.
            u = self._bank_policy.draw_where(restart, DECIMATION)
            exploit_b = np.less(u, self._egreedy_cut, out=self._m_exploit)
            lag_hit = np.equal(state, self._prev_state, out=self._m_lag)
            ist = np.add(state, self._lane_s_off, out=self._t_is)
            qmax_act = np.take(self._qmax_action_flat, ist, out=self._t_tmp)
            np.copyto(qmax_act, self._prev_qmax_action, where=lag_hit)
            self._reduce_into(u, A, action)  # explore action
            np.copyto(action, qmax_act, where=exploit_b)  # fresh draw
            held = np.logical_not(restart, out=self._m_tmp)
            np.copyto(action, self._forwarded, where=held)

        pair = self._t_pair
        np.multiply(state, _I64(A), out=pair)
        np.add(pair, action, out=pair)

        if self._env_sa_off is None:
            env_sa = pair
        else:
            env_sa = np.add(pair, self._env_sa_off, out=self._t_ienv)
        s_next = np.take(self._next_flat, env_sa, out=self._t_snext)
        r = np.take(self._rewards_flat, env_sa, out=self._t_r)
        if self._env_s_off is None:
            env_s = s_next
        else:
            env_s = np.add(s_next, self._env_s_off, out=self._t_ienv)
        terminal_next = np.take(self._terminal_flat, env_s, out=self._m_term)
        isa = np.add(pair, self._lane_sa_off, out=self._t_isa)
        q_sa = np.take(self._q_flat, isa, out=self._t_qsa)

        # ---- stage-2 equivalent: update policy ---- #
        ins = np.add(s_next, self._lane_s_off, out=self._t_is)
        q_next = self._t_qnext
        a_next = self._t_anext
        if cfg.update_policy == "greedy":
            np.take(self._qmax_action_flat, ins, out=a_next)
            if self._rule_kind == "target":
                # Select with the online Qmax cache, evaluate with the
                # target table: bootstrap = T[s', argmax_a Q(s', a)].
                iq = np.multiply(s_next, _I64(A), out=self._t_tmp)
                np.add(iq, a_next, out=iq)
                np.add(iq, self._lane_sa_off, out=iq)
                np.take(self._target_flat, iq, out=q_next)
            else:
                np.take(self._qmax_flat, ins, out=q_next)
            self.stats.exploits += self.K
        else:
            u = self._bank_policy.draw_all(DECIMATION)
            exploit = np.less(u, self._egreedy_cut, out=self._m_exploit)
            self._reduce_into(u, A, a_next)  # explore action
            iq = np.multiply(s_next, _I64(A), out=self._t_tmp)
            np.add(iq, a_next, out=iq)
            np.add(iq, self._lane_sa_off, out=iq)
            np.take(self._q_flat, iq, out=q_next)  # explore value
            np.take(self._qmax_flat, ins, out=self._t_tmp)
            np.copyto(q_next, self._t_tmp, where=exploit)
            np.take(self._qmax_action_flat, ins, out=self._t_tmp)
            np.copyto(a_next, self._t_tmp, where=exploit)
            n_exploit = int(np.count_nonzero(exploit))
            self.stats.exploits += n_exploit
            self.stats.explores += self.K - n_exploit
        np.copyto(q_next, _I64(0), where=terminal_next)

        # ---- stage-3 equivalent: the shared datapath kernel ---- #
        if self._rule_kind == "momentum":
            m = np.take(self._momentum_flat, isa, out=self._t_rule)
            q_new = ops.q_update_momentum_into(
                q_sa,
                r,
                q_next,
                m,
                out=self._t_qnew,
                scratch=self._t_acc,
                mask_scratch=self._m_tmp,
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=self._alpha_gamma,
                beta=self._rule_coefs.beta,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
        else:
            q_new = ops.q_update_into(
                q_sa,
                r,
                q_next,
                out=self._t_qnew,
                scratch=self._t_acc,
                mask_scratch=self._m_tmp,
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=self._alpha_gamma,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
        if self.guard is not None:
            self.guard.observe_array(q_new, cfg.q_format)

        # ---- stage-4 equivalent: write-back + Qmax rule ---- #
        np.copyto(self._prev_pair, pair)
        np.copyto(self._prev_state, state)
        np.copyto(self._prev_q, q_sa)
        ist = np.add(state, self._lane_s_off, out=self._t_is)
        np.take(self._qmax_flat, ist, out=self._prev_qmax)
        np.take(self._qmax_action_flat, ist, out=self._prev_qmax_action)

        self._q_flat[isa] = q_new
        mode = cfg.qmax_mode
        if mode == "exact":
            rows = self._rows
            rows_q = self.q.reshape(self.K, self.S, self.A)[rows, state]
            best = np.argmax(rows_q, axis=1)
            self.qmax[rows, state] = rows_q[rows, best]
            self.qmax_action[rows, state] = best
        else:
            # cur_val / cur_act were just latched into _prev_qmax[_action].
            upd = np.greater(q_new, self._prev_qmax, out=self._m_upd)
            if mode == "follow":
                hit = np.equal(action, self._prev_qmax_action, out=self._m_tmp)
                np.logical_or(upd, hit, out=upd)
            merged = self._t_tmp
            np.copyto(merged, self._prev_qmax)
            np.copyto(merged, q_new, where=upd)
            self._qmax_flat[ist] = merged
            np.copyto(merged, self._prev_qmax_action)
            np.copyto(merged, action, where=upd)
            self._qmax_action_flat[ist] = merged

        if self._rule_kind == "momentum":
            # Stage-4 momentum write: the *pre-update* Q(s, a) operand
            # becomes the historical iterate for the next visit.
            self._momentum_flat[isa] = q_sa
        elif self._rule_kind == "target":
            # Stage-4 lazy Polyak read-modify-write on the written pair.
            t = np.take(self._target_flat, isa, out=self._t_rule)
            t_new = ops.polyak_update_into(
                t,
                q_new,
                out=self._t_rule2,
                scratch=self._t_acc,
                mask_scratch=self._m_tmp,
                tau=self._rule_coefs.tau,
                one_minus_tau=self._rule_coefs.one_minus_tau,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
            self._target_flat[isa] = t_new
            self._target_count += 1
            period = cfg.target_sync_period
            if period:
                due = np.greater_equal(
                    self._target_count, _I64(period), out=self._m_due
                )
                if np.any(due):
                    np.copyto(self.target, self.q, where=self._m_due_col)
                    np.copyto(self._target_count, _I64(0), where=due)

        self.stats.episodes += int(np.count_nonzero(terminal_next))
        np.copyto(self._arch_state, s_next)
        np.copyto(self._arch_state, _I64(-1), where=terminal_next)
        if on_policy:
            np.copyto(self._forwarded, a_next)
            np.copyto(self._forwarded, _I64(-1), where=terminal_next)

    def run(self, samples_per_agent: int) -> BatchStats:
        """Advance every lane by ``samples_per_agent`` updates."""
        if samples_per_agent < 0:
            raise ValueError("samples_per_agent must be non-negative")
        session = self._session
        for _ in range(samples_per_agent):
            self.step()
            if session is not None:
                session.pulse()
        self.stats.samples_per_agent += samples_per_agent
        return self.stats

    # ------------------------------------------------------------------ #
    # Lane leasing: the repro.serve external-transition surface
    #
    # These methods are deliberately written against only the shared
    # attribute vocabulary — the ``(K, ·)`` state arrays, the banks'
    # ``.states`` registers and the config-derived scalars — so the
    # sharded backend can borrow them verbatim (its parent maps the
    # same arrays over shared memory and holds plain ``states`` views
    # in place of full LfsrBank objects).  On a sharded fleet they must
    # only run while the workers are idle (between sync epochs), which
    # is exactly how the serve gateway drives them.
    # ------------------------------------------------------------------ #

    def _lane_draw(self, bank, k: int) -> int:
        """One decimated draw on lane ``k`` of ``bank`` — bit-identical
        to ``UniformSource(Lfsr(w, ...)).bits()`` on that lane's stream."""
        table = _lane_leap_table(self.config.lfsr_width)
        s = int(bank.states[k])
        s = (s >> DECIMATION) ^ table[s & ((1 << DECIMATION) - 1)]
        bank.states[k] = s
        return s

    def _count_external(self, exploited: bool, terminal: bool) -> None:
        """Stat deltas of one external transition (hook: the sharded
        backend redirects these into its worker-independent base)."""
        if exploited:
            self.stats.exploits += 1
        else:
            self.stats.explores += 1
        if terminal:
            self.stats.episodes += 1

    def reset_lane(self, k: int, salt: int) -> None:
        """Re-initialise lane ``k`` to the pristine state of a lane
        seeded with ``salt`` — table fills, architectural latches and
        all three LFSR registers exactly as construction would have
        produced them (so the lane's future trajectory is bit-identical
        to a fresh ``FunctionalSimulator`` built with
        ``PolicyDraws.from_config(config, salt=salt)``)."""
        if not 0 <= k < self.K:
            raise IndexError(f"lane {k} out of range 0..{self.K - 1}")
        cfg = self.config
        q_init = cfg.q_format.quantize(cfg.q_init)
        self.q[k, :] = q_init
        self.qmax[k, :] = q_init
        self.qmax_action[k, :] = 0
        self._arch_state[k] = -1
        self._forwarded[k] = -1
        self._prev_pair[k] = -1
        self._prev_state[k] = -1
        self._prev_q[k] = 0
        self._prev_qmax[k] = 0
        self._prev_qmax_action[k] = 0
        if self.momentum is not None:
            self.momentum[k, :] = q_init
        if self.target is not None:
            self.target[k, :] = q_init
            self._target_count[k] = 0
        base = cfg.seed + int(salt) * 0x9E37
        mask = (1 << cfg.lfsr_width) - 1
        for bank, off in (
            (self._bank_start, 0x11),
            (self._bank_action, 0x22),
            (self._bank_policy, 0x33),
        ):
            seed = (base + off) & mask
            bank.states[k] = seed if seed else 1

    def apply_transition(
        self,
        k: int,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
    ) -> int:
        """Apply one external ``(s, a, r, s')`` transition to lane ``k``.

        Scalar twin of :meth:`FunctionalSimulator.apply_transition
        <repro.core.functional.FunctionalSimulator.apply_transition>`:
        same reward quantisation point, same single update-policy draw
        for e-greedy configs, same single-rounding datapath call and
        stage-4 Qmax rule, same lag/episode latch updates — so a lane
        driven through this surface stays bit-identical to a dedicated
        functional simulator fed the same calls.  Returns the raw
        written Q value.
        """
        cfg = self.config
        A = self.A
        if not 0 <= k < self.K:
            raise IndexError(f"lane {k} out of range 0..{self.K - 1}")
        if not 0 <= state < self.S or not 0 <= next_state < self.S:
            raise ValueError(
                f"state/next_state out of range [0, {self.S}): {state}, {next_state}"
            )
        if not 0 <= action < A:
            raise ValueError(f"action {action} out of range [0, {A})")

        pair = state * A + action
        q_sa = int(self.q[k, pair])
        r = cfg.q_format.quantize(float(reward))

        # ---- stage-2 equivalent: update policy ---- #
        if cfg.update_policy == "greedy":
            a_next = int(self.qmax_action[k, next_state])
            if self._rule_kind == "target":
                q_next = int(self.target[k, next_state * A + a_next])
            else:
                q_next = int(self.qmax[k, next_state])
            exploited = True
        else:
            u = self._lane_draw(self._bank_policy, k)
            if u < int(self._egreedy_cut):
                q_next = int(self.qmax[k, next_state])
                a_next = int(self.qmax_action[k, next_state])
                exploited = True
            else:
                a_next = u & (A - 1) if A & (A - 1) == 0 else u % A
                q_next = int(self.q[k, next_state * A + a_next])
                exploited = False
        if terminal:
            q_next = 0

        # ---- stage-3 equivalent: the shared datapath kernel ---- #
        if self._rule_kind == "momentum":
            q_new = ops.q_update_momentum(
                q_sa,
                r,
                q_next,
                int(self.momentum[k, pair]),
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=self._alpha_gamma,
                beta=self._rule_coefs.beta,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
        else:
            q_new = ops.q_update(
                q_sa,
                r,
                q_next,
                alpha=self._alpha,
                one_minus_alpha=self._one_minus_alpha,
                alpha_gamma=self._alpha_gamma,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )

        # ---- stage-4 equivalent: write-back + Qmax rule ---- #
        self._prev_pair[k] = pair
        self._prev_state[k] = state
        self._prev_q[k] = q_sa
        cur_val = int(self.qmax[k, state])
        cur_act = int(self.qmax_action[k, state])
        self._prev_qmax[k] = cur_val
        self._prev_qmax_action[k] = cur_act
        self.q[k, pair] = q_new
        if cfg.qmax_mode == "exact":
            row = self.q[k, state * A : (state + 1) * A]
            best = int(np.argmax(row))
            self.qmax[k, state] = row[best]
            self.qmax_action[k, state] = best
        else:
            new_val, new_act = apply_qmax_rule(
                cfg.qmax_mode, cur_val, cur_act, int(q_new), action
            )
            self.qmax[k, state] = new_val
            self.qmax_action[k, state] = new_act

        if self._rule_kind == "momentum":
            self.momentum[k, pair] = q_sa
        elif self._rule_kind == "target":
            self.target[k, pair] = ops.polyak_update(
                int(self.target[k, pair]),
                int(q_new),
                tau=self._rule_coefs.tau,
                one_minus_tau=self._rule_coefs.one_minus_tau,
                coef_fmt=cfg.coef_format,
                q_fmt=cfg.q_format,
            )
            self._target_count[k] += 1
            period = cfg.target_sync_period
            if period and self._target_count[k] >= period:
                self.target[k, :] = self.q[k, :]
                self._target_count[k] = 0

        self._count_external(exploited, terminal)
        if terminal:
            self._arch_state[k] = -1
            self._forwarded[k] = -1
        else:
            self._arch_state[k] = next_state
            self._forwarded[k] = a_next if cfg.is_on_policy else -1
        return int(q_new)

    def query_action(self, k: int, state: int, explore: bool = True) -> int:
        """Recommend an action for lane ``k`` at ``state`` (no update).

        ``explore=True`` runs the single-draw e-greedy circuit on the
        lane's ``policy`` stream; ``explore=False`` reads the cached
        Qmax action and consumes no randomness.  Matches
        ``FunctionalSimulator.query_action`` draw for draw.
        """
        A = self.A
        if not 0 <= k < self.K:
            raise IndexError(f"lane {k} out of range 0..{self.K - 1}")
        if not 0 <= state < self.S:
            raise ValueError(f"state {state} out of range [0, {self.S})")
        if not explore:
            return int(self.qmax_action[k, state])
        u = self._lane_draw(self._bank_policy, k)
        if u < int(self._egreedy_cut):
            return int(self.qmax_action[k, state])
        return u & (A - 1) if A & (A - 1) == 0 else u % A

    # ------------------------------------------------------------------ #
    # Checkpointing (see repro.robustness.checkpoint)
    # ------------------------------------------------------------------ #

    #: (array attribute, checkpoint key) pairs of the lane-vector state
    #: common to every update rule.  Construction appends the rule's
    #: extra tables (momentum / target [+ target_count]) and stores the
    #: full tuple as the *instance* attribute ``_STATE_ARRAYS`` — always
    #: iterate that one, never this class constant.
    _BASE_STATE_ARRAYS = (
        ("q", "q"),
        ("qmax", "qmax"),
        ("qmax_action", "qmax_action"),
        ("_arch_state", "arch_state"),
        ("_forwarded", "forwarded"),
        ("_prev_pair", "prev_pair"),
        ("_prev_state", "prev_state"),
        ("_prev_q", "prev_q"),
        ("_prev_qmax", "prev_qmax"),
        ("_prev_qmax_action", "prev_qmax_action"),
    )
    #: Backwards-compatible default (plain rules have no extras).
    _STATE_ARRAYS = _BASE_STATE_ARRAYS

    def state_dict(self) -> dict:
        """Full fleet checkpoint: every lane vector plus the three LFSR
        banks and the aggregate stats.  Restoring and re-running replays
        the exact lock-step trajectory (the engine is deterministic)."""
        state = {key: getattr(self, attr).copy() for attr, key in self._STATE_ARRAYS}
        state["lfsr"] = {
            "start": self._bank_start.states.copy(),
            "action": self._bank_action.states.copy(),
            "policy": self._bank_policy.states.copy(),
        }
        state["stats"] = vars(self.stats).copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        for attr, key in self._STATE_ARRAYS:
            getattr(self, attr)[:] = state[key]
        self._bank_start.states[:] = state["lfsr"]["start"]
        self._bank_action.states[:] = state["lfsr"]["action"]
        self._bank_policy.states[:] = state["lfsr"]["policy"]
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)

    def lane_state(self, k: int, state: dict | None = None) -> dict:
        """Lane ``k``'s slice of a fleet checkpoint (default: taken
        live), for per-lane rollback.  The live path copies only lane
        ``k``'s rows — O(S·A), not O(K·S·A) — which is what makes
        per-session checkpoints in :mod:`repro.serve` affordable."""
        if state is None:
            out = {key: getattr(self, attr)[k].copy() for attr, key in self._STATE_ARRAYS}
            out["lfsr"] = {
                "start": int(self._bank_start.states[k]),
                "action": int(self._bank_action.states[k]),
                "policy": int(self._bank_policy.states[k]),
            }
            return out
        out = {key: state[key][k].copy() for _, key in self._STATE_ARRAYS}
        out["lfsr"] = {name: int(bank[k]) for name, bank in state["lfsr"].items()}
        return out

    def load_lane_state(self, k: int, lane: dict) -> None:
        """Restore one lane from a :meth:`lane_state` slice, leaving the
        other lanes (and the aggregate stats) untouched."""
        for attr, key in self._STATE_ARRAYS:
            getattr(self, attr)[k] = lane[key]
        self._bank_start.states[k] = lane["lfsr"]["start"]
        self._bank_action.states[k] = lane["lfsr"]["action"]
        self._bank_policy.states[k] = lane["lfsr"]["policy"]

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def q_float(self, agent: int) -> np.ndarray:
        """Lane ``agent``'s Q table as floats, ``(S, A)``."""
        return ops.to_float_array(
            self.q[agent].reshape(self.S, self.A), self.config.q_format
        )

    def q_float_all(self) -> np.ndarray:
        """All Q tables, ``(n_lanes, S, A)``."""
        return ops.to_float_array(
            self.q.reshape(self.K, self.S, self.A), self.config.q_format
        )
