"""Vectorised NumPy fleet backend: ``n_lanes`` learners as one array program.

The Fig. 9 deployment — N pipelines, each learning its own Q table —
is embarrassingly parallel, which in numpy terms means every per-sample
quantity becomes a length-``n_lanes`` *lane* vector: LFSR banks step
``n_lanes`` registers in three ops, table reads are fancy-indexed
gathers, write-backs are per-lane-row scatters (no conflicts: each lane
owns its row), and the 4-multiplier fixed-point update rule
``(1 - a)*Q + a*R + a*g*Qmax[s']`` runs through the same integer array
kernel the scalar simulators use — fixed-point configs therefore come
for free via int64 dtype arithmetic.

Bit-fidelity is the design constraint, not an afterthought: lane ``k``
of a :class:`VectorizedFleetBackend` seeded with ``salts[k]`` produces
exactly the trajectory of a scalar
:class:`~repro.core.functional.FunctionalSimulator` built with
``PolicyDraws.from_config(config, salt=salts[k])`` — draws, lag
semantics, Qmax rules and all (asserted by the test suite).  That makes
this backend a drop-in for large fleet studies at 1-2 orders of
magnitude the scalar throughput (see the ``fleet_throughput`` bench).

Lanes may share one world (ensemble training on the same map) or each
own a same-shaped world (the partitioned tiles of
:func:`repro.envs.multi_agent.partition_grid`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import QTAccelConfig
from ..core.policies import egreedy_cut
from ..envs.base import DenseMdp
from ..fixedpoint import ops
from ..rtl.lfsr_batch import LfsrBank
from ..rtl.rng import DECIMATION
from .base import BatchStats, normalize_fleet

_I64 = np.int64


class VectorizedFleetBackend:
    """``n_lanes`` independent QTAccel learners, advanced in vectorised
    lock-step (Q tables stacked ``(n_lanes, |S|, |A|)``, Qmax
    ``(n_lanes, |S|)``)."""

    #: Name this engine attaches under in a telemetry session profile.
    _TELEMETRY_NAME = "batch"

    def __init__(
        self,
        mdps: "DenseMdp | Sequence[DenseMdp]",
        config: QTAccelConfig,
        *,
        num_agents: int | None = None,
        salts: Sequence[int] | None = None,
        telemetry=None,
    ):
        spec = normalize_fleet(mdps, n_lanes=num_agents, salts=salts)
        self.mdps = list(spec.mdps)
        self._homogeneous = spec.homogeneous
        k = spec.n_lanes

        self.config = config
        self.K = k
        self.S, self.A = spec.num_states, spec.num_actions
        qf = config.q_format
        n_starts = len(self.mdps[0].start_states)

        # Stacked environment tables: (K, S, A) transitions/rewards and
        # (K, S) terminal flags.  Homogeneous fleets broadcast one copy.
        if self._homogeneous:
            base = self.mdps[0]
            self._next = np.broadcast_to(base.next_state, (k, self.S, self.A))
            self._rewards = np.broadcast_to(
                ops.quantize_array(base.rewards, qf), (k, self.S, self.A)
            )
            self._terminal = np.broadcast_to(base.terminal, (k, self.S))
            self._starts = np.broadcast_to(base.start_states, (k, n_starts))
        else:
            self._next = np.stack([m.next_state for m in self.mdps])
            self._rewards = np.stack([ops.quantize_array(m.rewards, qf) for m in self.mdps])
            self._terminal = np.stack([m.terminal for m in self.mdps])
            self._starts = np.stack([m.start_states for m in self.mdps])

        # Learner state: per-lane Q / Qmax / argmax tables.
        q_init = qf.quantize(config.q_init)
        self.q = np.full((k, self.S * self.A), q_init, dtype=_I64)
        self.qmax = np.full((k, self.S), q_init, dtype=_I64)
        self.qmax_action = np.zeros((k, self.S), dtype=_I64)

        # LFSR banks seeded exactly like PolicyDraws.from_config(salt=..).
        base_seed = config.seed + spec.salts * 0x9E37
        w = config.lfsr_width
        self._bank_start = LfsrBank(w, base_seed + 0x11)
        self._bank_action = LfsrBank(w, base_seed + 0x22)
        self._bank_policy = LfsrBank(w, base_seed + 0x33)
        self._egreedy_cut = _I64(egreedy_cut(config.epsilon, w))

        (self._alpha, _, self._one_minus_alpha, self._alpha_gamma) = config.coefficients()

        # Architectural lane state (-1 sentinels = "none").
        self._arch_state = np.full(k, -1, dtype=_I64)
        self._forwarded = np.full(k, -1, dtype=_I64)
        # Lag view of the most recent write (SARSA restart reads).
        self._prev_pair = np.full(k, -1, dtype=_I64)
        self._prev_state = np.full(k, -1, dtype=_I64)
        self._prev_q = np.zeros(k, dtype=_I64)
        self._prev_qmax = np.zeros(k, dtype=_I64)
        self._prev_qmax_action = np.zeros(k, dtype=_I64)

        self.stats = BatchStats(agents=k)
        self._rows = np.arange(k)
        #: Optional :class:`repro.robustness.guards.DivergenceGuard`
        #: observing every lock-step update vector (None = fast path).
        self.guard = None

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        #: Session pulsed once per lock-step step for live-metrics export.
        self._session = session
        if session is not None:
            session.attach(self, self._TELEMETRY_NAME)

    @property
    def n_lanes(self) -> int:
        """Lane count (alias of the historical ``K``)."""
        return self.K

    def telemetry_snapshot(self) -> dict:
        """Fleet-level counters for a telemetry profile."""
        return {
            "agents": self.K,
            "states": self.S,
            "actions": self.A,
            "samples_per_agent": self.stats.samples_per_agent,
            "total_samples": self.stats.samples,
            "episodes": self.stats.episodes,
            "exploits": self.stats.exploits,
            "explores": self.stats.explores,
        }

    # ------------------------------------------------------------------ #
    # Draw helpers (exactly the scalar UniformSource reductions)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _reduce(states: np.ndarray, m: int) -> np.ndarray:
        if m & (m - 1) == 0:
            return states & (m - 1)
        return states % m

    # ------------------------------------------------------------------ #
    # One lock-step sample for every lane
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        cfg = self.config
        rows = self._rows
        on_policy = cfg.is_on_policy
        A = self.A

        # ---- stage-1 equivalent: state + behaviour action ---- #
        restart = self._arch_state < 0
        start_states = self._reduce(
            self._bank_start.draw_where(restart, DECIMATION), self._starts.shape[1]
        )
        state = np.where(restart, self._starts[rows, start_states], self._arch_state)

        if cfg.behavior_policy == "random":
            action = self._reduce(self._bank_action.draw_all(DECIMATION), A)
        else:
            # SARSA: forwarded action, except at restarts where a fresh
            # e-greedy draw happens against the *lagged* table view.
            u = self._bank_policy.draw_where(restart, DECIMATION)
            exploit_b = u < self._egreedy_cut
            lag_hit = state == self._prev_state
            qmax_act = np.where(
                lag_hit, self._prev_qmax_action, self.qmax_action[rows, state]
            )
            explore_act = self._reduce(u, A)
            fresh = np.where(exploit_b, qmax_act, explore_act)
            action = np.where(restart, fresh, self._forwarded)

        pair = state * A + action
        s_next = self._next[rows, state, action].astype(_I64)
        terminal_next = self._terminal[rows, s_next]
        q_sa = self.q[rows, pair]
        r = self._rewards[rows, state, action]

        # ---- stage-2 equivalent: update policy ---- #
        if cfg.update_policy == "greedy":
            q_next = self.qmax[rows, s_next]
            a_next = self.qmax_action[rows, s_next]
            self.stats.exploits += self.K
        else:
            u = self._bank_policy.draw_all(DECIMATION)
            exploit = u < self._egreedy_cut
            explore_act = self._reduce(u, A)
            a_next = np.where(exploit, self.qmax_action[rows, s_next], explore_act)
            q_next = np.where(
                exploit,
                self.qmax[rows, s_next],
                self.q[rows, s_next * A + explore_act],
            )
            n_exploit = int(exploit.sum())
            self.stats.exploits += n_exploit
            self.stats.explores += self.K - n_exploit
        q_next = np.where(terminal_next, _I64(0), q_next)

        # ---- stage-3 equivalent: the shared datapath kernel ---- #
        q_new = ops.q_update(
            q_sa,
            r,
            q_next,
            alpha=self._alpha,
            one_minus_alpha=self._one_minus_alpha,
            alpha_gamma=self._alpha_gamma,
            coef_fmt=cfg.coef_format,
            q_fmt=cfg.q_format,
        )
        if self.guard is not None:
            self.guard.observe_array(q_new, cfg.q_format)

        # ---- stage-4 equivalent: write-back + Qmax rule ---- #
        self._prev_pair[:] = pair
        self._prev_state[:] = state
        self._prev_q[:] = q_sa
        self._prev_qmax[:] = self.qmax[rows, state]
        self._prev_qmax_action[:] = self.qmax_action[rows, state]

        self.q[rows, pair] = q_new
        mode = cfg.qmax_mode
        if mode == "exact":
            rows_q = self.q.reshape(self.K, self.S, self.A)[rows, state]
            best = np.argmax(rows_q, axis=1)
            self.qmax[rows, state] = rows_q[rows, best]
            self.qmax_action[rows, state] = best
        else:
            cur_val = self.qmax[rows, state]
            cur_act = self.qmax_action[rows, state]
            if mode == "monotonic":
                upd = q_new > cur_val
            else:  # follow
                upd = (action == cur_act) | (q_new > cur_val)
            self.qmax[rows, state] = np.where(upd, q_new, cur_val)
            self.qmax_action[rows, state] = np.where(upd, action, cur_act)

        self.stats.episodes += int(terminal_next.sum())
        self._arch_state = np.where(terminal_next, _I64(-1), s_next)
        if on_policy:
            self._forwarded = np.where(terminal_next, _I64(-1), a_next)

    def run(self, samples_per_agent: int) -> BatchStats:
        """Advance every lane by ``samples_per_agent`` updates."""
        if samples_per_agent < 0:
            raise ValueError("samples_per_agent must be non-negative")
        session = self._session
        for _ in range(samples_per_agent):
            self.step()
            if session is not None:
                session.pulse()
        self.stats.samples_per_agent += samples_per_agent
        return self.stats

    # ------------------------------------------------------------------ #
    # Checkpointing (see repro.robustness.checkpoint)
    # ------------------------------------------------------------------ #

    #: (array attribute, checkpoint key) pairs of the lane-vector state.
    _STATE_ARRAYS = (
        ("q", "q"),
        ("qmax", "qmax"),
        ("qmax_action", "qmax_action"),
        ("_arch_state", "arch_state"),
        ("_forwarded", "forwarded"),
        ("_prev_pair", "prev_pair"),
        ("_prev_state", "prev_state"),
        ("_prev_q", "prev_q"),
        ("_prev_qmax", "prev_qmax"),
        ("_prev_qmax_action", "prev_qmax_action"),
    )

    def state_dict(self) -> dict:
        """Full fleet checkpoint: every lane vector plus the three LFSR
        banks and the aggregate stats.  Restoring and re-running replays
        the exact lock-step trajectory (the engine is deterministic)."""
        state = {key: getattr(self, attr).copy() for attr, key in self._STATE_ARRAYS}
        state["lfsr"] = {
            "start": self._bank_start.states.copy(),
            "action": self._bank_action.states.copy(),
            "policy": self._bank_policy.states.copy(),
        }
        state["stats"] = vars(self.stats).copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint in place."""
        for attr, key in self._STATE_ARRAYS:
            getattr(self, attr)[:] = state[key]
        self._bank_start.states[:] = state["lfsr"]["start"]
        self._bank_action.states[:] = state["lfsr"]["action"]
        self._bank_policy.states[:] = state["lfsr"]["policy"]
        for key, value in state["stats"].items():
            setattr(self.stats, key, value)

    def lane_state(self, k: int, state: dict | None = None) -> dict:
        """Lane ``k``'s slice of a fleet checkpoint (default: a fresh
        :meth:`state_dict`), for per-lane rollback."""
        if state is None:
            state = self.state_dict()
        out = {key: state[key][k].copy() for _, key in self._STATE_ARRAYS}
        out["lfsr"] = {name: int(bank[k]) for name, bank in state["lfsr"].items()}
        return out

    def load_lane_state(self, k: int, lane: dict) -> None:
        """Restore one lane from a :meth:`lane_state` slice, leaving the
        other lanes (and the aggregate stats) untouched."""
        for attr, key in self._STATE_ARRAYS:
            getattr(self, attr)[k] = lane[key]
        self._bank_start.states[k] = lane["lfsr"]["start"]
        self._bank_action.states[k] = lane["lfsr"]["action"]
        self._bank_policy.states[k] = lane["lfsr"]["policy"]

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def q_float(self, agent: int) -> np.ndarray:
        """Lane ``agent``'s Q table as floats, ``(S, A)``."""
        return ops.to_float_array(
            self.q[agent].reshape(self.S, self.A), self.config.q_format
        )

    def q_float_all(self) -> np.ndarray:
        """All Q tables, ``(n_lanes, S, A)``."""
        return ops.to_float_array(
            self.q.reshape(self.K, self.S, self.A), self.config.q_format
        )
