"""A small blocking client for the session gateway.

:class:`ServeClient` wraps one TCP connection to a gateway and exposes
the wire protocol as plain method calls; :class:`ServeSession` scopes
them to one leased session.  Used by the example, the load generator in
:mod:`repro.perf.serve`, the CI smoke, and the end-to-end tests —
anything speaking NDJSON (``nc``, a dozen lines of any language) works
just as well.

Errors come back as :class:`ServeError` carrying the wire error code,
so callers can branch on ``exc.code == "at_capacity"`` etc.
"""

from __future__ import annotations

import socket
from typing import Iterable, Optional, Sequence

from . import protocol


class ServeError(Exception):
    """A gateway-refused request, carrying its wire error code."""

    def __init__(self, code: str, detail: str):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


class ServeClient:
    """One blocking NDJSON connection to a gateway."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------ #

    def request(self, message: dict) -> dict:
        """Send one request and block for its response (raises ServeError)."""
        self._sock.sendall(protocol.encode(message))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        response = protocol.decode(line)
        if not response.get("ok"):
            raise ServeError(
                response.get("error", protocol.E_INTERNAL),
                response.get("detail", "no detail"),
            )
        return response

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection-scoped ops ----------------------------------------- #

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def server_info(self) -> dict:
        return self.request({"op": "server"})

    def open_session(self) -> "ServeSession":
        """Lease a lane (raises ``ServeError(at_capacity)`` when full)."""
        resp = self.request({"op": "open"})
        return ServeSession(self, resp)


class ServeSession:
    """Session-scoped calls over an open :class:`ServeClient`."""

    def __init__(self, client: ServeClient, opened: dict):
        self._client = client
        self.sid = opened["session"]
        self.lane = opened["lane"]
        self.salt = opened["salt"]
        self.num_states = opened["states"]
        self.num_actions = opened["actions"]

    def _request(self, message: dict) -> dict:
        message["session"] = self.sid
        return self._client.request(message)

    def learn(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
    ) -> int:
        """Stream one transition; returns the written raw Q value."""
        return self._request(
            {"op": "learn", "s": state, "a": action, "r": reward,
             "ns": next_state, "t": terminal}
        )["q"]

    def learn_batch(self, transitions: Iterable[Sequence]) -> int:
        """Stream many transitions in one round-trip; returns last raw Q."""
        return self._request(
            {"op": "learn", "batch": [list(t) for t in transitions]}
        )["q"]

    def act(self, state: int, explore: bool = True) -> int:
        """Ask for an action recommendation at ``state``."""
        return self._request({"op": "act", "s": state, "explore": explore})["action"]

    def table(self, state: Optional[int] = None) -> list[int]:
        """Raw Q values: one state's row, or the full flattened table."""
        message: dict = {"op": "table"}
        if state is not None:
            message["s"] = state
        return self._request(message)["q"]

    def checkpoint(self, tag: Optional[str] = None) -> str:
        message: dict = {"op": "checkpoint"}
        if tag is not None:
            message["tag"] = tag
        return self._request(message)["tag"]

    def restore(self, tag: Optional[str] = None) -> str:
        message: dict = {"op": "restore"}
        if tag is not None:
            message["tag"] = tag
        return self._request(message)["tag"]

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def close(self) -> None:
        self._request({"op": "close"})
