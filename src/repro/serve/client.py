"""A small resilient blocking client for the session gateway.

:class:`ServeClient` wraps one TCP connection to a gateway and exposes
the wire protocol as plain method calls; :class:`ServeSession` scopes
them to one leased session.  Used by the example, the load generator in
:mod:`repro.perf.serve`, the chaos campaign, the CI smokes, and the
end-to-end tests — anything speaking NDJSON (``nc``, a dozen lines of
any language) works just as well.

Resilience (all opt-out via ``max_attempts=1``):

* **reconnect + retry with full-jitter exponential backoff** on
  transport failures (peer reset, timeout, refused reconnect, garbage
  where a response should be).  A request is only retried when doing so
  is provably safe: either it is naturally idempotent (reads, pings) or
  it carries a per-session ``seq`` request id, in which case the
  gateway's exactly-once cache replays the original response instead of
  re-applying the op;
* **response correlation**: :class:`ServeSession` stamps every mutating
  op with a fresh ``seq`` and the client verifies the echo, so a
  desynchronised stream (e.g. a half-delivered earlier response) is
  detected and repaired by reconnecting rather than misattributed;
* **session resumption**: the resume ``token`` from ``open`` rides on
  every session request, so a retry on a *new* TCP connection adopts
  the session server-side and continues the same lane bit-exactly.

Errors come back as :class:`ServeError` carrying the wire error code
(and the server's ``retry_after`` hint when present), so callers can
branch on ``exc.code == "at_capacity"`` etc.

Observability: constructed with a ``tracer``
(:class:`repro.obs.tracing.Tracer`), the client opens one
``client.<op>`` span per request — covering every reconnect/retry
attempt, i.e. the tenant-visible round-trip — and sends its context as
the protocol's optional ``trace`` field, so the gateway's server-side
spans parent under it in a merged timeline.  The hot per-transition
ops (``protocol.SAMPLED_OPS``) are *head-sampled*: only every
``1/trace_sample``-th such request starts a trace (default 1-in-16), a
decision the gateway inherits via the presence of the ``trace`` field,
which is what keeps tracing inside its <5% throughput budget — pass
``trace_sample=1.0`` to trace everything.  Structural ops are always
traced.  A ``tenant`` label, when set, rides on every ``open`` for
per-tenant SLO accounting.  All of it is ignored by gateways that
predate the fields.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Iterable, Optional, Sequence

from . import protocol

#: Default head-sampling rate for the hot ops (``SAMPLED_OPS``): one
#: traced request in sixteen.  A sampled request pays the full two-span
#: client+gateway cost (~25us end-to-end on loopback, GIL ping-pong
#: included), so 1-in-16 keeps steady-state tracing at ~1.5% of serve
#: throughput — comfortably inside the 5% budget that
#: :mod:`repro.obs.overhead` gates (see there for the measurement).
DEFAULT_TRACE_SAMPLE = 0.0625

#: Per-op client span names, precomputed off the hot path.
_SPAN_NAMES = {op: f"client.{op}" for op in protocol.OPS}


class ServeError(Exception):
    """A gateway-refused request, carrying its wire error code.

    ``retry_after`` (seconds) is the server's computed hint for
    ``at_capacity``/``throttled`` refusals, else ``None``.
    """

    def __init__(self, code: str, detail: str, *, retry_after: Optional[float] = None):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


class ServeClient:
    """One blocking NDJSON connection to a gateway, with retries."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        rng: Optional[random.Random] = None,
        tracer=None,
        tenant: Optional[str] = None,
        trace_sample: float = DEFAULT_TRACE_SAMPLE,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.tracer = tracer
        self.tenant = tenant
        # Deterministic stride sampling (cheaper than random() and
        # reproducible in tests): hot ops trace every Nth request.
        self._trace_stride = (
            max(1, round(1.0 / trace_sample)) if trace_sample > 0 else 0
        )
        self._trace_tick = 0
        self._rng = rng if rng is not None else random.Random()
        self.retries = 0
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._connect()

    # -- plumbing ------------------------------------------------------ #

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._rfile = self._sock.makefile("rb")

    def _drop(self) -> None:
        """Tear the transport down; the next attempt reconnects fresh.

        Always reconnect rather than reuse after a failure: the old
        stream may hold a late response that would desynchronise
        request/response pairing.
        """
        try:
            if self._rfile is not None:
                self._rfile.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        self._sock = None
        self._rfile = None

    def _backoff(self, attempt: int) -> None:
        cap = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
        time.sleep(self._rng.uniform(0.0, cap))

    def _exchange(self, message: dict) -> dict:
        """One send/receive round-trip on the current transport."""
        if self._sock is None:
            self.reconnects += 1
            self._connect()
        self._sock.sendall(protocol.encode(message))
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        try:
            response = protocol.decode(line)
        except protocol.ProtocolError:
            # Garbage where a response should be: the stream can no
            # longer be trusted to stay request-aligned.
            raise ConnectionError("undecodable response frame") from None
        if "seq" in message and response.get("seq") != message["seq"]:
            raise ConnectionError(
                f"response seq {response.get('seq')!r} does not match "
                f"request seq {message['seq']!r}; stream desynchronised"
            )
        return response

    def request(self, message: dict, *, idempotent: bool = False) -> dict:
        """Send one request and block for its response (raises ServeError).

        Transport failures are retried (after reconnecting, with
        full-jitter exponential backoff) only when that cannot
        double-apply the op: the request is ``idempotent``, or it
        carries a session ``seq`` so the gateway's exactly-once cache
        absorbs the replay.
        """
        retry_safe = idempotent or ("seq" in message and "session" in message)
        op = message.get("op")
        if self.tenant is not None and op == "open":
            message = {**message, "tenant": self.tenant}
        if self.tracer is None:
            return self._attempts(message, retry_safe)
        if op in protocol.SAMPLED_OPS:
            # Head sampling: only every Nth hot-op request starts a
            # trace; the gateway inherits the decision from the
            # presence (or absence) of the `trace` field.
            tick = self._trace_tick
            self._trace_tick = tick + 1
            if self._trace_stride == 0 or tick % self._trace_stride:
                return self._attempts(message, retry_safe)
        # One client span covers the whole tenant-visible round-trip,
        # reconnects and retries included; its context rides the wire so
        # the gateway's server span parents under it.
        with self.tracer.span(_SPAN_NAMES.get(op, "client.?")) as span:
            traced = {
                **message,
                "trace": {"trace_id": span.trace_id, "span_id": span.span_id},
            }
            before = self.retries
            try:
                return self._attempts(traced, retry_safe)
            finally:
                if self.retries != before:
                    span.set("retries", self.retries - before)

    def _attempts(self, message: dict, retry_safe: bool) -> dict:
        attempts = self.max_attempts if retry_safe else 1
        last_exc: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                self.retries += 1
                self._backoff(attempt - 1)
            try:
                response = self._exchange(message)
            except (ConnectionError, socket.timeout, OSError) as exc:
                self._drop()
                last_exc = exc
                continue
            if not response.get("ok"):
                raise ServeError(
                    response.get("error", protocol.E_INTERNAL),
                    response.get("detail", "no detail"),
                    retry_after=response.get("retry_after"),
                )
            return response
        assert last_exc is not None
        raise last_exc

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection-scoped ops ----------------------------------------- #

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}, idempotent=True).get("pong"))

    def server_info(self) -> dict:
        return self.request({"op": "server"}, idempotent=True)

    def open_session(
        self,
        deadline_ms: Optional[float] = None,
        *,
        tenant: Optional[str] = None,
    ) -> "ServeSession":
        """Lease a lane (raises ``ServeError(at_capacity)`` when full)."""
        message: dict = {"op": "open"}
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        if tenant is not None:
            message["tenant"] = tenant
        resp = self.request(message)
        return ServeSession(self, resp)


class ServeSession:
    """Session-scoped calls over an open :class:`ServeClient`.

    Every request carries the session's resume ``token`` (so a retried
    request on a fresh connection re-adopts the session), and every
    mutating op a strictly increasing ``seq`` (so a retry is applied
    exactly once).
    """

    def __init__(self, client: ServeClient, opened: dict):
        self._client = client
        self.sid = opened["session"]
        self.lane = opened["lane"]
        self.salt = opened["salt"]
        self.token = opened.get("token")
        self.num_states = opened["states"]
        self.num_actions = opened["actions"]
        self._seq = 0

    def _request(
        self,
        message: dict,
        *,
        mutating: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> dict:
        message["session"] = self.sid
        if self.token is not None:
            message["token"] = self.token
        if mutating:
            self._seq += 1
            message["seq"] = self._seq
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return self._client.request(message, idempotent=not mutating)

    def learn(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
        *,
        deadline_ms: Optional[float] = None,
    ) -> int:
        """Stream one transition; returns the written raw Q value."""
        return self._request(
            {"op": "learn", "s": state, "a": action, "r": reward,
             "ns": next_state, "t": terminal},
            mutating=True,
            deadline_ms=deadline_ms,
        )["q"]

    def learn_batch(
        self,
        transitions: Iterable[Sequence],
        *,
        deadline_ms: Optional[float] = None,
    ) -> int:
        """Stream many transitions in one round-trip; returns last raw Q."""
        return self._request(
            {"op": "learn", "batch": [list(t) for t in transitions]},
            mutating=True,
            deadline_ms=deadline_ms,
        )["q"]

    def act(
        self,
        state: int,
        explore: bool = True,
        *,
        deadline_ms: Optional[float] = None,
    ) -> int:
        """Ask for an action recommendation at ``state``."""
        return self._request(
            {"op": "act", "s": state, "explore": explore},
            mutating=True,
            deadline_ms=deadline_ms,
        )["action"]

    def table(self, state: Optional[int] = None) -> list[int]:
        """Raw Q values: one state's row, or the full flattened table."""
        message: dict = {"op": "table"}
        if state is not None:
            message["s"] = state
        return self._request(message)["q"]

    def checkpoint(self, tag: Optional[str] = None) -> str:
        message: dict = {"op": "checkpoint"}
        if tag is not None:
            message["tag"] = tag
        return self._request(message, mutating=True)["tag"]

    def restore(self, tag: Optional[str] = None) -> str:
        message: dict = {"op": "restore"}
        if tag is not None:
            message["tag"] = tag
        return self._request(message, mutating=True)["tag"]

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def close(self) -> None:
        """End the session (tolerates it being already gone server-side)."""
        try:
            self._request({"op": "close"})
        except ServeError as exc:
            if exc.code != protocol.E_NO_SESSION:
                raise
