"""Session bookkeeping: leasing fleet lanes to external clients.

The :class:`SessionManager` is the synchronous heart of the gateway —
it owns the mapping from client sessions to backend lanes and is the
only component that touches the backend.  The asyncio layer in
:mod:`repro.serve.gateway` is a thin transport over it, so everything
behaviourally interesting (admission, recycling, checkpointing, crash
recovery) is testable without a socket.

A *session* is one leased lane plus its replay journal:

* **lease** — ``open()`` pops a free lane, re-seeds it with a fresh
  salt via ``backend.reset_lane`` (salts count up from ``backend.K``
  so they can never collide with the native lane salts ``0..K-1``),
  and snapshots the pristine lane as the journal's base;
* **journal** — every ``learn`` and every *exploring* ``act`` is
  appended (non-exploring queries are pure table reads and consume no
  LFSR draw, so they need no replay).  The journal is re-based onto a
  fresh lane snapshot every ``checkpoint_every`` entries, keeping
  recovery replay O(``checkpoint_every``) regardless of session length;
* **recovery** — when :meth:`maintenance` learns from
  ``backend.check_workers()`` that a crashed shard rolled lanes back,
  each affected session is restored from its journal base and the
  journal replayed.  Replay re-consumes the same LFSR draws in the
  same order, so the recovered lane is bit-identical to the pre-crash
  one (asserted by the test suite);
* **recycle** — ``close()`` returns the lane to the free pool; the
  next lease re-seeds it, so sessions can never observe each other's
  tables.

Per-tenant named checkpoints ride on the existing
:class:`~repro.robustness.checkpoint.CheckpointStore` (a small ring per
session); restoring one also re-bases the journal so crash recovery
and explicit restore compose.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..envs.base import DenseMdp
from ..robustness.checkpoint import CheckpointStore
from .protocol import E_AT_CAPACITY, E_NO_SESSION, ProtocolError


def serve_world(num_states: int, num_actions: int) -> DenseMdp:
    """A placeholder world for serve-only fleets.

    External transitions bypass the backend's environment tables
    entirely — only the ``(|S|, |A|)`` shape matters — so a gateway
    that never calls ``run()`` can be built over this trivial MDP.
    """
    return DenseMdp(
        next_state=np.zeros((num_states, num_actions), dtype=np.int32),
        rewards=np.zeros((num_states, num_actions), dtype=np.float64),
        terminal=np.zeros(num_states, dtype=bool),
        start_states=np.array([0], dtype=np.int64),
        name=f"serve-{num_states}x{num_actions}",
    )


def build_serve_backend(
    config,
    *,
    engine: str = "vectorized",
    lanes: int = 64,
    num_states: int = 128,
    num_actions: int = 4,
    num_workers: int = 2,
    mp_context: Optional[str] = None,
    telemetry=None,
):
    """Construct a fleet backend sized for serving (via ``make_engine``)."""
    from ..core.engine import make_engine

    world = serve_world(num_states, num_actions)
    kw: dict = {"num_agents": lanes, "telemetry": telemetry}
    if engine == "sharded":
        kw["num_workers"] = num_workers
        if mp_context is not None:
            kw["mp_context"] = mp_context
        return make_engine(config, engine="sharded", mdps=world, **kw)
    if engine == "scalar":
        from ..backends.base import make_fleet_backend

        return make_fleet_backend(world, config, backend="scalar", **kw)
    return make_engine(config, engine=engine, mdps=world, **kw)


@dataclass
class SessionRecord:
    """One live client session: a leased lane plus its replay journal."""

    sid: str
    lane: int
    salt: int
    #: Lane snapshot the journal replays on top of.
    base: dict = field(repr=False, default=None)
    #: Ops since ``base``: ``("learn", s, a, r, ns, t)`` / ``("act", s)``.
    journal: list = field(default_factory=list, repr=False)
    #: Named per-tenant checkpoints (each entry: lane snapshot + journal).
    store: CheckpointStore = field(default_factory=CheckpointStore, repr=False)
    samples: int = 0
    queries: int = 0
    checkpoints: int = 0
    restores: int = 0
    recoveries: int = 0


class SessionManager:
    """Multiplexes client sessions onto the lanes of one fleet backend.

    Thread-safe: every public method takes the manager lock, so the
    asyncio gateway, the load generator's worker threads and the
    maintenance loop can share one manager.  Admission is *immediate*
    at this layer — ``open()`` raises ``at_capacity`` when no lane is
    free; the queue-with-timeout lives in the gateway, which owns the
    event loop the wait must happen on.
    """

    def __init__(
        self,
        backend,
        *,
        max_sessions: Optional[int] = None,
        checkpoint_every: int = 64,
        store_capacity: int = 4,
        telemetry=None,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.backend = backend
        self.K = backend.K
        self.max_sessions = min(max_sessions or self.K, self.K)
        if self.max_sessions < 1:
            raise ValueError("need at least one admissible session")
        self.checkpoint_every = checkpoint_every
        self.store_capacity = store_capacity
        self._lock = threading.RLock()
        self._free: deque[int] = deque(range(self.K))
        self._sessions: dict[str, SessionRecord] = {}
        self._lane_owner: dict[int, str] = {}
        # Session salts start past the native lane salts 0..K-1 so a
        # leased lane can never replay a resident agent's draw stream.
        self._salts = itertools.count(self.K)
        self._sids = itertools.count(1)
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_rejected = 0
        self.recoveries = 0
        self.transitions_total = 0
        self.queries_total = 0

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        self._telemetry = session
        self._counters = None
        if session is not None:
            session.attach(self, "serve")
            self._counters = session.group("serve.sessions")

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #

    @property
    def open_sessions(self) -> int:
        return len(self._sessions)

    def has_capacity(self) -> bool:
        with self._lock:
            return bool(self._free) and len(self._sessions) < self.max_sessions

    def note_rejected(self) -> None:
        """Record one admission refusal (called by the gateway on timeout)."""
        with self._lock:
            self.sessions_rejected += 1
            self._count("sessions_rejected", self.sessions_rejected)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def open(self) -> SessionRecord:
        """Lease a lane for a new session (``at_capacity`` if none free)."""
        with self._lock:
            if not self.has_capacity():
                self.sessions_rejected += 1
                self._count("sessions_rejected", self.sessions_rejected)
                raise ProtocolError(
                    E_AT_CAPACITY,
                    f"all {self.max_sessions} session slots are leased",
                )
            lane = self._free.popleft()
            salt = next(self._salts)
            sid = f"s{next(self._sids):06d}"
            self.backend.reset_lane(lane, salt)
            rec = SessionRecord(
                sid=sid,
                lane=lane,
                salt=salt,
                base=self.backend.lane_state(lane),
                store=CheckpointStore(capacity=self.store_capacity),
            )
            self._sessions[sid] = rec
            self._lane_owner[lane] = sid
            self.sessions_opened += 1
            self._count("sessions_open", len(self._sessions))
            self._count("sessions_opened", self.sessions_opened)
            return rec

    def close(self, sid: str) -> None:
        """End a session, returning its lane to the free pool."""
        with self._lock:
            rec = self._get(sid)
            del self._sessions[sid]
            del self._lane_owner[rec.lane]
            self._free.append(rec.lane)
            self.sessions_closed += 1
            self._count("sessions_open", len(self._sessions))
            self._count("sessions_closed", self.sessions_closed)

    def close_all(self) -> None:
        with self._lock:
            for sid in list(self._sessions):
                self.close(sid)

    # ------------------------------------------------------------------ #
    # Traffic
    # ------------------------------------------------------------------ #

    def learn(
        self,
        sid: str,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
    ) -> int:
        """Retire one external transition on the session's lane."""
        with self._lock:
            rec = self._get(sid)
            q_new = self.backend.apply_transition(
                rec.lane, state, action, reward, next_state, terminal
            )
            rec.journal.append(("learn", state, action, reward, next_state, terminal))
            rec.samples += 1
            self.transitions_total += 1
            self._maybe_rebase(rec)
            if self._counters is not None:
                self._counters.inc("transitions")
            return q_new

    def learn_batch(self, sid: str, transitions: Iterable[tuple]) -> int:
        """Retire a sequence of transitions; returns the last ``q_new``."""
        q_new = 0
        for s, a, r, ns, t in transitions:
            q_new = self.learn(sid, s, a, r, ns, t)
        return q_new

    def act(self, sid: str, state: int, explore: bool = True) -> int:
        """Recommend an action from the session's committed tables."""
        with self._lock:
            rec = self._get(sid)
            action = self.backend.query_action(rec.lane, state, explore)
            if explore:
                # An exploring query consumes one policy draw, so it
                # must be journalled for bit-exact crash replay.
                rec.journal.append(("act", state))
                self._maybe_rebase(rec)
            rec.queries += 1
            self.queries_total += 1
            if self._counters is not None:
                self._counters.inc("queries")
            return action

    def q_row(self, sid: str, state: Optional[int] = None) -> list[int]:
        """Raw Q values — one state's row, or the whole table flattened."""
        with self._lock:
            rec = self._get(sid)
            table = self.backend.q[rec.lane]
            if state is None:
                return [int(v) for v in table]
            A = self.backend.A
            return [int(v) for v in table[state * A : (state + 1) * A]]

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def checkpoint(self, sid: str, tag: Optional[str] = None) -> str:
        """Snapshot the session's lane under ``tag`` (auto-named if None)."""
        with self._lock:
            rec = self._get(sid)
            rec.checkpoints += 1
            tag = tag if tag is not None else f"ckpt-{rec.checkpoints}"
            rec.store.push(tag, self.backend.lane_state(rec.lane))
            if self._counters is not None:
                self._counters.inc("checkpoints")
            return tag

    def restore(self, sid: str, tag: Optional[str] = None) -> str:
        """Roll the session's lane back to ``tag`` (default: latest)."""
        with self._lock:
            rec = self._get(sid)
            if tag is None:
                entry = rec.store.latest()
                if entry is None:
                    raise ProtocolError(
                        E_NO_SESSION, f"session {sid} has no checkpoints"
                    )
                tag, state = entry
            else:
                state = rec.store.get(tag)
                if state is None:
                    raise ProtocolError(
                        E_NO_SESSION, f"session {sid} has no checkpoint {tag!r}"
                    )
            self.backend.load_lane_state(rec.lane, state)
            # The restored snapshot becomes the new journal base so a
            # later crash recovery replays from here, not from before
            # the restore.
            rec.base = state
            rec.journal = []
            rec.restores += 1
            if self._counters is not None:
                self._counters.inc("restores")
            return tag

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #

    def recover_lanes(self, ranges: Sequence[tuple[int, int]]) -> list[str]:
        """Re-derive sessions whose lanes a shard rollback clobbered.

        ``ranges`` is ``check_workers()``'s list of half-open lane
        intervals that were rolled back to the shard checkpoint.  Each
        affected session is restored from its journal base and the
        journal replayed — the replay re-consumes the identical LFSR
        draws, so the lane lands bit-exactly where it was.
        """
        recovered = []
        with self._lock:
            for lo, hi in ranges:
                for lane in range(lo, hi):
                    sid = self._lane_owner.get(lane)
                    if sid is None:
                        continue  # free lane; next lease re-seeds it anyway
                    rec = self._sessions[sid]
                    self.backend.load_lane_state(lane, rec.base)
                    for entry in rec.journal:
                        if entry[0] == "learn":
                            _, s, a, r, ns, t = entry
                            self.backend.apply_transition(lane, s, a, r, ns, t)
                        else:
                            self.backend.query_action(lane, entry[1], True)
                    rec.recoveries += 1
                    self.recoveries += 1
                    recovered.append(sid)
            if recovered:
                self._count("recoveries", self.recoveries)
        return recovered

    def maintenance(self) -> list[str]:
        """Probe backend health; recover sessions hit by a dead worker.

        Runs under the manager lock: ``check_workers`` rolls crashed
        shards back to their last checkpoint, which must not race a
        concurrent parent-side ``apply_transition`` on those lanes.
        """
        check = getattr(self.backend, "check_workers", None)
        if check is None:
            return []
        with self._lock:
            ranges = check()
            if not ranges:
                return []
            return self.recover_lanes(ranges)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self, sid: str) -> dict:
        with self._lock:
            rec = self._get(sid)
            return {
                "session": rec.sid,
                "lane": rec.lane,
                "salt": rec.salt,
                "samples": rec.samples,
                "queries": rec.queries,
                "checkpoints": rec.checkpoints,
                "restores": rec.restores,
                "recoveries": rec.recoveries,
                "journal_depth": len(rec.journal),
                "tags": rec.store.tags(),
            }

    def server_info(self) -> dict:
        with self._lock:
            return {
                "lanes": self.K,
                "max_sessions": self.max_sessions,
                "open_sessions": len(self._sessions),
                "free_lanes": len(self._free),
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
                "sessions_rejected": self.sessions_rejected,
                "recoveries": self.recoveries,
                "backend": type(self.backend).__name__,
                "states": self.backend.S,
                "actions": self.backend.A,
            }

    def telemetry_snapshot(self) -> dict:
        """Serve-level counters for a telemetry profile."""
        info = self.server_info()
        with self._lock:
            info["transitions"] = self.transitions_total
            info["queries"] = self.queries_total
        return info

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _get(self, sid: str) -> SessionRecord:
        rec = self._sessions.get(sid)
        if rec is None:
            raise ProtocolError(E_NO_SESSION, f"unknown session {sid!r}")
        return rec

    def _maybe_rebase(self, rec: SessionRecord) -> None:
        if len(rec.journal) >= self.checkpoint_every:
            rec.base = self.backend.lane_state(rec.lane)
            rec.journal = []

    def _count(self, name: str, value: int) -> None:
        if self._counters is not None:
            self._counters.set(name, value)
