"""Session bookkeeping: leasing fleet lanes to external clients.

The :class:`SessionManager` is the synchronous heart of the gateway —
it owns the mapping from client sessions to backend lanes and is the
only component that touches the backend.  The asyncio layer in
:mod:`repro.serve.gateway` is a thin transport over it, so everything
behaviourally interesting (admission, recycling, checkpointing, crash
recovery) is testable without a socket.

A *session* is one leased lane plus its replay journal:

* **lease** — ``open()`` pops a free lane, re-seeds it with a fresh
  salt via ``backend.reset_lane`` (salts count up from ``backend.K``
  so they can never collide with the native lane salts ``0..K-1``),
  and snapshots the pristine lane as the journal's base;
* **journal** — every ``learn`` and every *exploring* ``act`` is
  appended (non-exploring queries are pure table reads and consume no
  LFSR draw, so they need no replay).  The journal is re-based onto a
  fresh lane snapshot every ``checkpoint_every`` entries, keeping
  recovery replay O(``checkpoint_every``) regardless of session length;
* **recovery** — when :meth:`maintenance` learns from
  ``backend.check_workers()`` that a crashed shard rolled lanes back,
  each affected session is restored from its journal base and the
  journal replayed.  Replay re-consumes the same LFSR draws in the
  same order, so the recovered lane is bit-identical to the pre-crash
  one (asserted by the test suite);
* **recycle** — ``close()`` returns the lane to the free pool; the
  next lease re-seeds it, so sessions can never observe each other's
  tables.

Per-tenant named checkpoints ride on the existing
:class:`~repro.robustness.checkpoint.CheckpointStore` (a small ring per
session); restoring one also re-bases the journal so crash recovery
and explicit restore compose.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..envs.base import DenseMdp
from ..robustness.checkpoint import CheckpointStore
from .protocol import (
    E_AT_CAPACITY,
    E_BAD_REQUEST,
    E_DEADLINE,
    E_FORBIDDEN,
    E_NO_SESSION,
    ProtocolError,
)
from ..obs.slo import DEFAULT_TENANT, sanitize_tenant

#: Reusable no-op context for the untraced hot path (nullcontext is
#: stateless, so one shared instance serves every call).
_NOSPAN = nullcontext()


def serve_world(num_states: int, num_actions: int) -> DenseMdp:
    """A placeholder world for serve-only fleets.

    External transitions bypass the backend's environment tables
    entirely — only the ``(|S|, |A|)`` shape matters — so a gateway
    that never calls ``run()`` can be built over this trivial MDP.
    """
    return DenseMdp(
        next_state=np.zeros((num_states, num_actions), dtype=np.int32),
        rewards=np.zeros((num_states, num_actions), dtype=np.float64),
        terminal=np.zeros(num_states, dtype=bool),
        start_states=np.array([0], dtype=np.int64),
        name=f"serve-{num_states}x{num_actions}",
    )


def build_serve_backend(
    config,
    *,
    engine: str = "vectorized",
    lanes: int = 64,
    num_states: int = 128,
    num_actions: int = 4,
    num_workers: int = 2,
    mp_context: Optional[str] = None,
    telemetry=None,
    **backend_kw,
):
    """Construct a fleet backend sized for serving (via ``make_engine``).

    Extra keyword arguments pass through to the backend constructor
    (e.g. the sharded backend's ``ping_timeout_s``/``hang_timeout_s``
    watchdog knobs, tightened by the chaos campaign).
    """
    from ..core.engine import make_engine

    world = serve_world(num_states, num_actions)
    kw: dict = {"num_agents": lanes, "telemetry": telemetry, **backend_kw}
    if engine == "sharded":
        kw["num_workers"] = num_workers
        if mp_context is not None:
            kw["mp_context"] = mp_context
        return make_engine(config, engine="sharded", mdps=world, **kw)
    if engine == "scalar":
        from ..backends.base import make_fleet_backend

        return make_fleet_backend(world, config, backend="scalar", **kw)
    return make_engine(config, engine=engine, mdps=world, **kw)


def _lane_states_equal(a: dict, b: dict) -> bool:
    """Field-wise equality of two ``lane_state`` payloads (bit-exact)."""
    if set(a) != set(b):
        return False
    for key, val in a.items():
        other = b[key]
        if isinstance(val, dict):
            if val != other:
                return False
        elif not np.array_equal(np.asarray(val), np.asarray(other)):
            return False
    return True


@dataclass
class SessionRecord:
    """One live client session: a leased lane plus its replay journal."""

    sid: str
    lane: int
    salt: int
    #: Sanitized tenant label (``anon`` when ``open`` carried none);
    #: keys the per-tenant SLO histograms and error budgets.
    tenant: str = DEFAULT_TENANT
    #: Resume token: a connection that presents it adopts the session.
    token: str = ""
    #: Opaque id of the owning connection (None for direct API users).
    owner: Optional[int] = None
    #: Monotonic time the owning connection dropped (None while owned).
    orphaned_at: Optional[float] = None
    #: Monotonic open time (feeds the retry_after lifetime estimate).
    opened_at: float = 0.0
    #: Highest applied ``seq`` request id, with its cached response —
    #: the exactly-once retry cache (see protocol.py).
    last_seq: int = 0
    last_reply: Optional[dict] = field(default=None, repr=False)
    #: Lane snapshot the journal replays on top of.
    base: dict = field(repr=False, default=None)
    #: Ops since ``base``: ``("learn", s, a, r, ns, t)`` / ``("act", s)``.
    journal: list = field(default_factory=list, repr=False)
    #: Named per-tenant checkpoints (each entry: lane snapshot + journal).
    store: CheckpointStore = field(default_factory=CheckpointStore, repr=False)
    samples: int = 0
    queries: int = 0
    checkpoints: int = 0
    restores: int = 0
    recoveries: int = 0
    audits: int = 0
    repairs: int = 0


class SessionManager:
    """Multiplexes client sessions onto the lanes of one fleet backend.

    Thread-safe: every public method takes the manager lock, so the
    asyncio gateway, the load generator's worker threads and the
    maintenance loop can share one manager.  Admission is *immediate*
    at this layer — ``open()`` raises ``at_capacity`` when no lane is
    free; the queue-with-timeout lives in the gateway, which owns the
    event loop the wait must happen on.
    """

    def __init__(
        self,
        backend,
        *,
        max_sessions: Optional[int] = None,
        checkpoint_every: int = 64,
        store_capacity: int = 4,
        session_linger_s: float = 2.0,
        audit_every: int = 0,
        failover: Optional[str] = "vectorized",
        telemetry=None,
        tracer=None,
        recorder=None,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if session_linger_s < 0:
            raise ValueError("session_linger_s must be non-negative")
        self.backend = backend
        self.K = backend.K
        self.max_sessions = min(max_sessions or self.K, self.K)
        if self.max_sessions < 1:
            raise ValueError("need at least one admissible session")
        self.checkpoint_every = checkpoint_every
        self.store_capacity = store_capacity
        #: How long a session whose connection dropped keeps its lane,
        #: waiting for a token-bearing reconnect, before being closed.
        self.session_linger_s = session_linger_s
        #: Audit (journal-replay scrub) this many sessions per
        #: maintenance pass; 0 disables the scrub.
        self.audit_every = audit_every
        #: Backend engine to fail over to when the current backend
        #: quarantines a shard (None disables failover).
        self.failover_to = failover
        self._lock = threading.RLock()
        self._free: deque[int] = deque(range(self.K))
        self._sessions: dict[str, SessionRecord] = {}
        self._lane_owner: dict[int, str] = {}
        # Session salts start past the native lane salts 0..K-1 so a
        # leased lane can never replay a resident agent's draw stream.
        self._salts = itertools.count(self.K)
        self._sids = itertools.count(1)
        self._audit_cursor = 0
        #: EWMA of observed session lifetimes (seconds); seeds the
        #: computed ``retry_after`` hint on admission refusals.
        self._lifetime_ewma: Optional[float] = None
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_rejected = 0
        self.sessions_shed = 0
        self.sessions_expired = 0
        self.recoveries = 0
        self.failovers = 0
        self.audits = 0
        self.repairs = 0
        self.transitions_total = 0
        self.queries_total = 0
        self.deadline_aborts = 0
        self.throttled = 0
        #: Per-tenant error-budget/lifecycle totals
        #: (``{tenant: {key: n}}``), mirrored into the registry as
        #: ``serve.tenant.<tenant>.<key>`` counters so one noisy tenant
        #: cannot hide another's burn in the OpenMetrics output.
        self.tenant_stats: dict[str, dict[str, int]] = {}
        #: Optional :class:`repro.obs.tracing.Tracer` — spans the
        #: structural ops (open/close/checkpoint/restore/batch/replay/
        #: recovery/audit/failover); single learns/acts stay span-free
        #: here because the gateway's per-request server span already
        #: times them.
        self._tracer = tracer
        #: Optional :class:`repro.obs.recorder.FlightRecorder` for
        #: structured events (recoveries, failovers, audit repairs,
        #: deadline aborts).
        self._recorder = recorder

        from ..telemetry.session import current_session

        session = telemetry if telemetry is not None else current_session()
        self._telemetry = session
        self._counters = None
        self._tenant_counters = None
        if session is not None:
            session.attach(self, "serve")
            self._counters = session.group("serve.sessions")
            self._tenant_counters = session.group("serve.tenant")

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #

    @property
    def open_sessions(self) -> int:
        return len(self._sessions)

    def has_capacity(self) -> bool:
        with self._lock:
            return bool(self._free) and len(self._sessions) < self.max_sessions

    def note_rejected(self, tenant: Optional[str] = None) -> None:
        """Record one admission refusal (called by the gateway on timeout)."""
        with self._lock:
            self.sessions_rejected += 1
            self._count("sessions_rejected", self.sessions_rejected)
            self._tenant_count(tenant, "sessions_rejected")

    def note_shed(self, tenant: Optional[str] = None) -> None:
        """Record one load-shed refusal (admission queue already full)."""
        with self._lock:
            self.sessions_rejected += 1
            self.sessions_shed += 1
            self._count("sessions_rejected", self.sessions_rejected)
            self._count("sessions_shed", self.sessions_shed)
            self._tenant_count(tenant, "sessions_rejected")
            self._tenant_count(tenant, "sessions_shed")

    def note_throttled(self, tenant: Optional[str] = None) -> None:
        """Record one circuit-breaker refusal (gateway ``throttled``)."""
        with self._lock:
            self.throttled += 1
            self._count("throttled", self.throttled)
            self._tenant_count(tenant, "throttled")

    def note_retry(self, tenant: Optional[str] = None) -> None:
        """Record one exactly-once cache replay (a client retried)."""
        with self._lock:
            self._tenant_count(tenant, "retries")

    def retry_after_hint(self, pending: int = 0) -> float:
        """A computed retry hint for ``at_capacity`` refusals, in seconds.

        Scales the EWMA of observed session lifetimes by how many
        turnovers must happen before the caller (plus ``pending``
        earlier waiters) gets a lane.  Falls back to a small constant
        before any session has completed.
        """
        with self._lock:
            est = self._lifetime_ewma
            if est is None:
                return 0.25
            hint = est * (pending + 1) / max(1, self.max_sessions)
            return min(60.0, max(0.05, hint))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def open(
        self, owner: Optional[int] = None, tenant: Optional[str] = None
    ) -> SessionRecord:
        """Lease a lane for a new session (``at_capacity`` if none free)."""
        with self._lock, self._span("session.open", tenant=tenant):
            if not self.has_capacity():
                self.sessions_rejected += 1
                self._count("sessions_rejected", self.sessions_rejected)
                self._tenant_count(tenant, "sessions_rejected")
                raise ProtocolError(
                    E_AT_CAPACITY,
                    f"all {self.max_sessions} session slots are leased",
                    retry_after=self.retry_after_hint(),
                )
            lane = self._free.popleft()
            salt = next(self._salts)
            sid = f"s{next(self._sids):06d}"
            self.backend.reset_lane(lane, salt)
            rec = SessionRecord(
                sid=sid,
                lane=lane,
                salt=salt,
                tenant=sanitize_tenant(tenant),
                token=secrets.token_hex(8),
                owner=owner,
                opened_at=time.monotonic(),
                base=self.backend.lane_state(lane),
                store=CheckpointStore(capacity=self.store_capacity),
            )
            self._sessions[sid] = rec
            self._lane_owner[lane] = sid
            self.sessions_opened += 1
            self._count("sessions_open", len(self._sessions))
            self._count("sessions_opened", self.sessions_opened)
            self._tenant_count(tenant, "sessions_opened")
            return rec

    def close(self, sid: str) -> None:
        """End a session, returning its lane to the free pool."""
        with self._lock:
            rec = self._get(sid)
            del self._sessions[sid]
            del self._lane_owner[rec.lane]
            self._free.append(rec.lane)
            self.sessions_closed += 1
            lifetime = time.monotonic() - rec.opened_at
            if self._lifetime_ewma is None:
                self._lifetime_ewma = lifetime
            else:
                self._lifetime_ewma += 0.2 * (lifetime - self._lifetime_ewma)
            self._count("sessions_open", len(self._sessions))
            self._count("sessions_closed", self.sessions_closed)
            self._tenant_count(rec.tenant, "sessions_closed")

    def close_all(self) -> None:
        with self._lock:
            for sid in list(self._sessions):
                self.close(sid)

    # ------------------------------------------------------------------ #
    # Ownership: resume tokens, orphan linger
    # ------------------------------------------------------------------ #

    def attach(
        self, sid: str, conn: Optional[int], token: Optional[str] = None
    ) -> SessionRecord:
        """Resolve ``sid`` for a session-scoped op from connection ``conn``.

        The owning connection passes straight through.  Any other
        connection must present the session's resume ``token``, in which
        case it *adopts* the session (reconnect-after-drop); without a
        matching token the request is refused with ``forbidden`` — the
        sid alone must not be enough to hijack a lane.  ``conn=None``
        (direct in-process API use) bypasses the ownership check.
        """
        with self._lock:
            rec = self._get(sid)
            if conn is None or rec.owner == conn:
                return rec
            if token is not None and secrets.compare_digest(token, rec.token):
                rec.owner = conn
                rec.orphaned_at = None
                return rec
            raise ProtocolError(
                E_FORBIDDEN,
                f"session {sid} belongs to another connection; "
                "present its resume token to adopt it",
            )

    def orphan_owned(self, conn: int) -> list[str]:
        """Mark every session owned by ``conn`` as orphaned (conn drop).

        Orphaned sessions keep their lanes for ``session_linger_s`` so a
        reconnecting client can adopt them by token; they are closed by
        :meth:`expire_orphans` once the grace period lapses.
        """
        orphaned = []
        now = time.monotonic()
        with self._lock:
            for rec in self._sessions.values():
                if rec.owner == conn and rec.orphaned_at is None:
                    rec.orphaned_at = now
                    orphaned.append(rec.sid)
        return orphaned

    def expire_orphans(self) -> list[str]:
        """Close orphaned sessions whose linger grace period lapsed."""
        now = time.monotonic()
        expired = []
        with self._lock:
            for sid, rec in list(self._sessions.items()):
                if (
                    rec.orphaned_at is not None
                    and now - rec.orphaned_at >= self.session_linger_s
                ):
                    self.close(sid)
                    expired.append(sid)
            if expired:
                self.sessions_expired += len(expired)
                self._count("sessions_expired", self.sessions_expired)
        return expired

    # ------------------------------------------------------------------ #
    # Exactly-once retry cache (``seq`` request ids)
    # ------------------------------------------------------------------ #

    def seq_check(self, sid: str, seq: int) -> Optional[dict]:
        """Gate a mutating op carrying ``seq``.

        Returns the cached response for a duplicate (retried) request,
        ``None`` when the op should be applied, and raises
        ``bad_request`` for a stale ``seq`` (the client moved on — a
        response would be misattributed).
        """
        with self._lock:
            rec = self._get(sid)
            if seq == rec.last_seq and rec.last_reply is not None:
                return rec.last_reply
            if seq <= rec.last_seq:
                raise ProtocolError(
                    E_BAD_REQUEST,
                    f"stale seq {seq} (last applied {rec.last_seq})",
                )
            return None

    def seq_record(self, sid: str, seq: int, reply: dict) -> None:
        """Record the response of an applied mutating op under ``seq``."""
        with self._lock:
            rec = self._sessions.get(sid)
            if rec is not None:
                rec.last_seq = seq
                rec.last_reply = reply

    # ------------------------------------------------------------------ #
    # Traffic
    # ------------------------------------------------------------------ #

    def learn(
        self,
        sid: str,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        terminal: bool = False,
    ) -> int:
        """Retire one external transition on the session's lane."""
        with self._lock:
            rec = self._get(sid)
            q_new = self.backend.apply_transition(
                rec.lane, state, action, reward, next_state, terminal
            )
            rec.journal.append(("learn", state, action, reward, next_state, terminal))
            rec.samples += 1
            self.transitions_total += 1
            self._maybe_rebase(rec)
            if self._counters is not None:
                self._counters.inc("transitions")
            return q_new

    #: Transitions applied between deadline checks inside a batch.
    _BATCH_CHECK = 32

    def learn_batch(
        self,
        sid: str,
        transitions: Iterable[tuple],
        deadline: Optional[float] = None,
    ) -> int:
        """Retire a sequence of transitions; returns the last ``q_new``.

        ``deadline`` (an absolute ``time.monotonic()`` timestamp) budgets
        the request down into the backend lane-ops: the batch checks the
        clock every ``_BATCH_CHECK`` transitions and, if the budget runs
        out mid-application, **rolls the lane back** to its pre-batch
        state (journal, counters and stats included) and raises
        ``deadline_exceeded`` — nothing is applied, so an idempotent
        retry of the whole batch stays exactly-once.
        """
        rows = list(transitions)
        with self._lock, self._span("session.learn_batch", size=len(rows)):
            rec = self._get(sid)
            undo = None
            if deadline is not None:
                # O(S·A) insurance: the pre-batch lane state plus the
                # journal position, so an abort can unwind cleanly even
                # across a mid-batch journal rebase.
                undo = (
                    self.backend.lane_state(rec.lane),
                    rec.base,
                    list(rec.journal),
                )
            q_new = 0
            applied = 0
            try:
                for s, a, r, ns, t in rows:
                    if (
                        deadline is not None
                        and applied % self._BATCH_CHECK == 0
                        and time.monotonic() >= deadline
                    ):
                        raise ProtocolError(
                            E_DEADLINE,
                            f"batch deadline expired after {applied}/"
                            f"{len(rows)} transitions; batch rolled back",
                        )
                    q_new = self.backend.apply_transition(rec.lane, s, a, r, ns, t)
                    rec.journal.append(("learn", s, a, r, ns, t))
                    applied += 1
            except ProtocolError:
                if undo is not None:
                    lane_snap, base, journal = undo
                    self.backend.load_lane_state(rec.lane, lane_snap)
                    rec.base = base
                    rec.journal = journal
                self.deadline_aborts += 1
                self._count("deadline_aborts", self.deadline_aborts)
                self._tenant_count(rec.tenant, "deadline_aborts")
                self._event(
                    "deadline_abort",
                    sid=sid,
                    tenant=rec.tenant,
                    applied=applied,
                    batch=len(rows),
                )
                raise
            rec.samples += applied
            self.transitions_total += applied
            self._maybe_rebase(rec)
            if self._counters is not None and applied:
                self._counters.inc("transitions", applied)
            return q_new

    def act(self, sid: str, state: int, explore: bool = True) -> int:
        """Recommend an action from the session's committed tables."""
        with self._lock:
            rec = self._get(sid)
            action = self.backend.query_action(rec.lane, state, explore)
            if explore:
                # An exploring query consumes one policy draw, so it
                # must be journalled for bit-exact crash replay.
                rec.journal.append(("act", state))
                self._maybe_rebase(rec)
            rec.queries += 1
            self.queries_total += 1
            if self._counters is not None:
                self._counters.inc("queries")
            return action

    def q_row(self, sid: str, state: Optional[int] = None) -> list[int]:
        """Raw Q values — one state's row, or the whole table flattened."""
        with self._lock:
            rec = self._get(sid)
            table = self.backend.q[rec.lane]
            if state is None:
                return [int(v) for v in table]
            A = self.backend.A
            return [int(v) for v in table[state * A : (state + 1) * A]]

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def checkpoint(self, sid: str, tag: Optional[str] = None) -> str:
        """Snapshot the session's lane under ``tag`` (auto-named if None)."""
        with self._lock, self._span("session.checkpoint"):
            rec = self._get(sid)
            rec.checkpoints += 1
            tag = tag if tag is not None else f"ckpt-{rec.checkpoints}"
            rec.store.push(tag, self.backend.lane_state(rec.lane))
            if self._counters is not None:
                self._counters.inc("checkpoints")
            return tag

    def restore(self, sid: str, tag: Optional[str] = None) -> str:
        """Roll the session's lane back to ``tag`` (default: latest)."""
        with self._lock, self._span("session.restore"):
            rec = self._get(sid)
            if tag is None:
                entry = rec.store.latest()
                if entry is None:
                    raise ProtocolError(
                        E_NO_SESSION, f"session {sid} has no checkpoints"
                    )
                tag, state = entry
            else:
                state = rec.store.get(tag)
                if state is None:
                    raise ProtocolError(
                        E_NO_SESSION, f"session {sid} has no checkpoint {tag!r}"
                    )
            self.backend.load_lane_state(rec.lane, state)
            # The restored snapshot becomes the new journal base so a
            # later crash recovery replays from here, not from before
            # the restore.
            rec.base = state
            rec.journal = []
            rec.restores += 1
            if self._counters is not None:
                self._counters.inc("restores")
            return tag

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #

    def recover_lanes(self, ranges: Sequence[tuple[int, int]]) -> list[str]:
        """Re-derive sessions whose lanes a shard rollback clobbered.

        ``ranges`` is ``check_workers()``'s list of half-open lane
        intervals that were rolled back to the shard checkpoint.  Each
        affected session is restored from its journal base and the
        journal replayed — the replay re-consumes the identical LFSR
        draws, so the lane lands bit-exactly where it was.
        """
        recovered = []
        with self._lock, self._span("session.recover_lanes", ranges=len(ranges)):
            for lo, hi in ranges:
                for lane in range(lo, hi):
                    sid = self._lane_owner.get(lane)
                    if sid is None:
                        continue  # free lane; next lease re-seeds it anyway
                    rec = self._sessions[sid]
                    with self._span(
                        "session.replay", sid=sid, journal=len(rec.journal)
                    ):
                        self._replay(rec)
                    rec.recoveries += 1
                    self.recoveries += 1
                    recovered.append(sid)
            if recovered:
                self._count("recoveries", self.recoveries)
                self._event(
                    "sessions_recovered",
                    sessions=list(recovered),
                    ranges=[list(r) for r in ranges],
                )
        return recovered

    def _replay(self, rec: SessionRecord) -> None:
        """Re-derive ``rec``'s lane from its journal base + journal.

        Replay re-consumes the identical LFSR draws in the identical
        order, so the lane lands bit-exactly where committed traffic
        left it — the one primitive behind crash recovery, the audit
        scrub and backend failover.
        """
        self.backend.load_lane_state(rec.lane, rec.base)
        for entry in rec.journal:
            if entry[0] == "learn":
                _, s, a, r, ns, t = entry
                self.backend.apply_transition(rec.lane, s, a, r, ns, t)
            else:
                self.backend.query_action(rec.lane, entry[1], True)

    def audit_sessions(self, limit: Optional[int] = None) -> list[str]:
        """Journal-replay scrub: detect + repair silent lane corruption.

        For up to ``limit`` sessions (rotating, so every session is
        eventually covered), snapshot the live lane, re-derive it from
        the journal base, and compare.  A mismatch means something
        corrupted the lane state *outside* the journalled op stream —
        a stray shared-memory write, a radiation-style upset — and the
        re-derivation has already repaired it.  Returns the sids that
        needed repair.
        """
        repaired = []
        with self._lock:
            sids = sorted(self._sessions)
            if not sids:
                return repaired
            if limit is None:
                limit = len(sids)
            for i in range(min(limit, len(sids))):
                sid = sids[(self._audit_cursor + i) % len(sids)]
                rec = self._sessions[sid]
                live = self.backend.lane_state(rec.lane)
                self._replay(rec)
                expected = self.backend.lane_state(rec.lane)
                rec.audits += 1
                self.audits += 1
                if not _lane_states_equal(live, expected):
                    rec.repairs += 1
                    self.repairs += 1
                    repaired.append(sid)
                    self._event("audit_repair", sid=sid, lane=rec.lane)
            self._audit_cursor = (self._audit_cursor + min(limit, len(sids))) % max(
                1, len(sids)
            )
            self._count("lane_audits", self.audits)
            if repaired:
                self._count("lane_repairs", self.repairs)
        return repaired

    def maintenance(self) -> list[str]:
        """Probe backend health; recover sessions hit by a dead worker.

        One pass runs, in order: the worker health probe (dead *and*
        hung workers — ``check_workers`` pings each worker with a
        bounded timeout) with journal-replay session recovery; the
        last-resort backend failover when the probe left a shard
        quarantined; and the rotating journal-replay audit scrub (when
        ``audit_every`` > 0).  Runs under the manager lock: a shard
        rollback must not race a concurrent parent-side lane op.
        """
        with self._lock:
            recovered: list[str] = []
            check = getattr(self.backend, "check_workers", None)
            if check is not None:
                ranges = check()
                if ranges:
                    recovered = self.recover_lanes(ranges)
            if (
                self.failover_to is not None
                and getattr(self.backend, "quarantined_workers", None)
            ):
                self.failover()
            if self.audit_every:
                self.audit_sessions(self.audit_every)
            return recovered

    def failover(self) -> str:
        """Last-resort migration onto a fresh single-process backend.

        Builds a new backend (``failover_to``, default the vectorized
        numpy engine), copies every leased lane's state across through
        the checkpoint surface (``lane_state``/``load_lane_state`` —
        the payloads are backend-independent, so the copy is bit-exact),
        swaps it in and closes the old backend.  Free lanes need no
        copying: the next lease re-seeds them.  Tenants observe nothing
        but a brief stall.
        """
        with self._lock, self._span("session.failover"):
            old = self.backend
            from ..backends.base import make_fleet_backend

            if getattr(old, "_homogeneous", True):
                worlds, num_agents = old.mdps[0], old.K
            else:  # pragma: no cover - serve fleets are homogeneous
                worlds, num_agents = list(old.mdps), None
            new = make_fleet_backend(
                worlds,
                old.config,
                backend=self.failover_to or "vectorized",
                num_agents=num_agents,
                salts=getattr(old, "_salts", None),
                telemetry=self._telemetry,
            )
            for rec in self._sessions.values():
                new.load_lane_state(rec.lane, old.lane_state(rec.lane))
            self.backend = new
            self.failovers += 1
            self._count("failovers", self.failovers)
            self._event(
                "failover",
                to=type(new).__name__,
                sessions=len(self._sessions),
            )
            old_close = getattr(old, "close", None)
            if old_close is not None:
                try:
                    old_close()
                except Exception:  # pragma: no cover - best-effort teardown
                    pass
            return type(new).__name__

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self, sid: str) -> dict:
        with self._lock:
            rec = self._get(sid)
            return {
                "session": rec.sid,
                "lane": rec.lane,
                "salt": rec.salt,
                "samples": rec.samples,
                "queries": rec.queries,
                "checkpoints": rec.checkpoints,
                "restores": rec.restores,
                "recoveries": rec.recoveries,
                "audits": rec.audits,
                "repairs": rec.repairs,
                "last_seq": rec.last_seq,
                "orphaned": rec.orphaned_at is not None,
                "journal_depth": len(rec.journal),
                "tags": rec.store.tags(),
            }

    def server_info(self) -> dict:
        with self._lock:
            return {
                "lanes": self.K,
                "max_sessions": self.max_sessions,
                "open_sessions": len(self._sessions),
                "free_lanes": len(self._free),
                "sessions_opened": self.sessions_opened,
                "sessions_closed": self.sessions_closed,
                "sessions_rejected": self.sessions_rejected,
                "sessions_shed": self.sessions_shed,
                "sessions_expired": self.sessions_expired,
                "recoveries": self.recoveries,
                "failovers": self.failovers,
                "audits": self.audits,
                "repairs": self.repairs,
                "deadline_aborts": self.deadline_aborts,
                "throttled": self.throttled,
                "tenants": {t: dict(v) for t, v in self.tenant_stats.items()},
                "backend": type(self.backend).__name__,
                "states": self.backend.S,
                "actions": self.backend.A,
            }

    def telemetry_snapshot(self) -> dict:
        """Serve-level counters for a telemetry profile."""
        info = self.server_info()
        with self._lock:
            info["transitions"] = self.transitions_total
            info["queries"] = self.queries_total
        return info

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _get(self, sid: str) -> SessionRecord:
        rec = self._sessions.get(sid)
        if rec is None:
            raise ProtocolError(E_NO_SESSION, f"unknown session {sid!r}")
        return rec

    def _maybe_rebase(self, rec: SessionRecord) -> None:
        if len(rec.journal) >= self.checkpoint_every:
            rec.base = self.backend.lane_state(rec.lane)
            rec.journal = []

    def _count(self, name: str, value: int) -> None:
        if self._counters is not None:
            self._counters.set(name, value)

    def _tenant_count(self, tenant: Optional[str], key: str, n: int = 1) -> None:
        """Bump one per-tenant error-budget/lifecycle counter."""
        t = tenant if tenant in self.tenant_stats else sanitize_tenant(tenant)
        stats = self.tenant_stats.setdefault(t, {})
        stats[key] = stats.get(key, 0) + n
        if self._tenant_counters is not None:
            self._tenant_counters.inc(f"{t}.{key}", n)

    def tenant_of(self, sid: str) -> Optional[str]:
        """The (sanitized) tenant of ``sid``, or ``None`` when unknown."""
        with self._lock:
            rec = self._sessions.get(sid)
            return rec.tenant if rec is not None else None

    def _span(self, name: str, **attrs):
        """A session-layer span, or the shared no-op context untraced."""
        if self._tracer is None:
            return _NOSPAN
        attrs = {k: v for k, v in attrs.items() if v is not None}
        return self._tracer.span(name, attrs=attrs or None)

    def _event(self, kind: str, **fields) -> None:
        """Best-effort structured event into the flight recorder."""
        if self._recorder is not None:
            try:
                self._recorder.record_event(kind, **fields)
            except Exception:  # pragma: no cover - recorder is best-effort
                pass
