"""The asyncio session gateway: NDJSON TCP in front of a fleet backend.

One :class:`Gateway` owns one :class:`~repro.serve.session.SessionManager`
and serves it over two listeners:

* a **TCP** listener speaking the newline-delimited-JSON protocol of
  :mod:`repro.serve.protocol` — the data plane;
* an optional **HTTP** listener answering ``GET /metrics`` with the
  OpenMetrics rendering of the attached telemetry registry and
  ``GET /healthz`` with a liveness probe — the observability plane.

Backend lane operations are parent-side numpy work measured in
microseconds, so they run directly on the event loop; the gateway's
concurrency problem is admission, not compute.  Admission is a
queue-with-timeout: when every lane is leased, an ``open`` waits on an
:class:`asyncio.Condition` that session closes notify, and is refused
with ``at_capacity`` after ``admission_timeout_s``.

A background maintenance task probes worker health every
``maintenance_interval_s`` (via ``SessionManager.maintenance()``, which
recovers sessions hit by a dead shard worker) and pulses the telemetry
session so live exporters stay fresh.

Connections own their sessions: sessions opened on a connection that
drops without ``close`` are closed (and their lanes recycled) when the
connection unwinds.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
from typing import Optional

from . import protocol
from .protocol import ProtocolError
from .session import SessionManager

log = logging.getLogger("repro.serve")


class Gateway:
    """Serve a :class:`SessionManager` over NDJSON TCP (+ HTTP metrics)."""

    def __init__(
        self,
        manager: SessionManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
        admission_timeout_s: float = 1.0,
        maintenance_interval_s: float = 0.25,
    ):
        self.manager = manager
        self.host = host
        self.port = port
        self.http_port = http_port
        self.admission_timeout_s = admission_timeout_s
        self.maintenance_interval_s = maintenance_interval_s
        self._server: Optional[asyncio.base_events.Server] = None
        self._http_server: Optional[asyncio.base_events.Server] = None
        self._maintenance: Optional[asyncio.Task] = None
        self._admission: Optional[asyncio.Condition] = None
        self._closing = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listeners (resolving port 0) and start maintenance."""
        self._admission = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=protocol.MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self.host, self.http_port
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        self._maintenance = asyncio.create_task(self._maintenance_loop())
        log.info(
            "gateway listening on %s:%d (%d lanes, %d session slots)",
            self.host,
            self.port,
            self.manager.K,
            self.manager.max_sessions,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, close sessions + backend."""
        self._closing = True
        if self._maintenance is not None:
            self._maintenance.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._maintenance
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self.manager.close_all()
        backend_close = getattr(self.manager.backend, "close", None)
        if backend_close is not None:
            backend_close()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    async def _maintenance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.maintenance_interval_s)
            try:
                recovered = await asyncio.to_thread(self.manager.maintenance)
                if recovered:
                    log.warning(
                        "recovered %d session(s) after worker failure: %s",
                        len(recovered),
                        recovered,
                    )
            except Exception:  # pragma: no cover - defensive
                log.exception("maintenance probe failed")
            telemetry = self.manager._telemetry
            if telemetry is not None:
                telemetry.pulse()

    # ------------------------------------------------------------------ #
    # TCP data plane
    # ------------------------------------------------------------------ #

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        owned: set[str] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized frame or peer reset
                if not line:
                    break
                response = await self._dispatch(line, owned)
                writer.write(protocol.encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            for sid in list(owned):
                with contextlib.suppress(ProtocolError):
                    self.manager.close(sid)
            await self._notify_admission()
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _dispatch(self, line: bytes, owned: set[str]) -> dict:
        req: dict = {}
        try:
            req = protocol.decode(line)
            op = req.get("op")
            if op not in protocol.OPS:
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, f"unknown op {op!r}"
                )
            if self._closing:
                raise ProtocolError(protocol.E_CLOSED, "gateway is shutting down")
            return await self._handle_op(op, req, owned)
        except ProtocolError as exc:
            return protocol.error(exc.code, exc.detail, req=req)
        except Exception as exc:  # pragma: no cover - defensive
            log.exception("internal error serving %r", req.get("op"))
            return protocol.error(protocol.E_INTERNAL, str(exc), req=req)

    async def _handle_op(self, op: str, req: dict, owned: set[str]) -> dict:
        manager = self.manager
        if op == "ping":
            return protocol.ok({"pong": True}, req=req)
        if op == "server":
            info = manager.server_info()
            info["protocol"] = protocol.PROTOCOL
            return protocol.ok(info, req=req)
        if op == "open":
            rec = await self._admit()
            owned.add(rec.sid)
            return protocol.ok(
                {
                    "session": rec.sid,
                    "lane": rec.lane,
                    "salt": rec.salt,
                    "states": manager.backend.S,
                    "actions": manager.backend.A,
                },
                req=req,
            )

        sid = req.get("session")
        if not isinstance(sid, str):
            raise ProtocolError(
                protocol.E_BAD_REQUEST, "field 'session' must be a string"
            )
        S, A = manager.backend.S, manager.backend.A

        if op == "learn":
            if "batch" in req:
                batch = protocol.parse_batch(req, num_states=S, num_actions=A)
                q_new = manager.learn_batch(sid, batch)
                return protocol.ok({"q": q_new, "n": len(batch)}, req=req)
            s, a, r, ns, t = protocol.parse_transition(
                req, num_states=S, num_actions=A
            )
            q_new = manager.learn(sid, s, a, r, ns, t)
            return protocol.ok({"q": q_new, "n": 1}, req=req)
        if op == "act":
            s = protocol.require_int(req, "s", hi=S)
            explore = req.get("explore", True)
            if not isinstance(explore, bool):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, "field 'explore' must be a boolean"
                )
            return protocol.ok({"action": manager.act(sid, s, explore)}, req=req)
        if op == "table":
            state = None
            if "s" in req:
                state = protocol.require_int(req, "s", hi=S)
            return protocol.ok({"q": manager.q_row(sid, state)}, req=req)
        if op == "checkpoint":
            tag = req.get("tag")
            if tag is not None and not isinstance(tag, str):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, "field 'tag' must be a string"
                )
            return protocol.ok({"tag": manager.checkpoint(sid, tag)}, req=req)
        if op == "restore":
            tag = req.get("tag")
            if tag is not None and not isinstance(tag, str):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, "field 'tag' must be a string"
                )
            return protocol.ok({"tag": manager.restore(sid, tag)}, req=req)
        if op == "stats":
            return protocol.ok(manager.stats(sid), req=req)
        if op == "close":
            manager.close(sid)
            owned.discard(sid)
            await self._notify_admission()
            return protocol.ok({"closed": sid}, req=req)
        raise ProtocolError(protocol.E_BAD_REQUEST, f"unhandled op {op!r}")

    async def _admit(self):
        """Open a session, waiting up to ``admission_timeout_s`` for a lane."""
        manager = self.manager
        if manager.has_capacity():
            return manager.open()
        async with self._admission:
            try:
                await asyncio.wait_for(
                    self._admission.wait_for(manager.has_capacity),
                    timeout=self.admission_timeout_s,
                )
            except asyncio.TimeoutError:
                manager.note_rejected()
                raise ProtocolError(
                    protocol.E_AT_CAPACITY,
                    f"no session slot freed within {self.admission_timeout_s}s",
                ) from None
        return manager.open()

    async def _notify_admission(self) -> None:
        if self._admission is None:
            return
        async with self._admission:
            self._admission.notify_all()

    # ------------------------------------------------------------------ #
    # HTTP observability plane
    # ------------------------------------------------------------------ #

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers until the blank line; we only route on the path.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else "/"
            if path == "/healthz":
                body = b"ok\n"
                ctype = "text/plain; charset=utf-8"
                status = "200 OK"
            elif path == "/metrics":
                body = self._render_metrics().encode()
                ctype = "application/openmetrics-text; version=1.0.0; charset=utf-8"
                status = "200 OK"
            else:
                body = b"not found\n"
                ctype = "text/plain; charset=utf-8"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
        except (ConnectionError, IndexError):  # pragma: no cover - peer reset
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    def _render_metrics(self) -> str:
        from ..perf.metrics_export import render_openmetrics

        telemetry = self.manager._telemetry
        if telemetry is None:
            return "# EOF\n"
        return render_openmetrics(telemetry.registry, namespace="qtaccel")


def run_gateway_in_thread(gateway: Gateway) -> tuple[threading.Thread, asyncio.AbstractEventLoop]:
    """Boot ``gateway`` on a dedicated event-loop thread (tests, benches).

    Returns once the listeners are bound (``gateway.port`` is resolved).
    Shut down with::

        asyncio.run_coroutine_threadsafe(gateway.close(), loop).result()
        loop.call_soon_threadsafe(loop.stop); thread.join()
    """
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(gateway.start())
        started.set()
        loop.run_forever()
        # Drain cancellations queued by close() before the loop winds down.
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    thread = threading.Thread(target=_run, name="serve-gateway", daemon=True)
    thread.start()
    started.wait()
    return thread, loop
