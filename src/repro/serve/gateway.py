"""The asyncio session gateway: NDJSON TCP in front of a fleet backend.

One :class:`Gateway` owns one :class:`~repro.serve.session.SessionManager`
and serves it over two listeners:

* a **TCP** listener speaking the newline-delimited-JSON protocol of
  :mod:`repro.serve.protocol` — the data plane;
* an optional **HTTP** listener answering ``GET /metrics`` with the
  OpenMetrics rendering of the attached telemetry registry and
  ``GET /healthz`` with a liveness probe — the observability plane.

Backend lane operations are parent-side numpy work measured in
microseconds, so they run directly on the event loop; the gateway's
concurrency problem is admission, not compute.  Admission is a
queue-with-timeout: when every lane is leased, an ``open`` waits on an
:class:`asyncio.Condition` that session closes notify, and is refused
with ``at_capacity`` after ``admission_timeout_s``.

A background maintenance task probes worker health every
``maintenance_interval_s`` (via ``SessionManager.maintenance()``, which
recovers sessions hit by a dead or hung shard worker, fails over to a
fresh backend when a shard is quarantined, and scrubs lanes by journal
replay), expires orphaned sessions whose linger lapsed, and pulses the
telemetry session so live exporters stay fresh.

Connections own their sessions, but ownership survives the connection:
a session whose connection drops is *orphaned* for
``session_linger_s`` — a reconnecting client presenting the session's
resume token adopts it mid-stream — and only closed (lane recycled)
when the grace period lapses.

Graceful degradation under pressure (all tenant-visible outcomes are
clean typed errors, never silence):

* the admission queue is **bounded** (``max_admission_queue``): open
  requests beyond it are shed immediately with ``at_capacity`` plus a
  computed ``retry_after`` hint instead of piling up waiters;
* every connection has a small **circuit breaker**: after
  ``breaker_threshold`` consecutive client-fault errors (bad frames,
  forbidden/unknown sessions) further requests are refused with
  ``throttled`` until ``breaker_cooldown_s`` passes, capping the cost
  of a misbehaving or byte-garbling peer;
* ``response_delay_s`` (chaos hook) injects latency in front of every
  response so client timeout/retry paths can be exercised end-to-end.

Observability (all optional, see :mod:`repro.obs`): a ``tracer`` makes
the gateway open one ``server.<op>`` span per request — parented under
the client's span when the request carries the protocol's ``trace``
field — plus a ``server.admit`` span while an ``open`` waits in the
admission queue; a ``recorder`` files structured events (breaker
trips, orphan expiries) into the flight recorder; and when the manager
has a telemetry session, per-tenant SLO latency histograms and
error-budget counters land in the same registry ``/metrics`` renders.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import logging
import threading
import time
from typing import Optional

from . import protocol
from .protocol import ProtocolError
from .session import SessionManager

log = logging.getLogger("repro.serve")

#: Reusable no-op context for the untraced request path.
_NOSPAN = contextlib.nullcontext()

#: Error codes that count against a connection's circuit breaker —
#: client faults only; server-side pressure must not trip the breaker.
_BREAKER_FAULTS = frozenset(
    {protocol.E_BAD_REQUEST, protocol.E_FORBIDDEN, protocol.E_NO_SESSION}
)

#: Per-op server span names, precomputed off the hot path.
_SPAN_NAMES = {op: f"server.{op}" for op in protocol.OPS}


class _Breaker:
    """Per-connection consecutive-fault circuit breaker."""

    __slots__ = ("threshold", "cooldown_s", "faults", "open_until")

    def __init__(self, threshold: int, cooldown_s: float):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.faults = 0
        self.open_until = 0.0

    def check(self, now: float) -> float:
        """Seconds until the breaker closes again (0.0 = closed)."""
        return max(0.0, self.open_until - now)

    def record(self, code: Optional[str], now: float) -> bool:
        """Account one response: ``code`` is the error code or None (ok).

        Returns True when this response tripped the breaker open.
        """
        if code is None or code not in _BREAKER_FAULTS:
            self.faults = 0
            return False
        self.faults += 1
        if self.threshold > 0 and self.faults >= self.threshold:
            self.open_until = now + self.cooldown_s
            self.faults = 0
            return True
        return False


class Gateway:
    """Serve a :class:`SessionManager` over NDJSON TCP (+ HTTP metrics)."""

    def __init__(
        self,
        manager: SessionManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
        admission_timeout_s: float = 1.0,
        maintenance_interval_s: float = 0.25,
        max_admission_queue: int = 64,
        breaker_threshold: int = 32,
        breaker_cooldown_s: float = 1.0,
        response_delay_s: float = 0.0,
        tracer=None,
        recorder=None,
    ):
        self.manager = manager
        self.host = host
        self.port = port
        self.http_port = http_port
        self.admission_timeout_s = admission_timeout_s
        self.maintenance_interval_s = maintenance_interval_s
        self.max_admission_queue = max_admission_queue
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        #: Chaos hook: sleep this long before writing every response.
        self.response_delay_s = response_delay_s
        self._server: Optional[asyncio.base_events.Server] = None
        self._http_server: Optional[asyncio.base_events.Server] = None
        self._maintenance: Optional[asyncio.Task] = None
        self._admission: Optional[asyncio.Condition] = None
        self._admission_waiters = 0
        self._conn_ids = itertools.count(1)
        self._closing = False
        #: Optional :class:`repro.obs.tracing.Tracer` (per-request
        #: ``server.<op>`` spans) and
        #: :class:`repro.obs.recorder.FlightRecorder` (structured events).
        self._tracer = tracer
        self._recorder = recorder
        #: Per-tenant SLO instruments, written into the same registry
        #: the ``/metrics`` endpoint renders (None without telemetry).
        self._slo = None
        if manager._telemetry is not None:
            from ..obs.slo import SloTracker

            self._slo = SloTracker(manager._telemetry.registry)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listeners (resolving port 0) and start maintenance."""
        self._admission = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=protocol.MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self.host, self.http_port
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        self._maintenance = asyncio.create_task(self._maintenance_loop())
        log.info(
            "gateway listening on %s:%d (%d lanes, %d session slots)",
            self.host,
            self.port,
            self.manager.K,
            self.manager.max_sessions,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, close sessions + backend."""
        self._closing = True
        if self._maintenance is not None:
            self._maintenance.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._maintenance
        for server in (self._server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self.manager.close_all()
        backend_close = getattr(self.manager.backend, "close", None)
        if backend_close is not None:
            backend_close()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    async def _maintenance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.maintenance_interval_s)
            try:
                recovered = await asyncio.to_thread(self.manager.maintenance)
                if recovered:
                    log.warning(
                        "recovered %d session(s) after worker failure: %s",
                        len(recovered),
                        recovered,
                    )
                expired = await asyncio.to_thread(self.manager.expire_orphans)
                if expired:
                    log.info("expired %d orphaned session(s): %s", len(expired), expired)
                    self._event("orphans_expired", sessions=expired)
                    await self._notify_admission()
            except Exception:  # pragma: no cover - defensive
                log.exception("maintenance probe failed")
            telemetry = self.manager._telemetry
            if telemetry is not None:
                telemetry.pulse()

    # ------------------------------------------------------------------ #
    # TCP data plane
    # ------------------------------------------------------------------ #

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = next(self._conn_ids)
        breaker = _Breaker(self.breaker_threshold, self.breaker_cooldown_s)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized frame or peer reset
                if not line:
                    break
                response = await self._dispatch(line, conn_id, breaker)
                if self.response_delay_s > 0:
                    await asyncio.sleep(self.response_delay_s)
                writer.write(protocol.encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            # Orphan (don't close) this connection's sessions: the lane
            # lingers for session_linger_s so a token-bearing reconnect
            # can adopt it; the maintenance loop expires the rest.
            orphaned = self.manager.orphan_owned(conn_id)
            if orphaned:
                log.info(
                    "connection %d dropped; orphaned session(s): %s",
                    conn_id,
                    orphaned,
                )
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _dispatch(self, line: bytes, conn_id: int, breaker: _Breaker) -> dict:
        req: dict = {}
        code: Optional[str] = None
        op = None
        tenant: Optional[str] = None
        t0 = time.perf_counter()
        try:
            req = protocol.decode(line)
            op = req.get("op")
            if op not in protocol.OPS:
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, f"unknown op {op!r}"
                )
            if self._closing:
                raise ProtocolError(protocol.E_CLOSED, "gateway is shutting down")
            tenant = self._tenant_for(op, req)
            cooldown = breaker.check(time.monotonic())
            if cooldown > 0:
                code = protocol.E_THROTTLED
                self.manager.note_throttled(tenant)
                return protocol.error(
                    protocol.E_THROTTLED,
                    "circuit breaker open after repeated bad requests",
                    req=req,
                    retry_after=cooldown,
                )
            if self._tracer is None:
                return await self._handle_op(op, req, conn_id, tenant)
            ctx = protocol.parse_trace(req)
            if ctx is None and op in protocol.SAMPLED_OPS:
                # Hot ops follow the client's head-sampling decision:
                # no incoming context means this request was not
                # sampled, so the server does not trace it either.
                return await self._handle_op(op, req, conn_id, tenant)
            # The server-side span of this request, parented under the
            # client's span when the request carries a `trace` field.
            with self._tracer.span(_SPAN_NAMES[op], parent=ctx) as span:
                span.set("conn", conn_id)
                return await self._handle_op(op, req, conn_id, tenant)
        except ProtocolError as exc:
            code = exc.code
            return protocol.error(
                exc.code, exc.detail, req=req, retry_after=exc.retry_after
            )
        except Exception as exc:  # pragma: no cover - defensive
            code = protocol.E_INTERNAL
            log.exception("internal error serving %r", req.get("op"))
            return protocol.error(protocol.E_INTERNAL, str(exc), req=req)
        finally:
            if breaker.record(code, time.monotonic()):
                self._event("breaker_trip", conn=conn_id, tenant=tenant)
            if self._slo is not None and op in protocol.OPS:
                self._slo.observe(tenant, op, (time.perf_counter() - t0) * 1e3)
                if code is not None:
                    self._slo.error(tenant, code)

    def _tenant_for(self, op: str, req: dict) -> Optional[str]:
        """Resolve the tenant a request bills to (None -> ``anon``)."""
        if op == "open":
            return protocol.parse_tenant(req)
        sid = req.get("session")
        if isinstance(sid, str):
            return self.manager.tenant_of(sid)
        return None

    def _span(self, name: str, **attrs):
        if self._tracer is None:
            return _NOSPAN
        attrs = {k: v for k, v in attrs.items() if v is not None}
        return self._tracer.span(name, attrs=attrs or None)

    def _event(self, kind: str, **fields) -> None:
        if self._recorder is not None:
            try:
                self._recorder.record_event(kind, **fields)
            except Exception:  # pragma: no cover - recorder is best-effort
                pass

    async def _handle_op(
        self, op: str, req: dict, conn_id: int, tenant: Optional[str] = None
    ) -> dict:
        manager = self.manager
        deadline = protocol.parse_deadline(req, now=time.monotonic())
        if op == "ping":
            return protocol.ok({"pong": True}, req=req)
        if op == "server":
            info = manager.server_info()
            info["protocol"] = protocol.PROTOCOL
            return protocol.ok(info, req=req)
        if op == "open":
            rec = await self._admit(conn_id, deadline, tenant)
            return protocol.ok(
                {
                    "session": rec.sid,
                    "lane": rec.lane,
                    "salt": rec.salt,
                    "token": rec.token,
                    "states": manager.backend.S,
                    "actions": manager.backend.A,
                },
                req=req,
            )

        sid = req.get("session")
        if not isinstance(sid, str):
            raise ProtocolError(
                protocol.E_BAD_REQUEST, "field 'session' must be a string"
            )
        token = req.get("token")
        if token is not None and not isinstance(token, str):
            raise ProtocolError(
                protocol.E_BAD_REQUEST, "field 'token' must be a string"
            )
        # Ownership gate: pass-through for the owner, adoption with the
        # resume token, `forbidden` otherwise.
        manager.attach(sid, conn_id, token)
        seq = protocol.parse_seq(req)
        if op in protocol.MUTATING_OPS and seq is not None:
            cached = manager.seq_check(sid, seq)
            if cached is not None:
                # Retried request: replay the cached reply.  The replay
                # is the server-visible trace of a client retry, so it
                # feeds the tenant's retry budget.
                manager.note_retry(tenant)
                return cached
        if deadline is not None and time.monotonic() >= deadline:
            raise ProtocolError(
                protocol.E_DEADLINE, "deadline expired before the op was applied"
            )
        S, A = manager.backend.S, manager.backend.A

        # NOTE: no awaits between seq_check above and seq_record below —
        # the apply-and-record step is atomic on the event loop.
        reply: Optional[dict] = None
        if op == "learn":
            if "batch" in req:
                batch = protocol.parse_batch(req, num_states=S, num_actions=A)
                q_new = manager.learn_batch(sid, batch, deadline=deadline)
                reply = protocol.ok({"q": q_new, "n": len(batch)}, req=req)
            else:
                s, a, r, ns, t = protocol.parse_transition(
                    req, num_states=S, num_actions=A
                )
                q_new = manager.learn(sid, s, a, r, ns, t)
                reply = protocol.ok({"q": q_new, "n": 1}, req=req)
        elif op == "act":
            s = protocol.require_int(req, "s", hi=S)
            explore = req.get("explore", True)
            if not isinstance(explore, bool):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, "field 'explore' must be a boolean"
                )
            reply = protocol.ok({"action": manager.act(sid, s, explore)}, req=req)
        elif op == "table":
            state = None
            if "s" in req:
                state = protocol.require_int(req, "s", hi=S)
            reply = protocol.ok({"q": manager.q_row(sid, state)}, req=req)
        elif op == "checkpoint":
            tag = req.get("tag")
            if tag is not None and not isinstance(tag, str):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, "field 'tag' must be a string"
                )
            reply = protocol.ok({"tag": manager.checkpoint(sid, tag)}, req=req)
        elif op == "restore":
            tag = req.get("tag")
            if tag is not None and not isinstance(tag, str):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST, "field 'tag' must be a string"
                )
            reply = protocol.ok({"tag": manager.restore(sid, tag)}, req=req)
        elif op == "stats":
            reply = protocol.ok(manager.stats(sid), req=req)
        elif op == "close":
            manager.close(sid)
            reply = protocol.ok({"closed": sid}, req=req)
            await self._notify_admission()
            return reply
        if reply is None:
            raise ProtocolError(protocol.E_BAD_REQUEST, f"unhandled op {op!r}")
        if op in protocol.MUTATING_OPS and seq is not None:
            manager.seq_record(sid, seq, reply)
        return reply

    async def _admit(
        self,
        conn_id: Optional[int],
        deadline: Optional[float] = None,
        tenant: Optional[str] = None,
    ):
        """Open a session, waiting up to ``admission_timeout_s`` for a lane.

        The wait queue is bounded: beyond ``max_admission_queue``
        concurrent waiters, opens are shed immediately (``at_capacity``
        with a computed ``retry_after``) instead of stacking up.  A
        request deadline tightens the wait budget.
        """
        manager = self.manager
        if manager.has_capacity():
            return manager.open(owner=conn_id, tenant=tenant)
        if self._admission_waiters >= self.max_admission_queue:
            manager.note_shed(tenant)
            raise ProtocolError(
                protocol.E_AT_CAPACITY,
                f"admission queue full ({self._admission_waiters} waiters); "
                "request shed",
                retry_after=manager.retry_after_hint(self._admission_waiters),
            )
        timeout = self.admission_timeout_s
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - time.monotonic()))
        self._admission_waiters += 1
        try:
            # The queueing wait gets its own span so a merged trace
            # shows admission time distinct from lane execution.
            with self._span("server.admit", tenant=tenant):
                async with self._admission:
                    await asyncio.wait_for(
                        self._admission.wait_for(manager.has_capacity),
                        timeout=timeout,
                    )
        except asyncio.TimeoutError:
            manager.note_rejected(tenant)
            raise ProtocolError(
                protocol.E_AT_CAPACITY,
                f"no session slot freed within {timeout:.3g}s",
                retry_after=manager.retry_after_hint(self._admission_waiters - 1),
            ) from None
        finally:
            self._admission_waiters -= 1
        return manager.open(owner=conn_id, tenant=tenant)

    async def _notify_admission(self) -> None:
        if self._admission is None:
            return
        async with self._admission:
            self._admission.notify_all()

    # ------------------------------------------------------------------ #
    # HTTP observability plane
    # ------------------------------------------------------------------ #

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers until the blank line; we only route on the path.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else "/"
            if path == "/healthz":
                body = b"ok\n"
                ctype = "text/plain; charset=utf-8"
                status = "200 OK"
            elif path == "/metrics":
                body = self._render_metrics().encode()
                ctype = "application/openmetrics-text; version=1.0.0; charset=utf-8"
                status = "200 OK"
            else:
                body = b"not found\n"
                ctype = "text/plain; charset=utf-8"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
        except (ConnectionError, IndexError):  # pragma: no cover - peer reset
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    def _render_metrics(self) -> str:
        from ..perf.metrics_export import render_openmetrics

        telemetry = self.manager._telemetry
        if telemetry is None:
            return "# EOF\n"
        return render_openmetrics(telemetry.registry, namespace="qtaccel")


def run_gateway_in_thread(gateway: Gateway) -> tuple[threading.Thread, asyncio.AbstractEventLoop]:
    """Boot ``gateway`` on a dedicated event-loop thread (tests, benches).

    Returns once the listeners are bound (``gateway.port`` is resolved).
    Shut down with::

        asyncio.run_coroutine_threadsafe(gateway.close(), loop).result()
        loop.call_soon_threadsafe(loop.stop); thread.join()
    """
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(gateway.start())
        started.set()
        loop.run_forever()
        # Drain cancellations queued by close() before the loop winds down.
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    thread = threading.Thread(target=_run, name="serve-gateway", daemon=True)
    thread.start()
    started.wait()
    return thread, loop
