"""``repro.serve`` — a multi-tenant RL session gateway over the fleet backends.

The accelerator reproduced by this repo retires one Q-update per cycle;
the fleet backends (:mod:`repro.backends`) reproduce that at software
scale.  This package is the **ingress layer** that routes live external
traffic onto those lanes: clients open agent sessions over a
newline-delimited-JSON TCP API, stream ``(s, a, r, s')`` transitions
and action queries, and each session drives one leased fleet lane
through the same bit-exact 4-stage datapath the resident agents use.

Layering (each importable on its own):

* :mod:`~repro.serve.protocol` — the wire format and error codes;
* :mod:`~repro.serve.session` — :class:`SessionManager`: lane leasing,
  admission, journalling, per-tenant checkpoint/restore, crash
  recovery (no sockets; fully synchronous and unit-testable);
* :mod:`~repro.serve.gateway` — the asyncio TCP/HTTP front end;
* :mod:`~repro.serve.client` — a small blocking Python client;
* :mod:`~repro.serve.smoke` — the CI fault-injection smoke gate.

Run a gateway with ``python -m repro.serve``; see ``docs/serving.md``
for the protocol spec and deployment notes, and
:mod:`repro.perf.serve` for the saturation benchmark.
"""

from .client import ServeClient, ServeError, ServeSession
from .gateway import Gateway, run_gateway_in_thread
from .protocol import PROTOCOL, ProtocolError
from .session import SessionManager, SessionRecord, build_serve_backend, serve_world

__all__ = [
    "PROTOCOL",
    "Gateway",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeSession",
    "SessionManager",
    "SessionRecord",
    "build_serve_backend",
    "run_gateway_in_thread",
    "serve_world",
]
