"""``python -m repro.serve`` — run a session gateway.

Boots a fleet backend over a placeholder serve world (external
transitions never consult the environment tables; only the table shape
matters) and serves it until interrupted.  SIGTERM/SIGINT shut the
gateway down gracefully — sessions closed, lanes recycled, and (for
the sharded backend) shared memory and workers reclaimed via
:func:`repro.backends.sharded.install_signal_cleanup`.

Examples::

    python -m repro.serve --port 7777
    python -m repro.serve --engine sharded --lanes 256 --workers 4 \\
        --http-port 9100   # GET /metrics, GET /healthz
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging

from ..backends.sharded import install_signal_cleanup
from ..core.config import QTAccelConfig
from .gateway import Gateway
from .session import SessionManager, build_serve_backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve fleet lanes to external RL clients over NDJSON TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7777, help="TCP data port")
    parser.add_argument(
        "--http-port", type=int, default=None,
        help="optional HTTP port for /metrics and /healthz",
    )
    parser.add_argument(
        "--engine", default="vectorized",
        choices=("vectorized", "scalar", "sharded"),
    )
    parser.add_argument("--lanes", type=int, default=64, help="fleet lanes (= max tenants)")
    parser.add_argument("--states", type=int, default=128)
    parser.add_argument("--actions", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2, help="sharded workers")
    parser.add_argument(
        "--preset", default="qlearning", choices=("qlearning", "sarsa"),
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--max-sessions", type=int, default=None)
    parser.add_argument("--admission-timeout", type=float, default=1.0)
    parser.add_argument("--checkpoint-every", type=int, default=64)
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    from ..telemetry.session import TelemetrySession

    config = getattr(QTAccelConfig, args.preset)(seed=args.seed)
    with TelemetrySession(trace=False) as telemetry:
        backend = build_serve_backend(
            config,
            engine=args.engine,
            lanes=args.lanes,
            num_states=args.states,
            num_actions=args.actions,
            num_workers=args.workers,
            telemetry=telemetry,
        )
        manager = SessionManager(
            backend,
            max_sessions=args.max_sessions,
            checkpoint_every=args.checkpoint_every,
            telemetry=telemetry,
        )
        gateway = Gateway(
            manager,
            host=args.host,
            port=args.port,
            http_port=args.http_port,
            admission_timeout_s=args.admission_timeout,
        )
        await gateway.start()
        print(f"serving {args.engine} x {args.lanes} lanes on {args.host}:{gateway.port}")
        if gateway.http_port is not None:
            print(f"metrics on http://{args.host}:{gateway.http_port}/metrics")
        try:
            await gateway.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.close()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    install_signal_cleanup()
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
