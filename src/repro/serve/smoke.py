"""Fault-injection smoke gate for the session gateway (CI entry point).

``python -m repro.serve.smoke`` boots a gateway over a **sharded**
backend, drives it with more concurrent client threads than session
slots for a few seconds, SIGKILLs a shard worker mid-run, and asserts:

* every client either completes its session or is *cleanly* rejected
  with ``at_capacity`` — no other error surfaces to any client;
* at least one worker kill was injected and recovered;
* every completed session's final Q-table is **bit-identical** to the
  same op stream replayed on a standalone
  :class:`~repro.core.functional.FunctionalSimulator` seeded with the
  session's salt — i.e. the crash, the shard rollback and the journal
  replay were all invisible to the tenant.

Exit status 0 on success, 1 on any violation (the CI job gates on it).

``--obs-dir DIR`` attaches a flight recorder (see
:mod:`repro.obs.recorder`); on a red run the surviving event ring is
merged into ``DIR/flight_dump.jsonl`` so the failure ships its own
post-mortem.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import threading
import time

from ..core.config import QTAccelConfig
from ..core.functional import FunctionalSimulator
from ..core.policies import PolicyDraws
from .client import ServeClient, ServeError
from .gateway import Gateway, run_gateway_in_thread
from .session import SessionManager, build_serve_backend, serve_world


def replay_reference(config, salt: int, journal: list, *, num_states: int, num_actions: int):
    """The session's op stream on a dedicated scalar simulator."""
    sim = FunctionalSimulator(
        serve_world(num_states, num_actions),
        config,
        draws=PolicyDraws.from_config(config, salt=salt),
    )
    for entry in journal:
        if entry[0] == "learn":
            _, s, a, r, ns, t = entry
            sim.apply_transition(s, a, r, ns, t)
        else:
            sim.query_action(entry[1], explore=True)
    return sim


def _client_worker(port: int, idx: int, seconds: float, config, results: list, lock):
    outcome = {"idx": idx, "status": "error", "detail": None}
    try:
        with ServeClient(port=port) as client:
            try:
                sess = client.open_session()
            except ServeError as exc:
                if exc.code == "at_capacity":
                    outcome.update(status="rejected", detail=exc.detail)
                else:
                    outcome["detail"] = f"{exc.code}: {exc.detail}"
                return
            rng = random.Random(0xC0FFEE + idx)
            S, A = sess.num_states, sess.num_actions
            journal: list = []
            deadline = time.monotonic() + seconds
            while time.monotonic() < deadline:
                s = rng.randrange(S)
                a = rng.randrange(A)
                r = rng.uniform(-1.0, 1.0)
                ns = rng.randrange(S)
                t = rng.random() < 0.02
                sess.learn(s, a, r, ns, t)
                journal.append(("learn", s, a, r, ns, t))
                if rng.random() < 0.25:
                    sess.act(ns, explore=True)
                    journal.append(("act", ns))
            table = sess.table()
            stats = sess.stats()
            sess.close()
            # Bit-identity: gateway table vs dedicated scalar replay.
            ref = replay_reference(
                config, sess.salt, journal, num_states=S, num_actions=A
            )
            if table != [int(v) for v in ref.tables.q.data]:
                outcome["detail"] = "final table diverged from scalar replay"
                return
            outcome.update(
                status="ok",
                detail=None,
                samples=stats["samples"],
                recoveries=stats["recoveries"],
            )
    except Exception as exc:  # noqa: BLE001 - every failure mode must surface
        outcome["detail"] = f"{type(exc).__name__}: {exc}"
    finally:
        with lock:
            results.append(outcome)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve.smoke")
    parser.add_argument("--seconds", type=float, default=5.0)
    parser.add_argument("--clients", type=int, default=12)
    parser.add_argument("--lanes", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--states", type=int, default=64)
    parser.add_argument("--actions", type=int, default=4)
    parser.add_argument(
        "--mp-context", default=None, help="multiprocessing start method"
    )
    parser.add_argument(
        "--kill-at", type=float, default=0.4,
        help="inject the worker kill at this fraction of the run",
    )
    parser.add_argument(
        "--obs-dir", default=None,
        help="flight-recorder directory (dumped on failure)",
    )
    args = parser.parse_args(argv)

    from ..obs.recorder import open_recorder

    recorder = open_recorder(args.obs_dir)
    config = QTAccelConfig.qlearning(seed=11)
    backend = build_serve_backend(
        config,
        engine="sharded",
        lanes=args.lanes,
        num_states=args.states,
        num_actions=args.actions,
        num_workers=args.workers,
        mp_context=args.mp_context,
    )
    manager = SessionManager(backend, checkpoint_every=32, recorder=recorder)
    gateway = Gateway(
        manager,
        port=0,
        admission_timeout_s=0.25,
        maintenance_interval_s=0.1,
        recorder=recorder,
    )
    if hasattr(backend, "obs_recorder"):
        backend.obs_recorder = recorder
    thread, loop = run_gateway_in_thread(gateway)

    results: list[dict] = []
    results_lock = threading.Lock()
    workers = [
        threading.Thread(
            target=_client_worker,
            args=(gateway.port, i, args.seconds, config, results, results_lock),
        )
        for i in range(args.clients)
    ]
    for w in workers:
        w.start()

    # Fault injection: SIGKILL shard worker 0 mid-run, on the loop thread
    # so it cannot race the maintenance probe's own recovery.
    time.sleep(args.seconds * args.kill_at)
    loop.call_soon_threadsafe(backend.kill_worker, 0)
    print("smoke: killed shard worker 0")

    for w in workers:
        w.join()

    recoveries = manager.recoveries
    info = manager.server_info()
    asyncio.run_coroutine_threadsafe(gateway.close(), loop).result(timeout=30)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)

    ok = [r for r in results if r["status"] == "ok"]
    rejected = [r for r in results if r["status"] == "rejected"]
    failed = [r for r in results if r["status"] == "error"]
    print(
        f"smoke: {len(ok)} completed bit-exact, {len(rejected)} cleanly "
        f"rejected, {len(failed)} failed; {recoveries} session recoveries; "
        f"server={info}"
    )
    for r in failed:
        print(f"smoke: client {r['idx']} FAILED: {r['detail']}")

    verdict = 0
    if failed:
        verdict = 1
    elif not ok:
        print("smoke: no session completed — nothing was exercised")
        verdict = 1
    elif recoveries == 0:
        print("smoke: worker kill was never recovered")
        verdict = 1
    if recorder is not None:
        if verdict:
            print(f"smoke: flight dump: {recorder.dump()}")
        recorder.close()
    if verdict == 0:
        print("smoke: OK")
    return verdict


if __name__ == "__main__":
    raise SystemExit(main())
