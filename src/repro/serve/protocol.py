"""Wire protocol of the session gateway.

The gateway speaks **newline-delimited JSON** over TCP: every request
and every response is one JSON object on one line, UTF-8 encoded,
terminated by ``\\n``.  Requests carry an ``op`` field and (for
session-scoped operations) a ``session`` id; responses always carry
``ok`` plus either the op's payload (``ok: true``) or an ``error``
code and human-readable ``detail`` (``ok: false``).  Clients may tag
any request with an ``id`` field, which is echoed verbatim on the
response — the gateway answers requests from one connection strictly
in order, so the tag is a convenience, not a correlation requirement.

Operations (see :doc:`docs/serving.md </serving>` for the full spec):

=============  ==========================================================
``ping``       liveness probe; replies ``{"ok": true, "pong": true}``
``open``       lease a lane; replies session id, lane, salt, (S, A)
``learn``      apply one transition (``s, a, r, ns, t``) or a ``batch``
``act``        recommend an action for ``s`` (``explore`` optional)
``table``      read the session's raw Q row for ``s`` (or the full table)
``checkpoint``  snapshot the session's lane under a ``tag``
``restore``    roll the lane back to a ``tag`` (default: latest)
``stats``      per-session counters
``server``     gateway-level info (capacity, open sessions, backend)
``close``      end the session, recycling its lane
=============  ==========================================================

Error codes are the closed set in :data:`ERROR_CODES`.
"""

from __future__ import annotations

import json
from typing import Any

#: Protocol identifier, echoed by the ``server`` op.
PROTOCOL = "qtaccel-serve/1"

#: Admission refused: every lane is leased and the wait timed out.
E_AT_CAPACITY = "at_capacity"
#: The ``session`` id is unknown (never opened, or already closed).
E_NO_SESSION = "no_session"
#: The request is malformed (bad JSON, missing/ill-typed fields).
E_BAD_REQUEST = "bad_request"
#: The gateway hit an unexpected exception serving the request.
E_INTERNAL = "internal"
#: The gateway is shutting down and no longer accepts work.
E_CLOSED = "closed"

ERROR_CODES = frozenset(
    {E_AT_CAPACITY, E_NO_SESSION, E_BAD_REQUEST, E_INTERNAL, E_CLOSED}
)

#: Ops a client may send.
OPS = frozenset(
    {
        "ping",
        "open",
        "learn",
        "act",
        "table",
        "checkpoint",
        "restore",
        "stats",
        "server",
        "close",
    }
)

#: Largest accepted ``learn`` batch — bounds per-request gateway latency.
MAX_BATCH = 4096

#: Largest accepted request line, in bytes (a full MAX_BATCH learn fits).
MAX_LINE = 1 << 22


class ProtocolError(Exception):
    """A request the gateway refuses, carrying its wire error code."""

    def __init__(self, code: str, detail: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(detail)
        self.code = code
        self.detail = detail


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one wire frame into a request dict.

    Raises :class:`ProtocolError` (``bad_request``) on anything that is
    not a single JSON object.
    """
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(E_BAD_REQUEST, f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(E_BAD_REQUEST, "request must be a JSON object")
    return message


def ok(payload: dict | None = None, *, req: dict | None = None) -> dict:
    """A success response, echoing the request's ``id`` tag if present."""
    out: dict[str, Any] = {"ok": True}
    if payload:
        out.update(payload)
    if req is not None and "id" in req:
        out["id"] = req["id"]
    return out


def error(code: str, detail: str, *, req: dict | None = None) -> dict:
    """An error response in the canonical shape."""
    if code not in ERROR_CODES:
        code = E_INTERNAL
    out: dict[str, Any] = {"ok": False, "error": code, "detail": detail}
    if req is not None and isinstance(req, dict) and "id" in req:
        out["id"] = req["id"]
    return out


def require_int(req: dict, field: str, *, lo: int = 0, hi: int | None = None) -> int:
    """Pull a bounded integer field out of a request, or ``bad_request``."""
    value = req.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(E_BAD_REQUEST, f"field {field!r} must be an integer")
    if value < lo or (hi is not None and value >= hi):
        upper = "" if hi is None else f" < {hi}"
        raise ProtocolError(
            E_BAD_REQUEST, f"field {field!r}={value} out of range (>= {lo}{upper})"
        )
    return value


def parse_transition(req: dict, *, num_states: int, num_actions: int) -> tuple:
    """Validate one ``(s, a, r, ns, t)`` transition from request fields."""
    s = require_int(req, "s", hi=num_states)
    a = require_int(req, "a", hi=num_actions)
    ns = require_int(req, "ns", hi=num_states)
    r = req.get("r", 0.0)
    if isinstance(r, bool) or not isinstance(r, (int, float)):
        raise ProtocolError(E_BAD_REQUEST, "field 'r' must be a number")
    t = req.get("t", False)
    if not isinstance(t, bool):
        raise ProtocolError(E_BAD_REQUEST, "field 't' must be a boolean")
    return s, a, float(r), ns, t


def parse_batch(req: dict, *, num_states: int, num_actions: int) -> list[tuple]:
    """Validate a ``learn`` batch: a list of ``[s, a, r, ns, t]`` rows."""
    rows = req.get("batch")
    if not isinstance(rows, list):
        raise ProtocolError(E_BAD_REQUEST, "field 'batch' must be a list")
    if len(rows) > MAX_BATCH:
        raise ProtocolError(
            E_BAD_REQUEST, f"batch of {len(rows)} exceeds MAX_BATCH={MAX_BATCH}"
        )
    out = []
    for i, row in enumerate(rows):
        if not isinstance(row, (list, tuple)) or not 4 <= len(row) <= 5:
            raise ProtocolError(
                E_BAD_REQUEST, f"batch[{i}] must be [s, a, r, ns] or [s, a, r, ns, t]"
            )
        fields = {"s": row[0], "a": row[1], "r": row[2], "ns": row[3]}
        if len(row) == 5:
            fields["t"] = row[4]
        out.append(
            parse_transition(fields, num_states=num_states, num_actions=num_actions)
        )
    return out
