"""Wire protocol of the session gateway.

The gateway speaks **newline-delimited JSON** over TCP: every request
and every response is one JSON object on one line, UTF-8 encoded,
terminated by ``\\n``.  Requests carry an ``op`` field and (for
session-scoped operations) a ``session`` id; responses always carry
``ok`` plus either the op's payload (``ok: true``) or an ``error``
code and human-readable ``detail`` (``ok: false``).  Clients may tag
any request with an ``id`` field, which is echoed verbatim on the
response — the gateway answers requests from one connection strictly
in order, so the tag is a convenience, not a correlation requirement.

Three optional request fields harden the protocol against partial
failure (all additive — protocol ``qtaccel-serve/2`` accepts every
``/1`` request):

* ``seq`` — a per-session, strictly increasing integer request id on
  mutating ops (``learn``/``act``/``checkpoint``/``restore``).  It is
  echoed on the response, and the gateway remembers the last applied
  ``seq`` per session together with its response: a retried request
  with the same ``seq`` returns the cached response *without
  re-applying the op*, which is what makes client reconnect-and-retry
  exactly-once (a replayed ``learn`` can never double-apply).
* ``deadline_ms`` — a relative time budget for this request.  The
  gateway refuses expired work with ``deadline_exceeded`` and budgets
  the remainder down into backend lane-ops: a ``learn`` batch that
  runs out of budget mid-application is **rolled back** (nothing
  applied, journal untouched), so a retry stays exactly-once.
* ``token`` — the session's resume token (returned by ``open``).  A
  session whose connection dropped lingers server-side for a grace
  period; any connection presenting the token adopts it and continues
  the same lane bit-exactly.  Requests from a connection that neither
  owns the session nor presents the token are refused (``forbidden``).

Two further optional fields feed the observability layer
(:mod:`repro.obs`); both are advisory, and — like every unknown
optional field — a ``/2`` peer that does not understand them MUST
ignore them rather than reject the request:

* ``trace`` — a span context ``{"trace_id": str, "span_id": str}``
  naming the client-side span this request belongs to; the gateway
  parents its server-side spans under it so one request's timeline
  spans client, gateway, session and shard worker.  Malformed values
  are ignored (the request is served untraced), never rejected.
* ``tenant`` — on ``open`` only: a tenant label for per-tenant SLO
  accounting (latency histograms, shed/throttle/deadline error
  budgets).  Sessions opened without it are accounted to ``anon``.

Operations (see :doc:`docs/serving.md </serving>` for the full spec):

=============  ==========================================================
``ping``       liveness probe; replies ``{"ok": true, "pong": true}``
``open``       lease a lane; replies session id, lane, salt, (S, A)
``learn``      apply one transition (``s, a, r, ns, t``) or a ``batch``
``act``        recommend an action for ``s`` (``explore`` optional)
``table``      read the session's raw Q row for ``s`` (or the full table)
``checkpoint``  snapshot the session's lane under a ``tag``
``restore``    roll the lane back to a ``tag`` (default: latest)
``stats``      per-session counters
``server``     gateway-level info (capacity, open sessions, backend)
``close``      end the session, recycling its lane
=============  ==========================================================

Error codes are the closed set in :data:`ERROR_CODES`.
"""

from __future__ import annotations

import json
from typing import Any

#: Protocol identifier, echoed by the ``server`` op.
PROTOCOL = "qtaccel-serve/2"

#: Admission refused: every lane is leased and the wait timed out (the
#: response carries a computed ``retry_after`` hint, in seconds).
E_AT_CAPACITY = "at_capacity"
#: The ``session`` id is unknown (never opened, or already closed).
E_NO_SESSION = "no_session"
#: The request is malformed (bad JSON, missing/ill-typed fields).
E_BAD_REQUEST = "bad_request"
#: The gateway hit an unexpected exception serving the request.
E_INTERNAL = "internal"
#: The gateway is shutting down and no longer accepts work.
E_CLOSED = "closed"
#: The request's ``deadline_ms`` budget expired before (or while) the
#: op could be applied; nothing was applied.
E_DEADLINE = "deadline_exceeded"
#: The connection's circuit breaker tripped (too many consecutive
#: errors); the response carries a ``retry_after`` hint.
E_THROTTLED = "throttled"
#: Session exists but belongs to another connection and no (or a
#: wrong) resume ``token`` was presented.
E_FORBIDDEN = "forbidden"

ERROR_CODES = frozenset(
    {
        E_AT_CAPACITY,
        E_NO_SESSION,
        E_BAD_REQUEST,
        E_INTERNAL,
        E_CLOSED,
        E_DEADLINE,
        E_THROTTLED,
        E_FORBIDDEN,
    }
)

#: Ops a client may send.
OPS = frozenset(
    {
        "ping",
        "open",
        "learn",
        "act",
        "table",
        "checkpoint",
        "restore",
        "stats",
        "server",
        "close",
    }
)

#: Ops whose application mutates session state and therefore honour the
#: ``seq`` exactly-once cache (reads are naturally idempotent).
MUTATING_OPS = frozenset({"learn", "act", "checkpoint", "restore"})

#: The hot per-transition ops, traced only when head-sampled: the
#: client decides (1-in-N) whether such a request starts a trace, and
#: the gateway follows that decision by only tracing them when the
#: request carries a ``trace`` context.  Every other op is structural
#: (rare, milliseconds) and is always traced.  This is what keeps full
#: tracing under its <5% overhead budget without losing whole-stack
#: traces: a sampled trace is complete end to end.
SAMPLED_OPS = frozenset({"learn", "act"})

#: Largest accepted ``learn`` batch — bounds per-request gateway latency.
MAX_BATCH = 4096

#: Largest accepted request line, in bytes (a full MAX_BATCH learn fits).
MAX_LINE = 1 << 22


class ProtocolError(Exception):
    """A request the gateway refuses, carrying its wire error code.

    ``retry_after`` (seconds, optional) rides along for the codes that
    hint when a retry might succeed (``at_capacity``, ``throttled``).
    """

    def __init__(self, code: str, detail: str, *, retry_after: float | None = None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(detail)
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one wire frame into a request dict.

    Raises :class:`ProtocolError` (``bad_request``) on anything that is
    not a single JSON object.
    """
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(E_BAD_REQUEST, f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(E_BAD_REQUEST, "request must be a JSON object")
    return message


def ok(payload: dict | None = None, *, req: dict | None = None) -> dict:
    """A success response, echoing the request's ``id``/``seq`` tags."""
    out: dict[str, Any] = {"ok": True}
    if payload:
        out.update(payload)
    if req is not None:
        if "id" in req:
            out["id"] = req["id"]
        if "seq" in req:
            out["seq"] = req["seq"]
    return out


def error(
    code: str,
    detail: str,
    *,
    req: dict | None = None,
    retry_after: float | None = None,
) -> dict:
    """An error response in the canonical shape."""
    if code not in ERROR_CODES:
        code = E_INTERNAL
    out: dict[str, Any] = {"ok": False, "error": code, "detail": detail}
    if retry_after is not None:
        out["retry_after"] = round(float(retry_after), 4)
    if req is not None and isinstance(req, dict):
        if "id" in req:
            out["id"] = req["id"]
        if "seq" in req:
            out["seq"] = req["seq"]
    return out


def require_int(req: dict, field: str, *, lo: int = 0, hi: int | None = None) -> int:
    """Pull a bounded integer field out of a request, or ``bad_request``."""
    value = req.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(E_BAD_REQUEST, f"field {field!r} must be an integer")
    if value < lo or (hi is not None and value >= hi):
        upper = "" if hi is None else f" < {hi}"
        raise ProtocolError(
            E_BAD_REQUEST, f"field {field!r}={value} out of range (>= {lo}{upper})"
        )
    return value


def parse_seq(req: dict) -> int | None:
    """Pull the optional ``seq`` request id (positive int) out of ``req``."""
    seq = req.get("seq")
    if seq is None:
        return None
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
        raise ProtocolError(
            E_BAD_REQUEST, "field 'seq' must be a positive integer"
        )
    return seq


def parse_deadline(req: dict, *, now: float) -> float | None:
    """Resolve ``deadline_ms`` into an absolute monotonic deadline.

    Returns ``None`` when the request carries no deadline; raises
    ``deadline_exceeded`` straight away for a non-positive budget.
    """
    budget = req.get("deadline_ms")
    if budget is None:
        return None
    if isinstance(budget, bool) or not isinstance(budget, (int, float)):
        raise ProtocolError(
            E_BAD_REQUEST, "field 'deadline_ms' must be a number"
        )
    if budget <= 0:
        raise ProtocolError(
            E_DEADLINE, f"deadline_ms={budget} already expired on arrival"
        )
    return now + float(budget) / 1e3


def parse_trace(req: dict):
    """Pull the optional ``trace`` span context out of a request.

    Returns a :class:`repro.obs.tracing.TraceContext` or ``None``.
    Never raises: a malformed ``trace`` field means "untraced", not
    ``bad_request`` — observability must not break traffic, and peers
    that predate the field must stay compatible with ones that send it.
    """
    field = req.get("trace")
    if field is None:
        return None
    from ..obs.tracing import ctx_from_wire

    return ctx_from_wire(field)


def parse_tenant(req: dict) -> str | None:
    """Pull the optional ``open`` tenant label (None when absent/bad).

    Like ``trace``, advisory: a non-string or empty tenant is treated
    as absent rather than rejected.
    """
    tenant = req.get("tenant")
    if isinstance(tenant, str) and tenant.strip():
        return tenant.strip()[:64]
    return None


def parse_transition(req: dict, *, num_states: int, num_actions: int) -> tuple:
    """Validate one ``(s, a, r, ns, t)`` transition from request fields."""
    s = require_int(req, "s", hi=num_states)
    a = require_int(req, "a", hi=num_actions)
    ns = require_int(req, "ns", hi=num_states)
    r = req.get("r", 0.0)
    if isinstance(r, bool) or not isinstance(r, (int, float)):
        raise ProtocolError(E_BAD_REQUEST, "field 'r' must be a number")
    t = req.get("t", False)
    if not isinstance(t, bool):
        raise ProtocolError(E_BAD_REQUEST, "field 't' must be a boolean")
    return s, a, float(r), ns, t


def parse_batch(req: dict, *, num_states: int, num_actions: int) -> list[tuple]:
    """Validate a ``learn`` batch: a list of ``[s, a, r, ns, t]`` rows."""
    rows = req.get("batch")
    if not isinstance(rows, list):
        raise ProtocolError(E_BAD_REQUEST, "field 'batch' must be a list")
    if len(rows) > MAX_BATCH:
        raise ProtocolError(
            E_BAD_REQUEST, f"batch of {len(rows)} exceeds MAX_BATCH={MAX_BATCH}"
        )
    out = []
    for i, row in enumerate(rows):
        if not isinstance(row, (list, tuple)) or not 4 <= len(row) <= 5:
            raise ProtocolError(
                E_BAD_REQUEST, f"batch[{i}] must be [s, a, r, ns] or [s, a, r, ns, t]"
            )
        fields = {"s": row[0], "a": row[1], "r": row[2], "ns": row[3]}
        if len(row) == 5:
            fields["t"] = row[4]
        out.append(
            parse_transition(fields, num_states=num_states, num_actions=num_actions)
        )
    return out
