"""Per-cycle stage-event recording into a bounded ring buffer.

A :class:`TraceRecorder` captures :class:`TraceEvent` records — one per
interesting thing a pipeline stage did in a cycle (issue, forward,
stall-bubble, Qmax-raise, retire).  Memory is bounded by construction:
the buffer holds ``capacity`` events and overwrites the oldest once
full, counting what it dropped, so tracing a hundred-million-cycle run
costs the same memory as tracing a thousand cycles (you keep the tail,
which is what the timeline viewers want anyway).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

#: Stage labels used by the pipeline probes.
STAGES = ("S1", "S2", "S3", "S4")

#: Event kinds emitted by the pipeline probes.
KINDS = (
    "issue",  # S1 accepted a new sample
    "select",  # S2 fired its update-policy selection
    "forward",  # a forwarding path fixed up an in-flight operand (arg = hits)
    "stall",  # a hazard bubble (stall mode) held a stage this cycle
    "hold",  # S2 multi-cycle selection held the pipe this cycle
    "qmax_raise",  # S4 maintenance wrote the Qmax entry
    "retire",  # S4 wrote back a sample
)


class TraceEvent(NamedTuple):
    """One per-cycle stage event."""

    cycle: int  #: cycle index at which the event happened
    pipe: str  #: producer name (``pipe0`` ... for multi-pipeline runs)
    stage: str  #: one of :data:`STAGES`
    kind: str  #: one of :data:`KINDS`
    index: int  #: sample index, or -1 when no sample is associated
    arg: int = 0  #: kind-specific payload (forwarding hit count, ...)


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent`.

    ``record`` is a list append until the buffer fills, then an indexed
    overwrite — O(1) either way, no per-event allocation beyond the
    tuple itself.
    """

    __slots__ = ("capacity", "_buf", "_head", "total", "dropped")

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buf: list[TraceEvent] = []
        self._head = 0  # next overwrite slot once the buffer is full
        self.total = 0  # events ever offered
        self.dropped = 0  # events overwritten (total - retained)

    def record(
        self, cycle: int, pipe: str, stage: str, kind: str, index: int, arg: int = 0
    ) -> None:
        ev = TraceEvent(cycle, pipe, stage, kind, index, arg)
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(ev)
        else:
            buf[self._head] = ev
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1
        self.total += 1

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> list[TraceEvent]:
        """Retained events in chronological order (oldest first)."""
        if len(self._buf) < self.capacity or self._head == 0:
            return list(self._buf)
        return self._buf[self._head :] + self._buf[: self._head]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def counts_by_kind(self) -> dict[str, int]:
        """Histogram of the *retained* events by kind."""
        out: dict[str, int] = {}
        for ev in self._buf:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def clear(self) -> None:
        self._buf = []
        self._head = 0
        self.total = 0
        self.dropped = 0

    def __repr__(self) -> str:
        return (
            f"TraceRecorder({len(self._buf)}/{self.capacity} retained, "
            f"{self.dropped} dropped)"
        )
