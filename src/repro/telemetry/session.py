"""The :class:`TelemetrySession` — wiring counters and traces into engines.

A session owns one :class:`~repro.telemetry.counters.CounterRegistry`
and (optionally) one :class:`~repro.telemetry.trace.TraceRecorder`, and
knows how to *attach* to the library's engines:

* :class:`~repro.core.pipeline.QTAccelPipeline` — a
  :class:`PipelineProbe` is installed on the pipeline's single hook
  point (``pipe._tel``); the four stages and the forwarding paths emit
  events/counters through it.  Detached pipelines hold ``None`` there
  and pay one pointer test per instrumented site.
* Anything exposing ``telemetry_snapshot()`` (e.g.
  :class:`~repro.rtl.memory.TableRam`,
  :class:`~repro.rtl.clock.Simulation`) — snapshotted at profile time,
  zero run-time cost.
* Anything exposing ``.stats`` (batch fleets, functional simulators) —
  likewise snapshotted.

Sessions are context managers; inside a ``with`` block the session is
*ambient* (:func:`current_session`), and every engine constructed in
that window attaches itself — which is how ``--telemetry`` reaches
experiments without threading a parameter through every harness.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .counters import CounterRegistry
from .export import write_chrome_trace, write_profile_csv, write_profile_json
from .trace import TraceRecorder

#: Stack of ambient sessions (innermost last).
_ACTIVE: list["TelemetrySession"] = []


def current_session() -> Optional["TelemetrySession"]:
    """The innermost active session, or ``None`` (the common case)."""
    return _ACTIVE[-1] if _ACTIVE else None


#: Forwarding paths instrumented in the pipeline, ``(stage, hazard kind)``:
#: carried-operand fixups (RAW on Q(s,a) / on the bootstrap operand) and
#: read-path overlays (the ForwardingView serving stage-1/2 reads).
FORWARD_PATHS = (
    ("S3", "q_operand"),
    ("S3", "qnext"),
    ("S2", "q_operand"),
    ("S2", "view_q"),
    ("S2", "view_qmax"),
    ("S1", "view_q"),
    ("S1", "view_qmax"),
)


class PipelineProbe:
    """Per-pipeline hook object the instrumented stages call into.

    Counter updates are direct attribute adds; trace recording is one
    method call guarded by the recorder's presence.  A pipeline holds at
    most one probe; ``pipe._tel is None`` is the disabled fast path.
    """

    __slots__ = (
        "name",
        "recorder",
        "occ_s1",
        "occ_s2",
        "occ_s3",
        "occ_s4",
        "c_qmax_raise",
        "fwd",
    )

    def __init__(self, name: str, registry: CounterRegistry, recorder):
        self.name = name
        self.recorder = recorder
        p = name + "."
        self.occ_s1 = registry.counter(p + "stage.S1.active")
        self.occ_s2 = registry.counter(p + "stage.S2.active")
        self.occ_s3 = registry.counter(p + "stage.S3.active")
        self.occ_s4 = registry.counter(p + "stage.S4.active")
        self.c_qmax_raise = registry.counter(p + "qmax_raises")
        self.fwd = {
            (stage, kind): registry.counter(f"{p}forward.{stage}.{kind}")
            for stage, kind in FORWARD_PATHS
        }

    # Stage events ----------------------------------------------------- #

    def issue(self, cycle: int, index: int) -> None:
        if self.recorder is not None:
            self.recorder.record(cycle, self.name, "S1", "issue", index)

    def select(self, cycle: int, index: int) -> None:
        if self.recorder is not None:
            self.recorder.record(cycle, self.name, "S2", "select", index)

    def hold(self, cycle: int, index: int) -> None:
        if self.recorder is not None:
            self.recorder.record(cycle, self.name, "S2", "hold", index)

    def stall(self, cycle: int, stage: str, index: int) -> None:
        if self.recorder is not None:
            self.recorder.record(cycle, self.name, stage, "stall", index)

    def retire(self, cycle: int, index: int) -> None:
        if self.recorder is not None:
            self.recorder.record(cycle, self.name, "S4", "retire", index)

    def qmax_raise(self, cycle: int, index: int) -> None:
        self.c_qmax_raise.value += 1
        if self.recorder is not None:
            self.recorder.record(cycle, self.name, "S4", "qmax_raise", index)

    def forward(self, cycle: int, stage: str, kind: str, index: int, hits: int) -> None:
        self.fwd[(stage, kind)].value += hits
        if self.recorder is not None:
            self.recorder.record(cycle, self.name, stage, "forward", index, hits)

    def occupancy(self, s1: bool, s2: bool, s3: bool, s4: bool) -> None:
        if s1:
            self.occ_s1.value += 1
        if s2:
            self.occ_s2.value += 1
        if s3:
            self.occ_s3.value += 1
        if s4:
            self.occ_s4.value += 1


class CounterGroup:
    """A namespaced get-or-create view over the session registry, for
    engines (bandits, batch fleets) that only need counters/gauges."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: CounterRegistry, prefix: str):
        self.registry = registry
        self.prefix = prefix

    def inc(self, key: str, n: int = 1) -> None:
        self.registry.counter(f"{self.prefix}.{key}").value += n

    def set(self, key: str, value) -> None:
        self.registry.gauge(f"{self.prefix}.{key}").set(value)

    def observe(self, key: str, value) -> None:
        self.registry.histogram(f"{self.prefix}.{key}").observe(value)


def _stats_dict(stats) -> dict:
    """Best-effort scalar dict from an engine's ``stats`` object."""
    as_dict = getattr(stats, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    if dataclasses.is_dataclass(stats):
        return {
            f.name: getattr(stats, f.name)
            for f in dataclasses.fields(stats)
            if isinstance(getattr(stats, f.name), (int, float, bool))
        }
    return {
        k: v
        for k, v in vars(stats).items()
        if isinstance(v, (int, float, bool))
    }


class TelemetrySession:
    """Collects counters and (optionally) a cycle-level trace for one run.

    Use as a context manager to make the session ambient — engines
    constructed inside the ``with`` block attach automatically — or call
    :meth:`attach` explicitly.  Exports stay valid after exit; the
    session merely stops being ambient.
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        trace_capacity: int = 65536,
    ):
        self.registry = CounterRegistry()
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(trace_capacity) if trace else None
        )
        self._pipes: list[tuple[str, object]] = []
        self._snapshots: list[tuple[str, object]] = []
        self._names: set[str] = set()
        self._seen_ids: dict[int, str] = {}
        self._device: Optional[tuple[object, int, Optional[int]]] = None
        #: Live-export hooks (see :mod:`repro.perf.metrics_export`):
        #: long-running engines call :meth:`pulse` inside their run
        #: loops; each registered emitter rate-limits itself.
        self._emitters: list = []

    # ------------------------------------------------------------------ #
    # Ambient activation
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "TelemetrySession":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc) -> None:
        if not _ACTIVE or _ACTIVE[-1] is not self:
            raise RuntimeError("telemetry session stack out of order")
        _ACTIVE.pop()

    def activate(self) -> "TelemetrySession":
        """Alias for use as ``with session.activate():`` when re-entering."""
        return self

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #

    def _unique(self, base: str) -> str:
        if base not in self._names:
            self._names.add(base)
            return base
        i = 1
        while f"{base}_{i}" in self._names:
            i += 1
        name = f"{base}_{i}"
        self._names.add(name)
        return name

    def attach(self, obj, name: Optional[str] = None) -> str:
        """Wire ``obj`` into this session; returns its assigned name.

        Attaching the same object twice is a no-op returning the first
        name (pipelines built inside an ambient ``with`` block are
        already attached when a deployment wrapper attaches them again).
        """
        prior = self._seen_ids.get(id(obj))
        if prior is not None:
            return prior
        from ..core.pipeline import QTAccelPipeline  # lazy: avoids an import cycle

        if isinstance(obj, QTAccelPipeline):
            assigned = self._unique(name or f"pipe{len(self._pipes)}")
            probe = PipelineProbe(assigned, self.registry, self.recorder)
            obj._tel = probe
            self._pipes.append((assigned, obj))
            self._seen_ids[id(obj)] = assigned
            self.attach(obj.tables, f"{assigned}.mem")
            return assigned
        assigned = self._unique(name or type(obj).__name__.lower())
        self._snapshots.append((assigned, obj))
        self._seen_ids[id(obj)] = assigned
        return assigned

    def group(self, name: str) -> CounterGroup:
        """A namespaced counter group for counter-only engines."""
        return CounterGroup(self.registry, self._unique(name))

    # ------------------------------------------------------------------ #
    # Live export (mid-flight scraping)
    # ------------------------------------------------------------------ #

    def add_emitter(self, emitter) -> None:
        """Register a live-metrics emitter (an object with
        ``maybe_emit(session)``, e.g.
        :class:`repro.perf.metrics_export.JsonlEmitter`)."""
        self._emitters.append(emitter)

    def pulse(self) -> None:
        """Offer every registered emitter a chance to emit.

        Engines call this inside their run loops (the shared and batch
        fleets, the fleet supervisor); with no emitters registered it is
        one empty-list iteration, so the hook is safe on hot-ish paths.
        """
        for emitter in self._emitters:
            emitter.maybe_emit(self)

    def record_device(
        self,
        resource_report,
        *,
        pipelines: int = 1,
        cycles: Optional[int] = None,
    ) -> None:
        """Join this session's cycle counts with the device models.

        ``resource_report`` is a
        :class:`~repro.device.resources.ResourceReport`; the profile
        will include the modelled clock, wall-time and energy for the
        cycles the attached pipelines actually consumed (or an explicit
        ``cycles`` override).
        """
        self._device = (resource_report, pipelines, cycles)

    # ------------------------------------------------------------------ #
    # Profile assembly
    # ------------------------------------------------------------------ #

    def _max_cycles(self) -> int:
        return max((p.stats.cycles for _, p in self._pipes), default=0)

    def profile(self) -> dict:
        """Assemble the flat-exportable profile summary."""
        counters = self.registry.as_dict()
        pipes: dict = {}
        total_retired = 0
        for name, pipe in self._pipes:
            st = pipe.stats
            stats = st.as_dict()
            total_retired += st.retired
            cycles = st.cycles
            occ = {
                s: (counters.get(f"{name}.stage.{s}.active", 0) / cycles if cycles else 0.0)
                for s in ("S1", "S2", "S3", "S4")
            }
            fwd_total = sum(
                counters.get(f"{name}.forward.{stage}.{kind}", 0)
                for stage, kind in FORWARD_PATHS
            )
            pipes[name] = {
                "stats": stats,
                "derived": {
                    "cycles_per_sample": st.cycles_per_sample
                    if st.retired
                    else None,
                    "ipc": st.retired / cycles if cycles else 0.0,
                    "occupancy": occ,
                    "forward_hits_total": fwd_total,
                    "qmax_raises": counters.get(f"{name}.qmax_raises", 0),
                },
            }
        engines: dict = {}
        for name, obj in self._snapshots:
            snap_fn = getattr(obj, "telemetry_snapshot", None)
            engines[name] = snap_fn() if callable(snap_fn) else _stats_dict(obj.stats)
        cycles = self._max_cycles()
        profile: dict = {
            "meta": {
                "instruments": len(self.registry),
                "events_total": self.recorder.total if self.recorder else 0,
                "events_retained": len(self.recorder) if self.recorder else 0,
                "events_dropped": self.recorder.dropped if self.recorder else 0,
            },
            "totals": {
                "cycles": cycles,
                "retired": total_retired,
                "ipc": total_retired / cycles if cycles else 0.0,
            },
            "counters": counters,
            "pipes": pipes,
            "engines": engines,
        }
        if self._device is not None:
            report, n_pipes, cyc_override = self._device
            cyc = cyc_override if cyc_override is not None else cycles
            from ..device.power import energy_mj, power_mw
            from ..device.timing import clock_mhz, wall_time_s

            clock = clock_mhz(
                report.bram_blocks / report.part.bram36, part=report.part
            )
            profile["device"] = {
                "part": report.part.name,
                "pipelines": n_pipes,
                "clock_mhz": clock,
                "cycles": cyc,
                "wall_time_s": wall_time_s(cyc, clock),
                "power_mw": power_mw(report, clock=clock),
                "energy_mj": energy_mj(report, cyc, clock=clock),
            }
        return profile

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #

    def export_chrome_trace(self, path, *, us_per_cycle: float = 1.0) -> None:
        """Write the retained trace as Chrome ``trace_event`` JSON."""
        if self.recorder is None:
            raise RuntimeError("session was created with trace=False")
        write_chrome_trace(path, self.recorder.events(), us_per_cycle=us_per_cycle)

    def export_profile(self, path, *, fmt: str = "json") -> None:
        """Write the profile summary as JSON or two-column CSV."""
        profile = self.profile()
        if fmt == "json":
            write_profile_json(path, profile)
        elif fmt == "csv":
            write_profile_csv(path, profile)
        else:
            raise ValueError(f"unknown profile format {fmt!r}; use 'json' or 'csv'")
