"""Exporters: Chrome ``trace_event`` JSON and flat profile JSON/CSV.

The Chrome trace format (one JSON object with a ``traceEvents`` list)
is readable by ``chrome://tracing`` and https://ui.perfetto.dev.  We
map one simulated clock cycle to one microsecond of trace time, each
pipeline to a process (``pid``) and each pipeline stage to a thread
(``tid``), so the four-stage occupancy reads as four swim-lanes per
pipeline with the sample index attached to every slice.

Profile summaries are plain nested dicts (see
:meth:`repro.telemetry.session.TelemetrySession.profile`); this module
serialises them to JSON or to a two-column ``key,value`` CSV via
:func:`flatten_profile`.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Union

from .trace import STAGES, TraceEvent

#: tid assigned to each stage lane (S1 at the top of the swim-lanes).
_STAGE_TID = {stage: i + 1 for i, stage in enumerate(STAGES)}


def chrome_trace(
    events: Iterable[TraceEvent], *, us_per_cycle: float = 1.0
) -> dict:
    """Render events as a Chrome ``trace_event`` JSON object.

    Returns a dict ready for ``json.dump``: ``traceEvents`` holds one
    complete ("X") slice per event, one cycle wide, plus the metadata
    ("M") records that name every process (pipeline) and thread
    (stage).
    """
    if us_per_cycle <= 0:
        raise ValueError("us_per_cycle must be positive")
    trace: list[dict] = []
    pids: dict[str, int] = {}
    for ev in events:
        pid = pids.get(ev.pipe)
        if pid is None:
            pid = len(pids) + 1
            pids[ev.pipe] = pid
        args: dict[str, int] = {"cycle": ev.cycle}
        if ev.index >= 0:
            args["sample"] = ev.index
        if ev.arg:
            args["arg"] = ev.arg
        trace.append(
            {
                "name": ev.kind,
                "cat": ev.stage,
                "ph": "X",
                "ts": ev.cycle * us_per_cycle,
                "dur": us_per_cycle,
                "pid": pid,
                "tid": _STAGE_TID.get(ev.stage, 0),
                "args": args,
            }
        )
    meta: list[dict] = []
    for pipe, pid in pids.items():
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": pipe},
            }
        )
        for stage, tid in _STAGE_TID.items():
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": stage},
                }
            )
    return {
        "traceEvents": meta + trace,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.telemetry", "us_per_cycle": us_per_cycle},
    }


def write_chrome_trace(
    path, events: Iterable[TraceEvent], *, us_per_cycle: float = 1.0
) -> None:
    """Serialise :func:`chrome_trace` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(events, us_per_cycle=us_per_cycle), fh)


def flatten_profile(profile: dict, prefix: str = "") -> dict[str, Union[int, float, str]]:
    """Flatten a nested profile dict to ``{dotted.key: scalar}``."""
    out: dict[str, Union[int, float, str]] = {}
    for key, value in profile.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_profile(value, f"{name}."))
        else:
            out[name] = value
    return out


def write_profile_json(path, profile: dict) -> None:
    """Write a profile summary as indented JSON."""
    with open(path, "w") as fh:
        json.dump(profile, fh, indent=2, sort_keys=True)
        fh.write("\n")


def profile_csv(profile: dict) -> str:
    """Render a profile as a two-column ``key,value`` CSV string."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["key", "value"])
    for key, value in sorted(flatten_profile(profile).items()):
        writer.writerow([key, value])
    return buf.getvalue()


def write_profile_csv(path, profile: dict) -> None:
    """Write a profile summary as ``key,value`` CSV."""
    with open(path, "w", newline="") as fh:
        fh.write(profile_csv(profile))
