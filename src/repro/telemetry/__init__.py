"""Observability for the QTAccel reproduction.

The paper's headline claims — one retirement per cycle after fill, zero
stalls under full forwarding, memory traffic independent of ``|A|`` on
the read-for-max path — deserve to be *measured* per run, not asserted.
This package is the measuring instrument:

* :mod:`repro.telemetry.counters` — a hierarchical
  :class:`CounterRegistry` of named counters / gauges / histograms with
  near-zero overhead when no session is active;
* :mod:`repro.telemetry.trace` — a bounded ring-buffer
  :class:`TraceRecorder` of per-cycle stage events (issue, forward,
  stall-bubble, Qmax-raise, retire);
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON for
  timeline viewing (``chrome://tracing`` / Perfetto) and flat JSON/CSV
  profile summaries;
* :mod:`repro.telemetry.session` — :class:`TelemetrySession`, the
  context manager that wires everything into the engines
  (:class:`~repro.core.pipeline.QTAccelPipeline`, the multi-pipeline
  deployments, the batch fleet engine, the bandit accelerators);
* :mod:`repro.telemetry.invariants` — :func:`verify_paper_invariants`,
  assertion-backed checks of the paper's never-stall claim;
* :mod:`repro.telemetry.report` — ``python -m repro.telemetry.report``,
  a renderer for exported profiles.

Quick use::

    from repro.telemetry import TelemetrySession

    with TelemetrySession() as tel:
        pipe = QTAccelPipeline(mdp, config)   # auto-attached
        pipe.run(100_000)
    tel.export_chrome_trace("run.trace.json")
    tel.export_profile("run.profile.json")
"""

from .counters import (
    Counter,
    CounterRegistry,
    Gauge,
    Histogram,
    NULL_REGISTRY,
)
from .trace import TraceEvent, TraceRecorder
from .export import (
    chrome_trace,
    flatten_profile,
    write_chrome_trace,
    write_profile_csv,
    write_profile_json,
)
from .session import TelemetrySession, current_session
from .invariants import InvariantReport, verify_paper_invariants

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CounterRegistry",
    "NULL_REGISTRY",
    "TraceEvent",
    "TraceRecorder",
    "chrome_trace",
    "write_chrome_trace",
    "write_profile_json",
    "write_profile_csv",
    "flatten_profile",
    "TelemetrySession",
    "current_session",
    "InvariantReport",
    "verify_paper_invariants",
]
