"""Render an exported telemetry profile (or Chrome trace) as text.

Usage::

    python -m repro.telemetry.report run.profile.json
    python -m repro.telemetry.report run.trace.json      # event counts
    python -m repro.telemetry.report run.profile.json --counters
    python -m repro.telemetry.report old.profile.json new.profile.json

With two profiles the report becomes a per-counter delta table (new
minus old, with percentages), for eyeballing what a change did to the
forwarding-path and stall counters between two runs.
"""

from __future__ import annotations

import argparse
import json
import sys


def _rows(pairs, headers) -> str:
    """Fixed-width two-plus-column rendering."""
    cells = [[str(c) for c in row] for row in pairs]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def render_profile(profile: dict, *, show_counters: bool = False) -> str:
    """Human-readable summary of a profile dict."""
    out: list[str] = []
    totals = profile.get("totals", {})
    meta = profile.get("meta", {})
    out.append("== telemetry profile ==")
    out.append(
        f"cycles={totals.get('cycles', 0)}  retired={totals.get('retired', 0)}  "
        f"ipc={_fmt(totals.get('ipc', 0.0))}"
    )
    out.append(
        f"trace events: total={meta.get('events_total', 0)} "
        f"retained={meta.get('events_retained', 0)} "
        f"dropped={meta.get('events_dropped', 0)}"
    )
    for name, pipe in sorted(profile.get("pipes", {}).items()):
        stats = pipe.get("stats", {})
        derived = pipe.get("derived", {})
        out.append(f"\n-- {name} --")
        rows = [(k, _fmt(v)) for k, v in sorted(stats.items())]
        cps = derived.get("cycles_per_sample")
        rows.append(("cycles_per_sample", _fmt(cps) if cps is not None else "-"))
        rows.append(("ipc", _fmt(derived.get("ipc", 0.0))))
        rows.append(("forward_hits_total", _fmt(derived.get("forward_hits_total", 0))))
        rows.append(("qmax_raises", _fmt(derived.get("qmax_raises", 0))))
        out.append(_rows(rows, ("stat", "value")))
        occ = derived.get("occupancy", {})
        if occ:
            out.append(
                "stage occupancy: "
                + "  ".join(f"{s}={_fmt(f)}" for s, f in sorted(occ.items()))
            )
    engines = profile.get("engines", {})
    if engines:
        from .export import flatten_profile

        out.append("\n-- attached engines --")
        for name, snap in sorted(engines.items()):
            flat = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(flatten_profile(snap).items())
            )
            out.append(f"{name}: {flat}")
    device = profile.get("device")
    if device:
        out.append("\n-- device model --")
        out.append(_rows(sorted((k, _fmt(v)) for k, v in device.items()), ("key", "value")))
    if show_counters:
        out.append("\n-- counters --")
        out.append(
            _rows(
                [(k, _fmt(v)) for k, v in sorted(profile.get("counters", {}).items())
                 if not isinstance(v, dict)],
                ("counter", "value"),
            )
        )
    return "\n".join(out)


def render_profile_delta(base: dict, new: dict) -> str:
    """Per-counter deltas between two profile dicts (``new - base``).

    Histogram counters (dict-valued) are skipped; counters present in
    only one profile render with ``-`` on the missing side.
    """
    b_counters = {
        k: v for k, v in base.get("counters", {}).items() if not isinstance(v, dict)
    }
    n_counters = {
        k: v for k, v in new.get("counters", {}).items() if not isinstance(v, dict)
    }
    out = ["== telemetry profile delta =="]
    b_tot, n_tot = base.get("totals", {}), new.get("totals", {})
    out.append(
        f"cycles  {b_tot.get('cycles', 0)} -> {n_tot.get('cycles', 0)}   "
        f"retired {b_tot.get('retired', 0)} -> {n_tot.get('retired', 0)}   "
        f"ipc {_fmt(b_tot.get('ipc', 0.0))} -> {_fmt(n_tot.get('ipc', 0.0))}"
    )
    rows = []
    changed = 0
    for key in sorted(set(b_counters) | set(n_counters)):
        old, cur = b_counters.get(key), n_counters.get(key)
        if old == cur:
            continue
        changed += 1
        if old is None or cur is None:
            delta, pct = "-", "-"
        else:
            delta = _fmt(cur - old)
            pct = f"{100.0 * (cur - old) / old:+.1f}%" if old else "-"
        rows.append(
            (
                key,
                _fmt(old) if old is not None else "-",
                _fmt(cur) if cur is not None else "-",
                delta,
                pct,
            )
        )
    if rows:
        out.append(_rows(rows, ("counter", "old", "new", "delta", "pct")))
    unchanged = len(set(b_counters) & set(n_counters)) - sum(
        1 for k in b_counters if k in n_counters and b_counters[k] != n_counters[k]
    )
    out.append(f"{changed} counter(s) differ, {unchanged} unchanged")
    return "\n".join(out)


def render_chrome_trace(trace: dict) -> str:
    """Event-count digest of a Chrome trace_event file."""
    by_kind: dict[str, int] = {}
    pipes: set = set()
    lo, hi = None, None
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        by_kind[ev["name"]] = by_kind.get(ev["name"], 0) + 1
        pipes.add(ev.get("pid"))
        ts = ev.get("ts", 0)
        lo = ts if lo is None else min(lo, ts)
        hi = ts if hi is None else max(hi, ts)
    out = ["== chrome trace digest =="]
    out.append(f"pipelines: {len(pipes)}")
    if lo is not None:
        out.append(f"span: ts {lo} .. {hi}")
    out.append(_rows(sorted(by_kind.items()), ("event", "count")))
    out.append("open in chrome://tracing or https://ui.perfetto.dev")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render an exported telemetry profile or Chrome trace.",
    )
    parser.add_argument("path", help="profile .json (or Chrome trace .json)")
    parser.add_argument(
        "other",
        nargs="?",
        help="second profile .json: print per-counter deltas (other - path)",
    )
    parser.add_argument(
        "--counters", action="store_true", help="also dump every raw counter"
    )
    args = parser.parse_args(argv)
    data_by_path = {}
    for path in filter(None, (args.path, args.other)):
        try:
            with open(path) as fh:
                data_by_path[path] = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2
    data = data_by_path[args.path]
    try:
        if args.other is not None:
            other = data_by_path[args.other]
            if "traceEvents" in data or "traceEvents" in other:
                print("delta mode needs two profile files, not traces", file=sys.stderr)
                return 2
            print(render_profile_delta(data, other))
        elif "traceEvents" in data:
            print(render_chrome_trace(data))
        else:
            print(render_profile(data, show_counters=args.counters))
    except BrokenPipeError:  # |head and friends — not an error
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
