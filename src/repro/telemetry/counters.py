"""Named, hierarchical counters, gauges and histograms.

Instruments are plain attribute-bearing objects (``__slots__``, no
locks, no string formatting on the hot path): incrementing a counter is
one attribute add, which is what lets the cycle-accurate pipeline keep
its own bookkeeping on a :class:`CounterRegistry` without measurable
cost.  Names are dot-separated paths (``pipe0.stage.s2.active``); the
registry can render them flat (:meth:`CounterRegistry.as_dict`) or as a
nested tree (:meth:`CounterRegistry.tree`).

When telemetry is disabled there is nothing to pay at all: code that
*would* emit into a session holds ``None`` and skips the call.  For the
rarer pattern of an instrument handle that must always exist,
:data:`NULL_REGISTRY` hands out shared no-op singletons without
allocating per name.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (powers of two; one overflow
#: bucket is appended implicitly).
DEFAULT_BOUNDS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically *intended* integer counter.

    ``value`` is a public attribute on purpose — the pipeline's hot loop
    does ``counter.value += 1`` directly rather than paying a method
    call.  :meth:`inc` exists for call sites where clarity beats the
    nanoseconds.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins instrument (occupancy, configured sizes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Number = 0):
        self.name = name
        self.value = value

    def set(self, v: Number) -> None:
        self.value = v

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A bucketed distribution with count/sum/min/max sidecars.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound.  Bucketing is a bisect over
    a tuple — cheap enough for per-event observation, and the summary
    stays bounded no matter how many observations arrive.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[Number] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, v: Number) -> None:
        self.buckets[bisect.bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def summary(self) -> dict:
        """JSON-ready digest of the distribution."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{f"le_{b}": n for b, n in zip(self.bounds, self.buckets)},
                "overflow": self.buckets[-1],
            },
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3g})"


class CounterRegistry:
    """Get-or-create home for named instruments.

    One registry per producer (a pipeline's stats, a telemetry
    session); readers snapshot with :meth:`as_dict` / :meth:`tree`.
    Asking for an existing name returns the same object; asking for it
    as a different instrument kind is an error (it would silently fork
    the measurement).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind: type, factory):
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
            return inst
        if not isinstance(inst, kind):
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Iterable[Number] = DEFAULT_BOUNDS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def instruments(self) -> list[Union[Counter, Gauge, Histogram]]:
        """Every registered instrument, sorted by name (typed view for
        exporters that must distinguish counter/gauge/histogram)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def as_dict(self) -> dict:
        """Flat ``{dotted.name: value-or-summary}`` snapshot, sorted."""
        out: dict = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            out[name] = inst.summary() if isinstance(inst, Histogram) else inst.value
        return out

    def tree(self) -> dict:
        """Nested-dict view, splitting names on dots."""
        root: dict = {}
        for name, value in self.as_dict().items():
            node = root
            *path, leaf = name.split(".")
            for part in path:
                node = node.setdefault(part, {})
                if not isinstance(node, dict):
                    raise ValueError(f"name {name!r} nests under a leaf value")
            node[leaf] = value
        return root

    def reset(self) -> None:
        for inst in self._instruments.values():
            inst.reset()


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()
    name = "<null>"
    value = 0
    count = 0
    total = 0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, v: Number) -> None:
        pass

    def observe(self, v: Number) -> None:
        pass

    def reset(self) -> None:
        pass

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A registry that hands out one shared no-op instrument.

    Requesting a thousand names allocates nothing — the disabled-mode
    guarantee the tests pin.
    """

    def counter(self, name: str) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def names(self) -> list[str]:
        return []

    def instruments(self) -> list:
        return []

    def as_dict(self) -> dict:
        return {}

    def tree(self) -> dict:
        return {}

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


#: The process-wide disabled registry.
NULL_REGISTRY = NullRegistry()
