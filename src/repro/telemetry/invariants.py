"""Assertion-backed checks of the paper's headline pipeline claims.

The paper (§I, §IV) asserts that with full forwarding the pipeline never
stalls and retires one sample per cycle after fill.  With the stats
counters now split by cause (hazard bubbles vs. multi-cycle stage-2
holds), those claims are checkable per run instead of taken on faith.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Issue-to-retire latency minus one: a fresh drain-to-empty run of
#: ``n`` samples takes exactly ``n + PIPELINE_FILL_CYCLES`` cycles when
#: the never-stall claim holds.
PIPELINE_FILL_CYCLES = 3


@dataclass
class InvariantReport:
    """Outcome of :func:`verify_paper_invariants`."""

    ok: bool
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def failures(self) -> list[str]:
        return [detail for _, passed, detail in self.checks if not passed]

    def format(self) -> str:
        lines = []
        for name, passed, detail in self.checks:
            lines.append(f"[{'ok' if passed else 'FAIL'}] {name}: {detail}")
        return "\n".join(lines)


def verify_paper_invariants(
    pipe,
    *,
    samples: Optional[int] = None,
    runs: Optional[int] = None,
    strict: bool = True,
) -> InvariantReport:
    """Check a pipeline's counters against the paper's claims.

    Always checked:

    * the pipeline drained (``retired == issued``);
    * ``samples``, if given, all retired (``retired == samples``);
    * for update rules with extra tables (momentum/target — see
      :mod:`repro.algorithms`), the tables the rule declares exist and
      hold no staged (uncommitted) writes after the drain — the stage-4
      extra-table write path obeys the same clock-edge discipline as
      the Q table.

    Checked only for the paper's design point (``hazard_mode="forward"``
    with a single-cycle stage 2):

    * zero stall bubbles of any kind (the never-stall claim);
    * with ``runs`` (the number of drain-to-empty ``run()`` calls
      made), exact one-retirement-per-cycle accounting:
      ``cycles == retired + 3 * runs`` (each fresh fill costs
      :data:`PIPELINE_FILL_CYCLES` cycles).

    With ``strict`` (default) an :class:`AssertionError` listing every
    failed check is raised; otherwise the report is returned for the
    caller to inspect.
    """
    st = pipe.stats
    cfg = pipe.config
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, passed: bool, detail: str) -> None:
        checks.append((name, bool(passed), detail))

    check(
        "drained",
        st.retired == st.issued,
        f"retired={st.retired} issued={st.issued}",
    )
    if samples is not None:
        check(
            "retired_equals_samples",
            st.retired == samples,
            f"retired={st.retired} samples={samples}",
        )
    rule = getattr(cfg, "rule", None)
    if rule is not None and rule.extra_tables:
        tables = pipe.tables
        missing = [t for t in rule.extra_tables if t not in tables.extra_rams]
        check(
            "rule_tables_present",
            not missing,
            f"rule={rule.name} extra_tables={rule.extra_tables} missing={missing}",
        )
        staged = {
            name: len(getattr(ram, "_pending", ()))
            for name, ram in tables.extra_rams.items()
        }
        check(
            "rule_tables_drained",
            all(v == 0 for v in staged.values()),
            f"staged extra-table writes pending after drain: {staged}",
        )
    if cfg.hazard_mode == "forward" and pipe.stage2_latency == 1:
        check(
            "forward_never_stalls",
            st.stall_cycles == 0,
            f"stall_cycles={st.stall_cycles} "
            f"(hazard={st.hazard_stall_cycles}, s2_hold={st.s2_hold_cycles})",
        )
        if runs is not None:
            expected = st.retired + PIPELINE_FILL_CYCLES * runs
            check(
                "one_retirement_per_cycle",
                st.cycles == expected,
                f"cycles={st.cycles} expected={expected} "
                f"(retired={st.retired}, fill={PIPELINE_FILL_CYCLES}x{runs})",
            )
    report = InvariantReport(ok=all(p for _, p, _ in checks), checks=checks)
    if strict and not report.ok:
        raise AssertionError(
            "paper invariants violated:\n" + report.format()
        )
    return report
