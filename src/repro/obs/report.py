"""SLO reporting: counters in, per-tenant report + threshold gate out.

Backs ``python -m repro.obs report``.  The input is any of the counter
surfaces the stack already produces — OpenMetrics exposition text (a
saved ``/metrics`` scrape, or ``--url`` to scrape a live gateway), a
telemetry profile JSON, or a raw registry ``as_dict()`` JSON — sniffed
automatically, so the CLI works against whatever artifact a run left
behind.  With ``--slo thresholds.json`` the report is scored by
:func:`repro.obs.slo.check_slo` and the process exits non-zero on any
budget burn, which is what lets CI gate on it.
"""

from __future__ import annotations

import json
from typing import Optional

from .slo import check_slo, counters_from_openmetrics, slo_report


def load_counters(text: str) -> dict:
    """Sniff + parse one counters source into a flat counter dict.

    Accepts OpenMetrics exposition text, a telemetry profile JSON
    (flat counters under a ``"counters"`` key), or a raw registry
    ``as_dict()`` JSON.
    """
    stripped = text.lstrip()
    if stripped.startswith("{"):
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("counters JSON must be an object")
        counters = payload.get("counters")
        if isinstance(counters, dict):
            return counters
        return payload
    return counters_from_openmetrics(text)


def read_source(source: str) -> str:
    """The text of ``source``: a file path, ``-`` for stdin, or a URL."""
    if source == "-":
        import sys

        return sys.stdin.read()
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        with urlopen(source, timeout=10) as resp:  # noqa: S310 - user-given URL
            return resp.read().decode("utf-8", "replace")
    with open(source, "r", encoding="utf-8") as fh:
        return fh.read()


def render_report(report: dict, violations: Optional[list[str]] = None) -> str:
    """Human-readable rendering of one :func:`slo_report`."""

    def _ms(v) -> str:
        return f"{v:8.3f}" if isinstance(v, (int, float)) else "       -"

    out = ["== per-tenant SLO report =="]
    tenants = report.get("tenants", {})
    if not tenants:
        out.append("(no serve.slo.* instruments found in the source)")
    for tenant, entry in sorted(tenants.items()):
        out.append(f"tenant {tenant}:")
        ops = entry.get("ops", {})
        if ops:
            out.append(
                f"  {'op':12s} {'count':>8s} {'p50_ms':>8s} {'p95_ms':>8s} "
                f"{'p99_ms':>8s} {'max_ms':>8s}"
            )
            for op, stats in sorted(ops.items()):
                out.append(
                    f"  {op:12s} {stats.get('count', 0):>8d}"
                    f" {_ms(stats.get('p50_ms'))} {_ms(stats.get('p95_ms'))}"
                    f" {_ms(stats.get('p99_ms'))} {_ms(stats.get('max_ms'))}"
                )
        errors = {k: v for k, v in sorted(entry.get("errors", {}).items()) if v}
        if errors:
            out.append(
                "  errors: "
                + "  ".join(f"{code}={n}" for code, n in errors.items())
            )
    if violations is not None:
        if violations:
            out.append("")
            out.append(f"SLO VIOLATIONS ({len(violations)}):")
            out.extend(f"  - {v}" for v in violations)
        else:
            out.append("")
            out.append("all SLO budgets met")
    return "\n".join(out)


def run_report(
    source: str,
    *,
    slo_path: Optional[str] = None,
    as_json: bool = False,
) -> tuple[int, str]:
    """The ``report`` subcommand: returns ``(exit_code, output_text)``."""
    counters = load_counters(read_source(source))
    report = slo_report(counters)
    violations: Optional[list[str]] = None
    if slo_path is not None:
        with open(slo_path, "r", encoding="utf-8") as fh:
            thresholds = json.load(fh)
        violations = check_slo(report, thresholds)
    if as_json:
        payload = dict(report)
        if violations is not None:
            payload["violations"] = violations
        text = json.dumps(payload, indent=2, sort_keys=True)
    else:
        text = render_report(report, violations)
    return (1 if violations else 0), text
