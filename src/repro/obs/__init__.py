"""Observability for the serving stack: tracing, SLOs, flight recorder.

Three cooperating layers, all optional and all advisory (nothing here
may ever turn a valid request into an error):

* :mod:`repro.obs.tracing` — distributed trace propagation.  Spans are
  created per layer (client / gateway / session / shard worker),
  carried in-process on a :mod:`contextvars` stack, across the wire as
  the protocol's optional ``trace`` field and across shard worker
  pipes as a trailing command element; finished spans land in bounded
  per-process rings, merged by :mod:`repro.obs.collector` into one
  Chrome ``trace_event`` timeline.
* :mod:`repro.obs.slo` — per-tenant latency histograms
  (``serve.slo.<tenant>.<op>.latency_ms``) and error-budget counters
  in the telemetry registry the gateway already exposes on
  ``/metrics``; ``python -m repro.obs report --slo thresholds.json``
  scores them and exits non-zero on budget burn.
* :mod:`repro.obs.recorder` — a crash-safe bounded on-disk ring of
  recent structured events plus (at dump time) recent spans; the chaos
  campaign and the CI smokes dump it on failure as the run's own
  post-mortem artifact.

:mod:`repro.obs.overhead` pins the cost: tracing enabled must stay
within ``TRACING_OVERHEAD_BUDGET`` (5%) of untraced end-to-end serve
throughput, gated by the perf regression sentinel like every other
overhead budget.
"""

from .collector import (
    chrome_trace,
    merge_spans,
    validate_chrome_trace,
    validate_span_tree,
    write_chrome_trace,
)
from .recorder import FlightRecorder, open_recorder
from .slo import (
    DEFAULT_TENANT,
    SLO_LATENCY_BOUNDS_MS,
    SloTracker,
    check_slo,
    sanitize_tenant,
    slo_report,
)
from .tracing import Span, SpanRing, TraceContext, Tracer, ctx_from_wire, ctx_to_wire

__all__ = [
    "DEFAULT_TENANT",
    "FlightRecorder",
    "SLO_LATENCY_BOUNDS_MS",
    "SloTracker",
    "Span",
    "SpanRing",
    "TraceContext",
    "Tracer",
    "check_slo",
    "chrome_trace",
    "ctx_from_wire",
    "ctx_to_wire",
    "merge_spans",
    "open_recorder",
    "sanitize_tenant",
    "slo_report",
    "validate_chrome_trace",
    "validate_span_tree",
    "write_chrome_trace",
]
