"""Span collection: merge per-process rings into one validated timeline.

The gateway process holds spans from the client (same process in the
benches), the gateway dispatch layer, the SessionManager and the
sharded parent; shard *worker* processes ship their spans back inside
Pipe replies (see :mod:`repro.backends.sharded`).  This module merges
those sources, checks the structural invariants the span-tree property
test pins (every parent reachable, no span outliving its trace root),
and renders the result as a Chrome ``trace_event`` JSON document —
loadable in ``chrome://tracing`` / Perfetto, same format as
:mod:`repro.telemetry.export` uses for pipeline traces.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence, Union

from .tracing import Span, SpanRing

SpanLike = Union[Span, dict]

#: Tolerance (seconds) when comparing child/root end times: monotonic
#: reads in different processes are the same clock on Linux, but a
#: child's recorded end and its parent's can be captured arbitrarily
#: close together.
_END_SLACK_S = 1e-9


def _as_span(item: SpanLike) -> Span:
    return item if isinstance(item, Span) else Span.from_dict(item)


def merge_spans(*sources: Union[SpanRing, Iterable[SpanLike]]) -> list[Span]:
    """Merge span sources (rings, span lists, dict lists) by start time."""
    out: list[Span] = []
    for source in sources:
        if source is None:
            continue
        items = source.spans() if isinstance(source, SpanRing) else source
        out.extend(_as_span(item) for item in items)
    out.sort(key=lambda s: (s.start, s.end))
    return out


def validate_span_tree(spans: Sequence[SpanLike]) -> list[str]:
    """Structural problems in a merged span set (empty list == valid).

    Checks, per trace:

    * unique span ids;
    * every ``parent_id`` resolves to a span of the *same* trace, and
      following parents always reaches a root (no cycles);
    * exactly the parentless spans are roots, and no span ends after
      its trace's root ends (children close before their parents — the
      "no span outlives its trace's root" property).
    """
    problems: list[str] = []
    by_trace: dict[str, dict[str, Span]] = {}
    for item in spans:
        span = _as_span(item)
        trace = by_trace.setdefault(span.trace_id, {})
        if span.span_id in trace:
            problems.append(
                f"trace {span.trace_id}: duplicate span id {span.span_id}"
            )
            continue
        trace[span.span_id] = span

    for trace_id, trace in by_trace.items():
        roots = [s for s in trace.values() if s.parent_id is None]
        if not roots:
            problems.append(f"trace {trace_id}: no root span")
        root_end = max((r.end for r in roots), default=None)
        for span in trace.values():
            if span.end < span.start:
                problems.append(
                    f"trace {trace_id}: span {span.name} ends before it starts"
                )
            # Walk to the root, flagging dangling parents and cycles.
            seen = {span.span_id}
            node = span
            while node.parent_id is not None:
                parent = trace.get(node.parent_id)
                if parent is None:
                    problems.append(
                        f"trace {trace_id}: span {span.name} "
                        f"({span.span_id}) has unreachable parent "
                        f"{node.parent_id}"
                    )
                    break
                if parent.span_id in seen:
                    problems.append(
                        f"trace {trace_id}: parent cycle at {span.span_id}"
                    )
                    break
                seen.add(parent.span_id)
                node = parent
            if (
                root_end is not None
                and span.parent_id is not None
                and span.end > root_end + _END_SLACK_S
            ):
                problems.append(
                    f"trace {trace_id}: span {span.name} ({span.span_id}) "
                    f"outlives its trace root by "
                    f"{(span.end - root_end) * 1e3:.3f}ms"
                )
    return problems


def chrome_trace(spans: Sequence[SpanLike], *, meta: Optional[dict] = None) -> dict:
    """Render merged spans as a Chrome ``trace_event`` document.

    One ``pid`` per process label (``client`` / ``gateway`` /
    ``session`` / ``backend`` / ``shard<n>``), one ``tid`` per trace
    inside that process so concurrent requests stack as separate rows,
    complete (``ph: "X"``) slices with microsecond timestamps relative
    to the earliest span.
    """
    resolved = [_as_span(item) for item in spans]
    resolved.sort(key=lambda s: (s.start, s.end))
    t0 = resolved[0].start if resolved else 0.0

    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[int, str], int] = {}
    per_pid_traces: dict[int, int] = {}
    for span in resolved:
        pid = pids.setdefault(span.proc, len(pids) + 1)
        key = (pid, span.trace_id)
        if key not in tids:
            per_pid_traces[pid] = per_pid_traces.get(pid, 0) + 1
            tids[key] = per_pid_traces[pid]
        tid = tids[key]
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        if span.attrs:
            args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": "obs",
                "ph": "X",
                "ts": (span.start - t0) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for proc, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": proc},
            }
        )
    for (pid, trace_id), tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"trace {trace_id[:8]}"},
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "spans": len(resolved),
            "procs": sorted(pids),
        },
    }
    if meta:
        doc["otherData"].update(meta)
    return doc


def validate_chrome_trace(doc) -> list[str]:
    """Problems in a Chrome ``trace_event`` document (empty == valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    named_pids: set = set()
    slice_pids: set = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            continue
        if ph != "X":
            problems.append(f"event {i}: unsupported phase {ph!r}")
            continue
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ts, dur = ev.get("ts"), ev.get("dur")
        if isinstance(ts, (int, float)) and ts < 0:
            problems.append(f"event {i}: negative ts")
        if isinstance(dur, (int, float)) and dur < 0:
            problems.append(f"event {i}: negative dur")
        slice_pids.add(ev.get("pid"))
    for pid in sorted(p for p in slice_pids if p not in named_pids):
        problems.append(f"pid {pid}: no process_name metadata")
    return problems


def write_chrome_trace(
    path, spans: Sequence[SpanLike], *, meta: Optional[dict] = None
) -> dict:
    """Render, validate and write a trace file; returns the document.

    Raises ``ValueError`` if the rendered document fails its own
    validator — a trace artifact that does not load is worse than none.
    """
    doc = chrome_trace(spans, meta=meta)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(f"invalid chrome trace: {problems[:5]}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=0, separators=(",", ":"))
        fh.write("\n")
    return doc
