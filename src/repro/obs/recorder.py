"""Flight recorder: a crash-safe, bounded on-disk ring of recent
spans and structured events.

Postmortems of chaos-campaign failures need the last few seconds of
history — which worker was killed, which sessions replayed, which
spans were in flight — *from the crashed run itself*.  The recorder
appends one JSON line per record to a segment file, flushing every
line so a SIGKILL loses at most one partial line; segments rotate at
``max_records`` lines and only the newest ``max_segments`` are kept,
so the on-disk footprint is bounded no matter how long the process
runs.  Readers skip torn/corrupt lines instead of failing — a flight
recorder that cannot be read after the crash it exists for is
useless.

``run_chaos_campaign`` and the smoke gates call :meth:`dump` on
failure to merge the surviving segments into one artifact file that CI
uploads as the run's own post-mortem.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Iterator, Optional

#: Records per segment file before rotation.
DEFAULT_MAX_RECORDS = 2048

#: Rotated segments retained on disk (oldest deleted beyond this).
DEFAULT_MAX_SEGMENTS = 4

_SEGMENT_PREFIX = "flight-"
_SEGMENT_SUFFIX = ".jsonl"


class FlightRecorder:
    """Bounded JSONL segment ring under one directory (thread-safe)."""

    def __init__(
        self,
        directory,
        *,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        proc: str = "main",
    ):
        if max_records < 1 or max_segments < 1:
            raise ValueError("max_records and max_segments must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_records = max_records
        self.max_segments = max_segments
        self.proc = proc
        self._lock = threading.Lock()
        self._fh = None
        self._lines_in_segment = 0
        self.total_records = 0
        # Resume numbering after any segments left by a previous run.
        existing = self._segment_paths()
        self._segment_no = (
            int(existing[-1].stem[len(_SEGMENT_PREFIX) :]) + 1 if existing else 0
        )

    # -- segment plumbing ---------------------------------------------- #

    def _segment_paths(self) -> list[Path]:
        paths = []
        for p in self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"):
            try:
                int(p.stem[len(_SEGMENT_PREFIX) :])
            except ValueError:
                continue
            paths.append(p)
        return sorted(paths, key=lambda p: int(p.stem[len(_SEGMENT_PREFIX) :]))

    def _segment_path(self, n: int) -> Path:
        return self.directory / f"{_SEGMENT_PREFIX}{n:06d}{_SEGMENT_SUFFIX}"

    def _rotate_locked(self) -> None:
        if self._fh is not None:
            self._fh.close()
        self._fh = open(
            self._segment_path(self._segment_no), "a", encoding="utf-8"
        )
        self._segment_no += 1
        self._lines_in_segment = 0
        for stale in self._segment_paths()[: -self.max_segments]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - races with readers are fine
                pass

    def _write_locked(self, record: dict) -> None:
        if self._fh is None or self._lines_in_segment >= self.max_records:
            self._rotate_locked()
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        self._lines_in_segment += 1
        self.total_records += 1

    # -- recording ------------------------------------------------------ #

    def record_event(self, kind: str, **fields) -> None:
        """File one structured event (worker restart, failover, ...)."""
        record = {
            "type": "event",
            "kind": kind,
            "t": time.monotonic(),
            "wall": time.time(),
            "proc": self.proc,
        }
        record.update(fields)
        with self._lock:
            self._write_locked(record)

    def record_span(self, span) -> None:
        """File one finished span (usable as a :class:`Tracer` sink)."""
        payload = span.to_dict() if hasattr(span, "to_dict") else dict(span)
        payload["type"] = "span"
        with self._lock:
            self._write_locked(payload)

    # -- reading / dumping ---------------------------------------------- #

    def records(self) -> Iterator[dict]:
        """Every surviving record, oldest first; torn lines are skipped."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
            paths = self._segment_paths()
        for path in paths:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                        except ValueError:
                            continue
                        if isinstance(record, dict):
                            yield record
            except OSError:  # pragma: no cover - segment raced away
                continue

    def stats(self) -> dict:
        with self._lock:
            segments = self._segment_paths()
            return {
                "records": self.total_records,
                "segments": len(segments),
                "directory": str(self.directory),
            }

    def dump(self, path=None, *, spans=None) -> str:
        """Merge surviving segments into one JSONL artifact; returns path.

        ``spans`` (an iterable of :class:`~repro.obs.tracing.Span` or
        span dicts, e.g. a ring snapshot) is appended as ``span``
        records — spans deliberately do NOT stream through the recorder
        while in flight (a per-span disk write would tank the serve hot
        path), so dump time is when the recent-span ring joins the
        on-disk post-mortem.
        """
        if path is None:
            path = self.directory / "flight_dump.jsonl"
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as out:
            for record in self.records():
                out.write(json.dumps(record, separators=(",", ":")) + "\n")
            for span in spans or ():
                payload = span.to_dict() if hasattr(span, "to_dict") else dict(span)
                payload["type"] = "span"
                out.write(json.dumps(payload, separators=(",", ":")) + "\n")
        os.replace(tmp, path)
        return str(path)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_recorder(
    directory, *, proc: str = "main", **kw
) -> Optional[FlightRecorder]:
    """A recorder at ``directory``, or ``None`` when directory is falsy."""
    if not directory:
        return None
    return FlightRecorder(directory, proc=proc, **kw)
