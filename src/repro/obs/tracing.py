"""Distributed trace propagation for the serving stack.

A *trace* is one causally-related tree of timed *spans* — one client
request, or one watchdog recovery pass — identified by a ``trace_id``;
every span carries its own ``span_id`` and its ``parent_id`` (``None``
for the trace root).  Timestamps are ``time.monotonic()`` — on Linux
that is ``CLOCK_MONOTONIC``, a single system-wide clock, so spans
recorded in the gateway process and in a sharded worker process land
on one comparable timeline.

Propagation is deliberately tiny:

* in-process, the current span rides a :class:`contextvars.ContextVar`
  (one module-level stack), so parentage flows correctly through
  threads **and** interleaved asyncio tasks (each task runs in its own
  context copy) and across the :class:`Tracer` instances of different
  layers (client / gateway / session / backend share the stack);
* across the wire, :func:`ctx_to_wire` renders the current context as
  the protocol's optional ``trace`` request field
  (``{"trace_id", "span_id"}``) and :func:`ctx_from_wire` parses it on
  the far side — the sender's span id becomes the receiver's parent.
  Parsing is *tolerant*: anything malformed yields ``None`` (no trace)
  rather than an error, because observability must never break
  traffic;
* across a ``multiprocessing`` Pipe, the same wire dict rides as an
  optional trailing command element (see
  :mod:`repro.backends.sharded`), and the worker ships its finished
  spans back in the reply.

Finished spans land in a bounded, thread-safe :class:`SpanRing`
(oldest dropped first — tracing is a flight recorder, not an audit
log) and optionally into a ``sink`` callable (the on-disk
:class:`~repro.obs.recorder.FlightRecorder`).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from collections import deque
from typing import Callable, Iterable, Optional

#: Default bounded capacity of a per-process span ring.
DEFAULT_RING_CAPACITY = 65536

#: The in-process current-span stack, shared by every Tracer so that
#: parentage flows across layer boundaries (gateway -> session -> ...).
#: Held as an immutable tuple: asyncio tasks and threads each see their
#: own context copy, so pushes never leak between concurrent requests.
_SPAN_STACK: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "qtaccel_obs_span_stack", default=()
)


# Id generation is on the serve hot path (every span needs one or two
# fresh ids), so it must be allocation-cheap: a per-process random
# prefix (collision avoidance across processes) plus a local counter
# (uniqueness within the process).  ~10x faster than os.urandom().
_ID_PREFIX = f"{os.getpid() & 0xFFFF:04x}{int.from_bytes(os.urandom(4), 'big'):08x}"
_ID_COUNTER = itertools.count(1)


def new_id() -> str:
    """A fresh process-unique hex id (trace or span)."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER):08x}"


def _reseed_ids() -> None:
    """Refresh the id prefix (called after fork into a worker process)."""
    global _ID_PREFIX, _ID_COUNTER
    _ID_PREFIX = (
        f"{os.getpid() & 0xFFFF:04x}{int.from_bytes(os.urandom(4), 'big'):08x}"
    )
    _ID_COUNTER = itertools.count(1)


class TraceContext:
    """The propagated identity of a position in a trace."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext(trace={self.trace_id}, span={self.span_id})"


def ctx_to_wire(ctx: Optional[TraceContext]) -> Optional[dict]:
    """Render a context as the protocol's optional ``trace`` field."""
    if ctx is None:
        return None
    return {"trace_id": ctx.trace_id, "span_id": ctx.span_id}


def ctx_from_wire(field) -> Optional[TraceContext]:
    """Parse a ``trace`` request field; tolerant of any malformed shape.

    Returns ``None`` (meaning: no trace context) for anything that is
    not a dict carrying non-empty string ids — tracing is advisory and
    must never turn a valid request into an error.
    """
    if not isinstance(field, dict):
        return None
    trace_id = field.get("trace_id")
    span_id = field.get("span_id")
    if (
        isinstance(trace_id, str)
        and isinstance(span_id, str)
        and 0 < len(trace_id) <= 64
        and 0 < len(span_id) <= 64
    ):
        return TraceContext(trace_id, span_id)
    return None


class Span:
    """One timed operation in a trace; doubles as its own context
    manager while in flight (single allocation on the serve hot path).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "proc",
        "start",
        "end",
        "attrs",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        proc: str,
        start: float,
        end: float = 0.0,
        attrs: Optional[dict] = None,
        _tracer: Optional["Tracer"] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.proc = proc
        self.start = start
        self.end = end
        self.attrs = attrs
        self._tracer = _tracer
        self._token = None

    def set(self, key: str, value) -> None:
        """Attach one attribute to the (in-flight) span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._token = _SPAN_STACK.set(_SPAN_STACK.get() + (self.context,))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        token = self._token
        if token is not None:
            _SPAN_STACK.reset(token)
            self._token = None
        self.end = time.monotonic()
        if exc_type is not None:
            self.set("error", exc_type.__name__)
        tracer = self._tracer
        if tracer is not None:
            self._tracer = None
            tracer.record(self)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "proc": self.proc,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            str(payload.get("name", "?")),
            str(payload.get("trace_id", "?")),
            str(payload.get("span_id", "?")),
            payload.get("parent_id"),
            str(payload.get("proc", "?")),
            float(payload.get("start", 0.0)),
            float(payload.get("end", 0.0)),
            payload.get("attrs"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, proc={self.proc}, "
            f"dur={self.duration * 1e3:.3f}ms)"
        )


class SpanRing:
    """Bounded, thread-safe ring of finished spans (oldest drop first).

    ``append`` is on the serve hot path, so it leans on the GIL
    (``deque.append`` with ``maxlen`` is a single atomic operation)
    instead of a lock; the ``total`` counter is best-effort under
    concurrent writers, which is fine for a drop statistic.  Snapshot
    reads retry around the rare concurrent-mutation race.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.total = 0

    def append(self, span: Span) -> None:
        self._spans.append(span)
        self.total += 1

    @property
    def dropped(self) -> int:
        return max(0, self.total - len(self._spans))

    def __len__(self) -> int:
        return len(self._spans)

    def _snapshot(self) -> list[Span]:
        for _ in range(8):
            try:
                return list(self._spans)
            except RuntimeError:  # deque mutated during iteration
                continue
        return list(self._spans.copy())

    def spans(self) -> list[Span]:
        """A snapshot of the retained spans, oldest first."""
        return self._snapshot()

    def drain(self) -> list[Span]:
        """Remove and return every retained span."""
        out = self._snapshot()
        for _ in out:
            try:
                self._spans.popleft()
            except IndexError:
                break
        return out


class Tracer:
    """Creates spans for one layer (``proc`` label) into one ring.

    Several tracers may share a ring (one merged per-process buffer,
    distinct ``proc`` labels) — the ambient parent stack is
    module-global either way, so a ``session.learn`` span opened under
    a ``server.learn`` span parents correctly even though different
    Tracer instances created them.
    """

    def __init__(
        self,
        proc: str = "main",
        *,
        capacity: int = DEFAULT_RING_CAPACITY,
        ring: Optional[SpanRing] = None,
        sink: Optional[Callable[[Span], None]] = None,
    ):
        self.proc = proc
        self.ring = ring if ring is not None else SpanRing(capacity)
        self.sink = sink

    def fork(self, proc: str) -> "Tracer":
        """A tracer for another layer sharing this ring and sink."""
        return Tracer(proc, ring=self.ring, sink=self.sink)

    # -- ambient context ------------------------------------------------ #

    @staticmethod
    def current_context() -> Optional[TraceContext]:
        stack = _SPAN_STACK.get()
        return stack[-1] if stack else None

    def wire_context(self) -> Optional[dict]:
        """The current context as the protocol ``trace`` field (or None)."""
        return ctx_to_wire(self.current_context())

    # -- span creation --------------------------------------------------- #

    def span(
        self,
        name: str,
        *,
        parent: Optional[TraceContext] = None,
        attrs: Optional[dict] = None,
    ) -> Span:
        """Open a span: child of ``parent``, else of the ambient span,
        else the root of a fresh trace.  Use as a context manager."""
        if parent is None:
            stack = _SPAN_STACK.get()
            parent = stack[-1] if stack else None
        span_id = new_id()
        if parent is None:
            # Root convention: the trace id IS the root's span id.
            trace_id, parent_id = span_id, None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(
            name,
            trace_id,
            span_id,
            parent_id,
            self.proc,
            time.monotonic(),
            0.0,
            attrs,
            self,
        )

    def record(self, span: Span) -> None:
        """File one finished span (ring + optional sink)."""
        self.ring.append(span)
        sink = self.sink
        if sink is not None:
            try:
                sink(span)
            except Exception:  # pragma: no cover - sinks are best-effort
                pass

    def adopt(self, spans: Iterable) -> int:
        """File spans shipped back from another process (dicts or Spans)."""
        n = 0
        for item in spans or ():
            self.record(item if isinstance(item, Span) else Span.from_dict(item))
            n += 1
        return n
