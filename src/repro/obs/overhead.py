"""Tracing-overhead budget: spans must cost <5% of serve throughput.

The claim the budget pins is end-to-end: *a tenant pointed at a traced
gateway sees at least 95% of the untraced request rate*.  So the
measurement is end-to-end too — one gateway stack is booted in-process
on loopback sockets with client/gateway/session tracers attached, and
small request bursts are driven with tracing toggled ON and OFF on the
*same* stack (same connection, same event loop, same lane).  Toggling
one stack instead of comparing two is what makes the ratio
trustworthy: two separately-booted stacks carry a persistent ±20%
identity bias (socket buffers, thread placement) that
order-alternation cannot cancel, easily dwarfing the effect being
measured.  Bursts are grouped into ABBA/BAAB quads and the gate
statistic is the median per-quad ``traced/untraced`` wall-time ratio
— see the constants below for why — which is machine-independent
enough to gate on any runner.  It lands in BENCH snapshots under
``overheads["serve_tracing"]`` where the regression sentinel enforces
``ratio <= budget``.

What keeps the budget honest is head sampling (see
:mod:`repro.serve.client`): a span costs ~2-3us to open, but on a
~100-130us loopback round-trip the *end-to-end* cost of tracing every
hot request measures ~20% — GIL ping-pong between the client thread
and the gateway loop roughly doubles every microsecond added to the
path.  Sampling hot ops 1-in-16 (the client default, decision inherited
by the gateway) brings the steady-state cost to ~2-3%, and a sampled
request still produces a *complete* client→gateway→session→shard
trace.  This module measures exactly that shipped default.
"""

from __future__ import annotations

import random
import statistics
import time
from typing import Callable

from .tracing import SpanRing, Tracer

#: Tracing may cost at most 5% of untraced serve-path throughput.
TRACING_OVERHEAD_BUDGET = 1.05

# The measurement interleaves the two modes in small blocks grouped
# into quads (ABBA / BAAB alternating), and gates on the median of
# per-quad ratios: scheduler bursts land inside single quads (killed
# by the median), drift cancels inside each quad, and the alternating
# pattern cancels the ~1% middle-position cache advantage.  A/A
# control runs of this estimator read 1.00 +/- 1%, against per-block
# noise of +/-8% on a busy host.
DEFAULT_QUADS = 50
DEFAULT_BLOCK = 32
QUICK_QUADS = 30

_S, _A = 32, 4


def _build_stack():
    """One loopback gateway + connected client, tracers attached."""
    from ..core.config import QTAccelConfig
    from ..serve.client import ServeClient
    from ..serve.gateway import Gateway, run_gateway_in_thread
    from ..serve.session import SessionManager, build_serve_backend

    tracer = Tracer("client", ring=SpanRing(1 << 17))
    backend = build_serve_backend(
        QTAccelConfig.qlearning(seed=13),
        engine="vectorized",
        lanes=4,
        num_states=_S,
        num_actions=_A,
    )
    manager = SessionManager(
        backend, checkpoint_every=128, tracer=tracer.fork("session")
    )
    gateway = Gateway(manager, port=0, tracer=tracer.fork("gateway"))
    thread, loop = run_gateway_in_thread(gateway)
    client = ServeClient(port=gateway.port, tracer=tracer)
    return {
        "tracer": tracer,
        "manager": manager,
        "gateway": gateway,
        "thread": thread,
        "loop": loop,
        "client": client,
        "sess": client.open_session(),
        "tracers": (tracer, gateway._tracer, manager._tracer),
    }


def _set_traced(stack, on: bool) -> None:
    """Toggle tracing on the live stack (attribute swap, no reconnect)."""
    client_tracer, gw_tracer, sess_tracer = stack["tracers"]
    stack["client"].tracer = client_tracer if on else None
    stack["gateway"]._tracer = gw_tracer if on else None
    stack["manager"]._tracer = sess_tracer if on else None


def _teardown_stack(stack) -> None:
    import asyncio

    stack["client"].close()
    asyncio.run_coroutine_threadsafe(
        stack["gateway"].close(), stack["loop"]
    ).result(timeout=30)
    stack["loop"].call_soon_threadsafe(stack["loop"].stop)
    stack["thread"].join(timeout=10)


def _drive(sess, rng: random.Random, requests: int) -> None:
    for i in range(requests):
        s = rng.randrange(_S)
        sess.learn(s, rng.randrange(_A), rng.uniform(-1.0, 1.0), (s + 1) % _S)
        if i % 4 == 0:
            sess.act(s, explore=True)


def _measure_pass(stack, quads: int, block: int, clock) -> dict:
    """One measurement pass: median per-quad traced/untraced ratio."""
    sess = stack["sess"]
    rng = random.Random(7)
    ratios: list[float] = []
    untraced_s = 0.0
    for q in range(quads):
        pattern = (
            (False, True, True, False)
            if q % 2 == 0
            else (True, False, False, True)
        )
        t = {False: 0.0, True: 0.0}
        for on in pattern:
            _set_traced(stack, on)
            t0 = clock()
            _drive(sess, rng, block)
            t[on] += clock() - t0
        if t[False] > 0:
            ratios.append(t[True] / t[False])
            untraced_s += t[False]
    ratio = statistics.median(ratios) if ratios else None
    mad = (
        statistics.median(abs(x - ratio) for x in ratios)
        if ratios and ratio is not None
        else None
    )
    return {
        "ratio": ratio,
        "ratio_mad": mad,
        "quads": len(ratios),
        "untraced_s": untraced_s,
    }


def measure_serve_tracing_overhead(
    *,
    quads: int = DEFAULT_QUADS,
    block: int = DEFAULT_BLOCK,
    attempts: int = 3,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
) -> dict:
    """Paired traced/untraced end-to-end serve throughput ratio.

    Returns the snapshot ``overheads`` entry shape: ``{"variant",
    "baseline", "ratio", "ratio_mad", "budget", ...}`` where ``ratio``
    is the median over quads of ``traced_time / untraced_time``, each
    quad four ``block``-request bursts in ABBA (or BAAB) order through
    one loopback stack with tracing toggled between bursts.  Tracing
    runs at the shipped client defaults — hot ops head-sampled (see
    ``DEFAULT_TRACE_SAMPLE``), structural ops always traced — because
    that is the configuration whose cost the 5% claim is about.

    Host interference is strictly additive, so when a pass lands over
    budget it is re-measured (up to ``attempts`` passes) and the *best*
    pass is reported: the minimum across passes estimates the
    clean-machine ratio, while a real regression fails every pass.  A
    pass comfortably under budget ends the measurement early.
    """
    if quick:
        quads = min(quads, QUICK_QUADS)
    stack = _build_stack()
    passes: list[dict] = []
    try:
        for on in (False, True):
            _set_traced(stack, on)
            _drive(stack["sess"], random.Random(1), 64)
        for _ in range(max(1, attempts)):
            result = _measure_pass(stack, quads, block, clock)
            if result["ratio"] is not None:
                passes.append(result)
                if result["ratio"] <= TRACING_OVERHEAD_BUDGET - 0.005:
                    break
        spans = stack["tracer"].ring.total
        sample_stride = stack["client"]._trace_stride
    finally:
        _teardown_stack(stack)

    best = min(passes, key=lambda p: p["ratio"]) if passes else None
    # A block of learns includes an act every 4th learn.
    block_requests = block + (block + 3) // 4
    return {
        "variant": "serve_tracing",
        "baseline": "serve_untraced",
        "ratio": best["ratio"] if best else None,
        "ratio_mad": best["ratio_mad"] if best else None,
        "budget": TRACING_OVERHEAD_BUDGET,
        "quads": best["quads"] if best else 0,
        "passes": len(passes),
        "block_requests": block_requests,
        "sample_stride": sample_stride,
        "untraced_requests_per_sec": (
            (best["quads"] * 2 * block_requests) / best["untraced_s"]
            if best and best["untraced_s"] > 0
            else None
        ),
        "spans": spans,
    }
