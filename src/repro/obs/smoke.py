"""Observability smoke gate (CI entry point).

``python -m repro.obs smoke`` proves the tracing/SLO/flight-recorder
layer works end-to-end on a fresh checkout, in three stages:

1. **Traced chaos serve run** — one quick ``run_serve_throughput``
   pass on the sharded engine with ``chaos=True``: worker 0 is
   SIGSTOP'd so the merged trace must span client, gateway, session
   and shard procs *including* the watchdog restart and
   checkpoint-replay recovery spans.  The Chrome ``trace_event`` file
   it writes is re-read and validated, the span tree must be sound,
   and the flight-recorder dump must carry the worker lifecycle
   events.
2. **SLO report CLI** — the gateway's OpenMetrics rendering from the
   same run is fed through :func:`repro.obs.report.run_report` with a
   permissive threshold file (exercising the exit-code path both
   ways is the unit suite's job; here the wiring must just work).
3. **Overhead budget** — ``measure_serve_tracing_overhead`` at the
   shipped sampling defaults must land within
   :data:`~repro.obs.overhead.TRACING_OVERHEAD_BUDGET`.

Artifacts (Chrome trace, flight dump, metrics scrape, overhead entry)
are written under ``--artifacts`` for CI to upload.  Exit 0 iff every
stage holds.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def _stage_traced_run(artifacts: Path, failures: list) -> dict | None:
    from ..perf.serve import run_serve_throughput

    trace_path = artifacts / "serve_trace.json"
    recorder_dir = artifacts / "flight"
    record = run_serve_throughput(
        engine="sharded",
        quick=True,
        chaos=True,
        trace_path=str(trace_path),
        recorder_dir=str(recorder_dir),
    )
    trace = record.get("trace") or {}
    if trace.get("problems"):
        failures.append(f"span tree unsound: {trace['problems'][:3]}")
    procs = set(trace.get("procs") or ())
    required = {"client", "gateway", "session"}
    if not required <= procs:
        failures.append(f"trace missing procs: {sorted(required - procs)}")
    if not any(p.startswith("shard") for p in procs):
        failures.append(f"no shard-worker spans in trace (procs: {sorted(procs)})")
    if record.get("restarts", 0) < 1:
        failures.append("chaos run recorded no shard restart")
    if record.get("errors"):
        failures.append(f"serve run errors: {record['errors'][:3]}")

    # Re-read the artifact the way a human (or Perfetto) would.
    from .collector import validate_chrome_trace

    try:
        with open(trace_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        problems = validate_chrome_trace(doc)
        if problems:
            failures.append(f"chrome trace invalid: {problems[:3]}")
        else:
            print(
                f"obs-smoke: chrome trace OK "
                f"({len(doc['traceEvents'])} events, {trace_path})"
            )
    except (OSError, ValueError, KeyError) as exc:
        failures.append(f"chrome trace unreadable: {exc}")

    # The flight dump must exist and carry the worker lifecycle story.
    dump = trace.get("recorder")
    if not dump or not os.path.exists(dump):
        failures.append(f"flight dump missing: {dump!r}")
    else:
        kinds = set()
        with open(dump, "r", encoding="utf-8") as fh:
            for line in fh:
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if rec.get("type") == "event":
                    kinds.add(rec.get("kind"))
        if "worker_restarted" not in kinds:
            failures.append(
                f"flight dump has no worker_restarted event (kinds: {sorted(kinds)})"
            )
        else:
            print(f"obs-smoke: flight dump OK ({dump}; events: {sorted(kinds)})")
    return record


def _stage_slo_report(artifacts: Path, failures: list) -> None:
    """Drive the report CLI against a freshly-rendered metrics scrape."""
    from ..perf.metrics_export import render_openmetrics
    from ..telemetry.counters import CounterRegistry
    from .report import run_report
    from .slo import SloTracker

    registry = CounterRegistry()
    slo = SloTracker(registry)
    for i in range(200):
        slo.observe("acme", "learn", 0.4 + (i % 7) * 0.01)
        slo.observe("acme", "act", 0.2)
    slo.error("acme", "deadline")
    metrics_path = artifacts / "metrics.txt"
    metrics_path.write_text(render_openmetrics(registry), encoding="utf-8")

    thresholds = {
        "default": {"p99_ms": 1000.0, "max_errors": {"deadline": 5}},
        "tenants": {"acme": {"p95_ms": 500.0}},
    }
    slo_path = artifacts / "slo.json"
    slo_path.write_text(json.dumps(thresholds), encoding="utf-8")

    code, text = run_report(str(metrics_path), slo_path=str(slo_path))
    if code != 0:
        failures.append(f"slo report burned on healthy data (exit {code}):\n{text}")
    else:
        print("obs-smoke: slo report OK (0 budgets burned)")


def _stage_overhead(artifacts: Path, failures: list) -> None:
    from .overhead import TRACING_OVERHEAD_BUDGET, measure_serve_tracing_overhead

    entry = measure_serve_tracing_overhead(quick=True)
    (artifacts / "overhead.json").write_text(
        json.dumps(entry, indent=2), encoding="utf-8"
    )
    ratio = entry.get("ratio")
    if ratio is None:
        failures.append("overhead measurement produced no ratio")
    elif ratio > TRACING_OVERHEAD_BUDGET:
        failures.append(
            f"tracing overhead {ratio:.3f} exceeds budget "
            f"{TRACING_OVERHEAD_BUDGET} (1-in-{entry.get('sample_stride')} sampling)"
        )
    else:
        print(
            f"obs-smoke: overhead OK (ratio {ratio:.3f} <= "
            f"{TRACING_OVERHEAD_BUDGET}, {entry['passes']} pass(es))"
        )


def run_obs_smoke(*, artifacts_dir: str = "obs-artifacts") -> int:
    """Run all three gate stages; returns a process exit code."""
    from ..backends.sharded import install_signal_cleanup

    install_signal_cleanup()
    artifacts = Path(artifacts_dir)
    artifacts.mkdir(parents=True, exist_ok=True)
    failures: list = []
    _stage_traced_run(artifacts, failures)
    _stage_slo_report(artifacts, failures)
    _stage_overhead(artifacts, failures)
    if failures:
        for failure in failures:
            print(f"obs-smoke: FAIL: {failure}")
        return 1
    print("obs-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(run_obs_smoke())
