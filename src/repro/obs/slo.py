"""Per-tenant SLO accounting over the telemetry counter registry.

The gateway feeds two instrument families into the registry it already
exposes on ``/metrics``:

* ``serve.slo.<tenant>.<op>.latency_ms`` — a latency histogram per
  tenant per op, with millisecond-scale bounds (the registry default
  bounds are integer-bucket counts, useless for latency);
* ``serve.slo.<tenant>.errors.<code>`` — error-budget counters
  (``deadline_exceeded``, ``throttled``, ``at_capacity``, retries, …).

:func:`slo_report` turns a flat counter dump — a registry ``as_dict()``,
a telemetry profile JSON, or OpenMetrics exposition text parsed by
:func:`counters_from_openmetrics` — into per-tenant p50/p95/p99 and
error totals, and scores them against a threshold file for the
``python -m repro.obs report --slo`` gate.

Threshold file shape (JSON)::

    {
        "default": {"p50_ms": 5, "p95_ms": 25, "p99_ms": 100,
                     "max_errors": {"deadline_exceeded": 0}},
        "tenants": {"tenant_a": {"p99_ms": 10}}
    }

Per-tenant entries override ``default`` key-by-key.  ``max_errors``
caps the *total* count of one error code for that tenant.
"""

from __future__ import annotations

import re
from typing import Optional

#: Millisecond histogram bounds for serve-path latencies: 50us..5s.
SLO_LATENCY_BOUNDS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Namespace prefix for every SLO instrument.
SLO_PREFIX = "serve.slo"

#: Tenant label applied when a request carries no tenant identity.
DEFAULT_TENANT = "anon"

_TENANT_SAFE = re.compile(r"[^A-Za-z0-9_-]")


def sanitize_tenant(tenant: Optional[str]) -> str:
    """A registry-safe tenant label (dots would split the counter tree)."""
    if not tenant or not isinstance(tenant, str):
        return DEFAULT_TENANT
    safe = _TENANT_SAFE.sub("_", tenant.strip())[:48]
    return safe or DEFAULT_TENANT


class SloTracker:
    """Writes per-tenant latency histograms + error budgets to a registry."""

    def __init__(self, registry, *, prefix: str = SLO_PREFIX):
        self.registry = registry
        self.prefix = prefix
        self._latency = {}
        self._errors = {}

    def observe(self, tenant: Optional[str], op: str, latency_ms: float) -> None:
        key = (tenant, op)
        hist = self._latency.get(key)
        if hist is None:
            safe = sanitize_tenant(tenant)
            hist = self.registry.histogram(
                f"{self.prefix}.{safe}.{op}.latency_ms",
                bounds=SLO_LATENCY_BOUNDS_MS,
            )
            self._latency[key] = hist
        hist.observe(latency_ms)

    def error(self, tenant: Optional[str], code: str, n: int = 1) -> None:
        key = (tenant, code)
        counter = self._errors.get(key)
        if counter is None:
            safe = sanitize_tenant(tenant)
            counter = self.registry.counter(
                f"{self.prefix}.{safe}.errors.{code}"
            )
            self._errors[key] = counter
        counter.inc(n)


def histogram_percentile(summary: dict, q: float) -> Optional[float]:
    """Linear-interpolated percentile from a histogram summary dict.

    ``summary`` is the registry's histogram ``summary()`` shape:
    ``{"count", "min", "max", "buckets": {"le_<bound>": n, ...,
    "overflow": n}}``.  Returns ``None`` for an empty histogram.
    """
    count = summary.get("count") or 0
    if count <= 0:
        return None
    buckets = summary.get("buckets") or {}
    pairs: list[tuple[float, int]] = []
    overflow = 0
    for key, n in buckets.items():
        if key == "overflow":
            overflow = int(n)
        elif key.startswith("le_"):
            pairs.append((float(key[3:]), int(n)))
    pairs.sort()
    target = q * count
    lo = summary.get("min") or 0.0
    cum = 0
    prev_bound = lo
    for bound, n in pairs:
        if n and cum + n >= target:
            frac = (target - cum) / n
            return prev_bound + (bound - prev_bound) * max(0.0, min(1.0, frac))
        cum += n
        if n:
            prev_bound = bound
    # Percentile falls in the overflow bucket: clamp to the observed max.
    if overflow:
        return summary.get("max")
    return pairs[-1][0] if pairs else summary.get("max")


def counters_from_openmetrics(text: str) -> dict:
    """Parse ``render_openmetrics`` output back into a flat counter dict.

    Counters and gauges come back as numbers keyed by their dotted
    instrument name; histograms come back as summary dicts
    (``count``/``total``/``min``/``max``/``buckets``) — the same shape
    a registry ``as_dict()`` produces, so :func:`slo_report` accepts
    either source.
    """
    from ..perf.metrics_export import _SAMPLE_RE

    flat: dict = {}
    hists: dict[str, dict] = {}
    cumulative: dict[str, list[tuple[float, float]]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            continue
        metric = m.group("name")
        labels_raw = m.group("labels") or ""
        value_raw = m.group("value")
        labels = dict(re.findall(r'(\w+)="([^"]*)"', labels_raw))
        name = labels.get("name")
        if not name:
            continue
        value = float(value_raw)
        if metric.endswith("_counter_total") or metric.endswith("_gauge"):
            flat[name] = value
        elif metric.endswith("_histogram_bucket"):
            le = labels.get("le", "+Inf")
            bound = float("inf") if le == "+Inf" else float(le)
            cumulative.setdefault(name, []).append((bound, value))
        elif metric.endswith("_histogram_count"):
            hists.setdefault(name, {})["count"] = int(value)
        elif metric.endswith("_histogram_sum"):
            hists.setdefault(name, {})["sum"] = value
    for name, pairs in cumulative.items():
        pairs.sort()
        buckets: dict[str, int] = {}
        prev = 0.0
        for bound, cum in pairs:
            n = int(cum - prev)
            prev = cum
            if bound == float("inf"):
                buckets["overflow"] = n
            else:
                key = f"le_{int(bound)}" if float(bound).is_integer() else f"le_{bound}"
                buckets[key] = n
        summary = hists.setdefault(name, {})
        summary.setdefault("count", int(pairs[-1][1]) if pairs else 0)
        summary["buckets"] = buckets
    flat.update(hists)
    return flat


def _split_slo_key(name: str, prefix: str) -> Optional[tuple[str, str, str]]:
    """``serve.slo.<tenant>.<rest...>`` -> (tenant, kind, detail)."""
    if not name.startswith(prefix + "."):
        return None
    rest = name[len(prefix) + 1 :].split(".")
    if len(rest) >= 3 and rest[-1] == "latency_ms":
        return rest[0], "latency", ".".join(rest[1:-1])
    if len(rest) >= 3 and rest[1] == "errors":
        return rest[0], "error", ".".join(rest[2:])
    return None


def slo_report(counters: dict, *, prefix: str = SLO_PREFIX) -> dict:
    """Summarize a flat counter dict into per-tenant SLO numbers."""
    tenants: dict[str, dict] = {}
    for name, value in counters.items():
        parsed = _split_slo_key(name, prefix)
        if parsed is None:
            continue
        tenant, kind, detail = parsed
        entry = tenants.setdefault(tenant, {"ops": {}, "errors": {}})
        if kind == "latency" and isinstance(value, dict):
            entry["ops"][detail] = {
                "count": value.get("count", 0),
                "p50_ms": histogram_percentile(value, 0.50),
                "p95_ms": histogram_percentile(value, 0.95),
                "p99_ms": histogram_percentile(value, 0.99),
                "max_ms": value.get("max"),
            }
        elif kind == "error" and isinstance(value, (int, float)):
            entry["errors"][detail] = entry["errors"].get(detail, 0) + int(value)
    return {"tenants": tenants}


def check_slo(report: dict, thresholds: dict) -> list[str]:
    """Violations of a threshold file against a :func:`slo_report`."""
    default = thresholds.get("default") or {}
    per_tenant = thresholds.get("tenants") or {}
    violations: list[str] = []
    for tenant, entry in sorted(report.get("tenants", {}).items()):
        limits = dict(default)
        limits.update(per_tenant.get(tenant) or {})
        for op, stats in sorted(entry.get("ops", {}).items()):
            for pct in ("p50", "p95", "p99"):
                limit = limits.get(f"{pct}_ms")
                got = stats.get(f"{pct}_ms")
                if limit is not None and got is not None and got > limit:
                    violations.append(
                        f"{tenant}/{op}: {pct} {got:.3f}ms exceeds "
                        f"budget {limit:.3f}ms"
                    )
        max_errors = limits.get("max_errors") or {}
        for code, cap in sorted(max_errors.items()):
            got = entry.get("errors", {}).get(code, 0)
            if got > cap:
                violations.append(
                    f"{tenant}: error budget burned — {code} {got} > {cap}"
                )
    return violations
