"""CLI for the observability layer.

Usage::

    python -m repro.obs report metrics.txt              # saved /metrics scrape
    python -m repro.obs report --url http://127.0.0.1:9100/metrics
    python -m repro.obs report profile.json --slo thresholds.json  # exit 1 on burn
    python -m repro.obs trace flight_dump.jsonl -o trace.json   # Chrome trace
    python -m repro.obs smoke                            # the CI obs-smoke gate

``report`` summarizes the per-tenant SLO instruments
(``serve.slo.*``) out of any counters source and, with ``--slo``,
exits non-zero when a latency percentile or error budget is burned.
``trace`` converts the span records of a flight-recorder dump into a
Chrome ``trace_event`` file (open in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_report(args) -> int:
    from .report import run_report

    source = args.url if args.url else args.source
    if source is None:
        print("report: give a counters file/URL (or --url)", file=sys.stderr)
        return 2
    try:
        code, text = run_report(source, slo_path=args.slo, as_json=args.json)
    except (OSError, ValueError) as exc:
        print(f"report: cannot read {source!r}: {exc}", file=sys.stderr)
        return 2
    print(text)
    return code


def _cmd_trace(args) -> int:
    from .collector import write_chrome_trace
    from .tracing import Span

    spans = []
    skipped = 0
    try:
        with open(args.dump, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if isinstance(record, dict) and record.get("type") == "span":
                    spans.append(Span.from_dict(record))
    except OSError as exc:
        print(f"trace: cannot read {args.dump!r}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"trace: no span records in {args.dump!r}", file=sys.stderr)
        return 1
    try:
        write_chrome_trace(args.output, spans, meta={"source": args.dump})
    except ValueError as exc:
        print(f"trace: invalid trace produced: {exc}", file=sys.stderr)
        return 1
    print(f"{len(spans)} span(s) -> {args.output}" + (f" ({skipped} torn line(s) skipped)" if skipped else ""))
    return 0


def _cmd_smoke(args) -> int:
    from .smoke import run_obs_smoke

    return run_obs_smoke(artifacts_dir=args.artifacts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Serving observability: SLO reports, trace conversion, smoke gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rep = sub.add_parser("report", help="per-tenant SLO report (+ threshold gate)")
    p_rep.add_argument(
        "source",
        nargs="?",
        help="counters source: OpenMetrics text, profile JSON, registry JSON, or -",
    )
    p_rep.add_argument("--url", metavar="URL", help="scrape a live /metrics endpoint")
    p_rep.add_argument(
        "--slo",
        metavar="PATH",
        help="threshold JSON; exit 1 when any budget is burned",
    )
    p_rep.add_argument("--json", action="store_true", help="machine-readable output")
    p_rep.set_defaults(func=_cmd_report)

    p_tr = sub.add_parser(
        "trace", help="flight-recorder dump -> Chrome trace_event JSON"
    )
    p_tr.add_argument("dump", help="flight_dump.jsonl (or any recorder segment)")
    p_tr.add_argument(
        "-o", "--output", default="trace.json", help="output path (default trace.json)"
    )
    p_tr.set_defaults(func=_cmd_trace)

    p_smoke = sub.add_parser(
        "smoke",
        help="CI gate: traced chaos serve run, trace validation, overhead budget",
    )
    p_smoke.add_argument(
        "--artifacts",
        default="obs-artifacts",
        metavar="DIR",
        help="directory for the Chrome trace + flight dump artifacts",
    )
    p_smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # |head and friends — not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
