"""A set-associative cache-hierarchy model for the CPU baseline.

Table II's commentary (§VI-E) attributes the CPU's throughput decline
with ``|S|`` to capacity: "the limited cache size on processor (256KB L2
and 6MB L3) cannot hold all data in Q Table and rewards Table, the
performance is therefore bounded by off-chip data accesses".  This
module builds that explanation into a testable model:

* :class:`CacheLevel` — one set-associative, true-LRU cache;
* :class:`CacheHierarchy` — an inclusive L1/L2/L3 + DRAM stack with the
  paper's capacities;
* :func:`qlearning_trace_cycles` — a trace-driven estimate of the memory
  cycles one dict-based Q-Learning sample costs, by replaying the
  baseline's actual access pattern (the current row, the next state's
  row) over hash-scattered row addresses;
* :func:`modelled_cpu_throughput` — fixed interpreter cost per sample
  plus the trace-driven memory cycles, i.e. the curve Table II's CPU
  column follows.

The model is deliberately first-order (no prefetcher, no TLB): the
reproduction target is the *decline shape*, which is purely a working-
set-vs-capacity effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..envs.base import DenseMdp

#: Bytes per cache line.
LINE_BYTES = 64

#: Approximate bytes one CPython dict row (state key tuple + inner dict
#: of |A| floats) occupies, used to scatter rows across the address
#: space.  ~56 B dict header + per-entry overhead lands near 360 B for
#: 4 actions; we fold key objects in and round up.
ROW_BYTES = 416


class CacheLevel:
    """One set-associative cache with true-LRU replacement."""

    __slots__ = ("name", "size", "assoc", "hit_cycles", "sets", "_tags", "_lru", "_tick")

    def __init__(self, name: str, size: int, assoc: int, hit_cycles: int):
        if size % (assoc * LINE_BYTES) != 0:
            raise ValueError(f"{name}: size must be a multiple of assoc * line")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.hit_cycles = hit_cycles
        self.sets = size // (assoc * LINE_BYTES)
        self._tags = np.full((self.sets, assoc), -1, dtype=np.int64)
        self._lru = np.zeros((self.sets, assoc), dtype=np.int64)
        self._tick = 0

    def lookup(self, line: int) -> bool:
        """Access one line address; returns hit, updating LRU state and
        allocating on miss."""
        s = line % self.sets
        tag = line // self.sets
        self._tick += 1
        tags = self._tags[s]
        way = np.nonzero(tags == tag)[0]
        if way.size:
            self._lru[s, way[0]] = self._tick
            return True
        victim = int(np.argmin(self._lru[s]))
        tags[victim] = tag
        self._lru[s, victim] = self._tick
        return False

    def reset(self) -> None:
        self._tags.fill(-1)
        self._lru.fill(0)
        self._tick = 0


@dataclass
class HierarchyStats:
    """Access counters per level."""

    accesses: int = 0
    hits: dict = field(default_factory=dict)


class CacheHierarchy:
    """An inclusive multi-level hierarchy terminating in DRAM."""

    def __init__(self, levels: list[CacheLevel], dram_cycles: int = 220):
        if not levels:
            raise ValueError("need at least one level")
        self.levels = levels
        self.dram_cycles = dram_cycles
        self.stats = HierarchyStats(hits={lv.name: 0 for lv in levels})

    @classmethod
    def paper_i5(cls) -> "CacheHierarchy":
        """The §VI-E machine: 32 KB L1, 256 KB L2, 6 MB L3."""
        return cls(
            [
                CacheLevel("L1", 32 * 1024, 8, hit_cycles=4),
                CacheLevel("L2", 256 * 1024, 8, hit_cycles=12),
                CacheLevel("L3", 6 * 1024 * 1024, 12, hit_cycles=42),
            ]
        )

    def access(self, addr: int) -> int:
        """One load; returns its latency in cycles."""
        line = addr // LINE_BYTES
        self.stats.accesses += 1
        for level in self.levels:
            hit = level.lookup(line)
            if hit:
                self.stats.hits[level.name] += 1
                return level.hit_cycles
            # miss: continue to the next level (allocation already done,
            # keeping the hierarchy inclusive)
        return self.dram_cycles

    def reset(self) -> None:
        for level in self.levels:
            level.reset()
        self.stats = HierarchyStats(hits={lv.name: 0 for lv in self.levels})


def _row_addresses(num_states: int, seed: int = 12345) -> np.ndarray:
    """Hash-scattered base address per state's dict row (CPython dict
    rows have no spatial locality in state order)."""
    rng = np.random.default_rng(seed)
    heap_span = max(1, num_states) * ROW_BYTES * 2  # ~50 % heap occupancy
    return (rng.integers(0, heap_span // 16, size=num_states) * 16).astype(np.int64)


def qlearning_trace_cycles(
    mdp: DenseMdp,
    samples: int,
    *,
    hierarchy: CacheHierarchy | None = None,
    seed: int = 1,
) -> float:
    """Mean memory cycles per Q-Learning sample, trace-driven.

    Replays the dict baseline's access pattern — read/modify the current
    state's row (its lines), read the next state's whole row for the max
    — against the hierarchy, after a warm-up pass.
    """
    if hierarchy is None:
        hierarchy = CacheHierarchy.paper_i5()
    rng = np.random.default_rng(seed)
    n_states = mdp.num_states
    rows = _row_addresses(n_states)
    # The outer dict's hash-table slots and the per-state key/float
    # objects live at their own scattered addresses.
    slot_base = rng.integers(1 << 30)
    keys = _row_addresses(n_states, seed=seed + 77)
    lines_per_row = max(1, ROW_BYTES // LINE_BYTES)
    starts = mdp.start_states
    next_state = mdp.next_state
    terminal = mdp.terminal

    def touch_state(state: int, whole_row: bool) -> int:
        """One dict lookup: outer slot, key object, then the inner row —
        every line for the stage-2 max scan, two lines for the keyed
        read/write of the current pair."""
        cycles = hierarchy.access(slot_base + state * 16)
        cycles += hierarchy.access(int(keys[state]))
        base = int(rows[state])
        span = lines_per_row if whole_row else 2
        for i in range(span):
            cycles += hierarchy.access(base + i * LINE_BYTES)
        return cycles

    def run(n: int) -> float:
        total = 0
        state = int(starts[rng.integers(len(starts))])
        for _ in range(n):
            action = int(rng.integers(mdp.num_actions))
            nxt = int(next_state[state, action])
            total += touch_state(state, whole_row=False)
            total += touch_state(nxt, whole_row=True)
            if terminal[nxt]:
                state = int(starts[rng.integers(len(starts))])
            else:
                state = nxt
        return total / n

    run(min(samples, 6000))  # warm the hierarchy
    return run(samples)


def modelled_cpu_throughput(
    mdp: DenseMdp,
    *,
    samples: int = 20_000,
    clock_ghz: float = 2.3,
    interpreter_ns_per_sample: float = 7_000.0,
) -> float:
    """Samples/second the dict baseline should achieve on the §VI-E CPU.

    ``interpreter_ns_per_sample`` is the state-size-independent CPython
    cost (bytecode dispatch, object churn) — the single calibration
    constant; the memory term comes from the trace-driven hierarchy.
    """
    mem_cycles = qlearning_trace_cycles(mdp, samples)
    mem_ns = mem_cycles / clock_ghz
    return 1e9 / (interpreter_ns_per_sample + mem_ns)
