"""Software reference implementations.

* :class:`DictQLearning` / :class:`DictSarsa` — the paper's Table II CPU
  baseline (nested-dict pure Python).
* :class:`FloatQLearning` / :class:`FloatSarsa` — textbook float
  learners, the algorithmic gold reference for accuracy bounds.
"""

from .qlearning import DictQLearning, DictQLearningResult
from .sarsa import DictSarsa, DictSarsaResult
from .tabular import FloatQLearning, FloatSarsa, TabularResult

__all__ = [
    "DictQLearning",
    "DictQLearningResult",
    "DictSarsa",
    "DictSarsaResult",
    "FloatQLearning",
    "FloatSarsa",
    "TabularResult",
]
