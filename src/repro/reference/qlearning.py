"""The paper's CPU baseline: nested-dict Python Q-Learning (§VI-E).

Table II's comparison point is "a python program in which the Q values
are stored in a nested dictionary and are indexed by state coordinates
tuples and actions".  This module reimplements exactly that — state keys
are ``(x, y)`` coordinate tuples, actions index an inner dict, the update
is plain float arithmetic — so the throughput benches measure the same
artifact on today's hardware.

It is deliberately *not* optimised (no numpy, no arrays): the point of
Table II is what a straightforward scripted implementation achieves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..envs.base import DenseMdp, GridEncoding


@dataclass
class DictQLearningResult:
    """Outcome of a dict-based training run."""

    samples: int
    episodes: int


class DictQLearning:
    """Nested-dict tabular Q-Learning over a :class:`DenseMdp`.

    The environment is accessed through its dense tables (as the paper's
    CPU baseline would precompute the grid), but all learner state lives
    in ``dict[state_key][action] -> float``.  When the MDP carries a
    :class:`GridEncoding` (grid worlds), state keys are ``(x, y)`` tuples
    exactly as §VI-E describes; otherwise the integer state is the key.
    """

    def __init__(
        self,
        mdp: DenseMdp,
        *,
        alpha: float = 0.5,
        gamma: float = 0.9,
        seed: int = 1,
    ):
        self.mdp = mdp
        self.alpha = alpha
        self.gamma = gamma
        self.rng = random.Random(seed)
        enc = mdp.metadata.get("encoding")
        self._encode = (
            (lambda s: enc.decode(s)) if isinstance(enc, GridEncoding) else (lambda s: s)
        )
        self.q: dict = {}
        self._actions = list(range(mdp.num_actions))
        self.samples = 0
        self.episodes = 0
        self._state: int | None = None

    def _row(self, key):
        row = self.q.get(key)
        if row is None:
            row = {a: 0.0 for a in self._actions}
            self.q[key] = row
        return row

    def run(self, num_samples: int) -> DictQLearningResult:
        """Process ``num_samples`` updates (random behaviour policy,
        greedy update policy — the paper's Q-Learning)."""
        mdp = self.mdp
        alpha = self.alpha
        gamma = self.gamma
        rng = self.rng
        next_state = mdp.next_state
        rewards = mdp.rewards
        terminal = mdp.terminal
        starts = mdp.start_states
        n_start = len(starts)
        encode = self._encode
        actions = self._actions
        episodes0 = self.episodes

        state = self._state
        for _ in range(num_samples):
            if state is None:
                state = int(starts[rng.randrange(n_start)])
            action = rng.randrange(len(actions))
            s_key = encode(state)
            row = self._row(s_key)
            nxt = int(next_state[state, action])
            r = float(rewards[state, action])
            if terminal[nxt]:
                target = r
            else:
                n_row = self._row(encode(nxt))
                target = r + gamma * max(n_row.values())
            row[action] += alpha * (target - row[action])
            if terminal[nxt]:
                state = None
                self.episodes += 1
            else:
                state = nxt
        self._state = state
        self.samples += num_samples
        return DictQLearningResult(
            samples=num_samples, episodes=self.episodes - episodes0
        )

    def greedy_action(self, state: int) -> int:
        """Greedy action for a state under the learned dict table."""
        row = self._row(self._encode(state))
        return max(row, key=row.get)
