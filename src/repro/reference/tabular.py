"""Float numpy tabular Q-Learning / SARSA — the algorithmic gold reference.

These learners use exact float arithmetic, true row maxima (no Qmax
cache) and a numpy ``Generator`` for randomness.  They are *not* meant to
match the accelerator bit for bit; they are the textbook algorithms the
accelerator approximates, used to bound the fixed-point and Qmax-cache
error in tests and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..envs.base import DenseMdp


@dataclass
class TabularResult:
    """Outcome of a tabular float run."""

    samples: int
    episodes: int


class TabularLearner:
    """Shared machinery of the float Q-Learning / SARSA learners."""

    def __init__(
        self,
        mdp: DenseMdp,
        *,
        alpha: float = 0.5,
        gamma: float = 0.9,
        epsilon: float = 0.1,
        seed: int = 1,
        q_init: float = 0.0,
    ):
        self.mdp = mdp
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.q = np.full((mdp.num_states, mdp.num_actions), q_init, dtype=np.float64)
        self.samples = 0
        self.episodes = 0
        self._state: int | None = None

    def _start(self) -> int:
        starts = self.mdp.start_states
        return int(starts[self.rng.integers(len(starts))])

    def _egreedy(self, state: int) -> int:
        if self.rng.random() < self.epsilon:
            return int(self.rng.integers(self.mdp.num_actions))
        return int(np.argmax(self.q[state]))


class FloatQLearning(TabularLearner):
    """Textbook Q-Learning (random behaviour, true-max target)."""

    def run(self, num_samples: int) -> TabularResult:
        mdp = self.mdp
        q = self.q
        episodes0 = self.episodes
        state = self._state
        for _ in range(num_samples):
            if state is None:
                state = self._start()
            action = int(self.rng.integers(mdp.num_actions))
            nxt = int(mdp.next_state[state, action])
            r = float(mdp.rewards[state, action])
            target = r if mdp.terminal[nxt] else r + self.gamma * float(q[nxt].max())
            q[state, action] += self.alpha * (target - q[state, action])
            if mdp.terminal[nxt]:
                state = None
                self.episodes += 1
            else:
                state = nxt
        self._state = state
        self.samples += num_samples
        return TabularResult(num_samples, self.episodes - episodes0)


class FloatSarsa(TabularLearner):
    """Textbook SARSA (e-greedy behaviour = update policy)."""

    def __init__(self, *args, **kw):
        super().__init__(*args, **kw)
        self._action: int | None = None

    def run(self, num_samples: int) -> TabularResult:
        mdp = self.mdp
        q = self.q
        episodes0 = self.episodes
        state, action = self._state, self._action
        for _ in range(num_samples):
            if state is None:
                state = self._start()
                action = self._egreedy(state)
            nxt = int(mdp.next_state[state, action])
            r = float(mdp.rewards[state, action])
            if mdp.terminal[nxt]:
                target = r
                next_action = None
            else:
                next_action = self._egreedy(nxt)
                target = r + self.gamma * float(q[nxt, next_action])
            q[state, action] += self.alpha * (target - q[state, action])
            if mdp.terminal[nxt]:
                state, action = None, None
                self.episodes += 1
            else:
                state, action = nxt, next_action
        self._state, self._action = state, action
        self.samples += num_samples
        return TabularResult(num_samples, self.episodes - episodes0)
