"""Dict-based Python SARSA, the on-policy sibling of the CPU baseline.

Same deliberately plain construction as
:class:`repro.reference.qlearning.DictQLearning`: nested dicts, float
arithmetic, e-greedy behaviour = update policy.  Used for Table II-style
CPU measurements of SARSA and as an algorithmic cross-check in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..envs.base import DenseMdp, GridEncoding


@dataclass
class DictSarsaResult:
    """Outcome of a dict-based SARSA run."""

    samples: int
    episodes: int


class DictSarsa:
    """Nested-dict tabular SARSA over a :class:`DenseMdp`."""

    def __init__(
        self,
        mdp: DenseMdp,
        *,
        alpha: float = 0.5,
        gamma: float = 0.9,
        epsilon: float = 0.1,
        seed: int = 1,
    ):
        self.mdp = mdp
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.rng = random.Random(seed)
        enc = mdp.metadata.get("encoding")
        self._encode = (
            (lambda s: enc.decode(s)) if isinstance(enc, GridEncoding) else (lambda s: s)
        )
        self.q: dict = {}
        self._actions = list(range(mdp.num_actions))
        self.samples = 0
        self.episodes = 0
        self._state: int | None = None
        self._action: int | None = None

    def _row(self, key):
        row = self.q.get(key)
        if row is None:
            row = {a: 0.0 for a in self._actions}
            self.q[key] = row
        return row

    def _egreedy(self, state: int) -> int:
        if self.rng.random() < self.epsilon:
            return self.rng.randrange(len(self._actions))
        row = self._row(self._encode(state))
        return max(row, key=row.get)

    def run(self, num_samples: int) -> DictSarsaResult:
        """Process ``num_samples`` on-policy updates."""
        mdp = self.mdp
        alpha, gamma = self.alpha, self.gamma
        next_state = mdp.next_state
        rewards = mdp.rewards
        terminal = mdp.terminal
        starts = mdp.start_states
        n_start = len(starts)
        encode = self._encode
        episodes0 = self.episodes

        state, action = self._state, self._action
        for _ in range(num_samples):
            if state is None:
                state = int(starts[self.rng.randrange(n_start)])
                action = self._egreedy(state)
            row = self._row(encode(state))
            nxt = int(next_state[state, action])
            r = float(rewards[state, action])
            if terminal[nxt]:
                target = r
                next_action = None
            else:
                next_action = self._egreedy(nxt)
                target = r + gamma * self._row(encode(nxt))[next_action]
            row[action] += alpha * (target - row[action])
            if terminal[nxt]:
                state, action = None, None
                self.episodes += 1
            else:
                state, action = nxt, next_action
        self._state, self._action = state, action
        self.samples += num_samples
        return DictSarsaResult(samples=num_samples, episodes=self.episodes - episodes0)
