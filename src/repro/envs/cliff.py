"""Cliff walking: the canonical on-policy vs off-policy benchmark.

Sutton & Barto's cliff-walking task (the paper's ref. [1], §6.5) is the
textbook demonstration of the *behavioural* difference between the two
algorithms QTAccel implements: Q-Learning, learning the optimal greedy
values, walks the shortest path along the cliff edge; SARSA, learning
the value of its own ε-greedy behaviour, detours away from the edge
because exploratory steps near it are costly.  Reproducing that split on
the accelerator's fixed-point datapath is a sharp end-to-end validation
that both customisations implement their algorithms, not just their
throughput.

Layout (width x height, y grows downward):

* start at the bottom-left corner, goal at the bottom-right;
* the cells between them on the bottom row are the cliff: stepping in
  costs ``cliff_penalty`` and teleports the walker back to the start;
* every other move costs ``step_reward``; entering the goal ends the
  episode with ``goal_reward``.
"""

from __future__ import annotations

import numpy as np

from .base import DenseMdp, GridEncoding, action_vectors


def cliff_mdp(
    width: int = 16,
    height: int = 4,
    *,
    step_reward: float = -1.0,
    cliff_penalty: float = -100.0,
    goal_reward: float = 50.0,
) -> DenseMdp:
    """Build the cliff-walking task as a :class:`DenseMdp`.

    ``width`` and ``height`` must be powers of two (bit-packed
    addressing, like every other environment here).  Start states are
    restricted to the single bottom-left cell, as in the textbook task.
    """
    enc = GridEncoding(
        x_bits=max(1, (width - 1).bit_length()),
        y_bits=max(1, (height - 1).bit_length()),
    )
    if enc.width != width or enc.height != height:
        raise ValueError("width and height must be powers of two")
    if width < 3 or height < 2:
        raise ValueError("need at least 3x2 cells for a cliff")
    vectors = action_vectors(4)
    n = enc.num_states
    bottom = height - 1
    start = enc.encode(0, bottom)
    goal = enc.encode(width - 1, bottom)
    cliff_cells = {enc.encode(x, bottom) for x in range(1, width - 1)}

    next_state = np.empty((n, 4), dtype=np.int32)
    rewards = np.empty((n, 4), dtype=np.float64)
    for s in range(n):
        x, y = enc.decode(s)
        for a, (dx, dy) in enumerate(vectors):
            nx, ny = x + dx, y + dy
            if not (0 <= nx < width and 0 <= ny < height):
                next_state[s, a] = s  # bump the boundary, stay put
                rewards[s, a] = step_reward
                continue
            target = enc.encode(nx, ny)
            if target in cliff_cells:
                next_state[s, a] = start  # fall off, walk back
                rewards[s, a] = cliff_penalty
            elif target == goal:
                next_state[s, a] = goal
                rewards[s, a] = goal_reward
            else:
                next_state[s, a] = target
                rewards[s, a] = step_reward

    # Cliff cells are unreachable address holes (entry teleports).
    for c in cliff_cells:
        next_state[c, :] = c
        rewards[c, :] = 0.0
    terminal = np.zeros(n, dtype=bool)
    terminal[goal] = True

    return DenseMdp(
        next_state=next_state,
        rewards=rewards,
        terminal=terminal,
        start_states=np.array([start], dtype=np.int32),
        name=f"cliff{width}x{height}",
        metadata={
            "encoding": enc,
            "start": start,
            "goal": goal,
            "cliff": sorted(cliff_cells),
        },
    )


def edge_hug_fraction(mdp: DenseMdp, q: np.ndarray, *, max_steps: int = 4096) -> float:
    """Fraction of the greedy rollout spent on the row above the cliff.

    1.0 = the daring shortest path (Q-Learning's signature); lower =
    the safe detour (SARSA's).  Returns 0.0 if the rollout never reaches
    the goal.
    """
    enc: GridEncoding = mdp.metadata["encoding"]
    edge_row = enc.height - 2
    state = int(mdp.metadata["start"])
    visited = 0
    on_edge = 0
    for _ in range(max_steps):
        action = int(np.argmax(q[state]))
        nxt, _, term = mdp.step(state, action)
        if nxt == state:
            return 0.0  # stuck against a wall
        _, y = enc.decode(nxt)
        if not term:
            visited += 1
            on_edge += y == edge_row
        if term:
            return on_edge / max(1, visited)
        state = nxt
    return 0.0
