"""Environment abstractions and hardware-style state/action encodings.

QTAccel treats the environment as three artifacts (paper §IV-B):

* a **transition function** — a black-box combinational block mapping
  ``(state, action) -> next_state``;
* a **reward table** — ``|S| x |A|`` values preloaded into BRAM;
* a **start-state source** — a random draw at episode boundaries.

:class:`DenseMdp` is the canonical container for those artifacts: dense
numpy arrays indexed by integer state/action codes, which is simultaneously
what the hardware tables hold and what the vectorised functional simulator
wants.  Concrete environments (grid world, random MDPs, bandits) build one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def bits_for(n: int) -> int:
    """Number of address bits for ``n`` codes (``ceil(log2(n))``, min 1)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return max(1, (n - 1).bit_length())


@dataclass(frozen=True)
class GridEncoding:
    """The paper's bit-packed (x, y) state addressing (§VI-B).

    A state address is ``x`` in the most significant ``x_bits`` and ``y``
    in the least significant ``y_bits``; e.g. for 256 states the address is
    8 bits, 4 per coordinate.
    """

    x_bits: int
    y_bits: int

    @classmethod
    def square(cls, side: int) -> "GridEncoding":
        """Encoding for a ``side x side`` grid (side must be a power of 2)."""
        if side & (side - 1) != 0:
            raise ValueError(f"side must be a power of two, got {side}")
        b = bits_for(side)
        return cls(x_bits=b, y_bits=b)

    @property
    def width(self) -> int:
        return 1 << self.x_bits

    @property
    def height(self) -> int:
        return 1 << self.y_bits

    @property
    def num_states(self) -> int:
        return 1 << (self.x_bits + self.y_bits)

    def encode(self, x: int, y: int) -> int:
        """Pack coordinates into a state address."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height} grid")
        return (x << self.y_bits) | y

    def decode(self, state: int) -> tuple[int, int]:
        """Unpack a state address into (x, y)."""
        if not 0 <= state < self.num_states:
            raise ValueError(f"state {state} out of range")
        return state >> self.y_bits, state & (self.height - 1)


#: 2-bit action encoding (§VI-B): 00 left, 01 up, 10 right, 11 down.
#: Vectors are (dx, dy) with y growing downward.
ACTIONS_4: tuple[tuple[int, int], ...] = ((-1, 0), (0, -1), (1, 0), (0, 1))

#: 3-bit action encoding (§VI-B): 000 left, 001 top-left, 010 up,
#: 011 top-right, then clockwise: 100 right, 101 bottom-right, 110 down,
#: 111 bottom-left.
ACTIONS_8: tuple[tuple[int, int], ...] = (
    (-1, 0),
    (-1, -1),
    (0, -1),
    (1, -1),
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
)


def action_vectors(num_actions: int) -> tuple[tuple[int, int], ...]:
    """The paper's action encoding for 4 or 8 actions."""
    if num_actions == 4:
        return ACTIONS_4
    if num_actions == 8:
        return ACTIONS_8
    raise ValueError(f"the paper's grid encoding defines 4 or 8 actions, got {num_actions}")


@dataclass
class DenseMdp:
    """Dense tabular MDP: exactly the artifacts QTAccel keeps on chip.

    Attributes
    ----------
    next_state:
        ``(S, A)`` int32 array; the transition function as a lookup.
    rewards:
        ``(S, A)`` float64 array; the reward table (real values — they are
        quantised into the accelerator's fixed-point format at load time).
    terminal:
        ``(S,)`` bool array; episodes restart after transitioning *from* a
        terminal state (the bootstrap term is masked for entries into it).
    start_states:
        int32 array of legal episode start states (uniformly drawn).
    name:
        Label used in reports.
    """

    next_state: np.ndarray
    rewards: np.ndarray
    terminal: np.ndarray
    start_states: np.ndarray
    name: str = "mdp"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.next_state = np.ascontiguousarray(self.next_state, dtype=np.int32)
        self.rewards = np.ascontiguousarray(self.rewards, dtype=np.float64)
        self.terminal = np.ascontiguousarray(self.terminal, dtype=bool)
        self.start_states = np.ascontiguousarray(self.start_states, dtype=np.int32)
        s, a = self.next_state.shape
        if self.rewards.shape != (s, a):
            raise ValueError("rewards shape must match next_state")
        if self.terminal.shape != (s,):
            raise ValueError("terminal shape must be (S,)")
        if self.start_states.size == 0:
            raise ValueError("at least one start state is required")
        if (self.next_state < 0).any() or (self.next_state >= s).any():
            raise ValueError("next_state contains out-of-range states")
        if (self.start_states < 0).any() or (self.start_states >= s).any():
            raise ValueError("start_states out of range")

    @property
    def num_states(self) -> int:
        return int(self.next_state.shape[0])

    @property
    def num_actions(self) -> int:
        return int(self.next_state.shape[1])

    @property
    def num_pairs(self) -> int:
        return self.num_states * self.num_actions

    def step(self, state: int, action: int) -> tuple[int, float, bool]:
        """Software single step: ``(next_state, reward, next_is_terminal)``."""
        ns = int(self.next_state[state, action])
        return ns, float(self.rewards[state, action]), bool(self.terminal[ns])

    def optimal_q(self, gamma: float, tol: float = 1e-10, max_iter: int = 100_000) -> np.ndarray:
        """Exact Q* by value iteration (float), for convergence metrics.

        Terminal states absorb with zero continuation, matching the
        accelerator's bootstrap masking.
        """
        s, a = self.next_state.shape
        q = np.zeros((s, a))
        nonterm_next = (~self.terminal[self.next_state]).astype(np.float64)
        for _ in range(max_iter):
            v = q.max(axis=1)
            q_new = self.rewards + gamma * nonterm_next * v[self.next_state]
            q_new[self.terminal, :] = 0.0  # no value flows out of terminals
            if np.abs(q_new - q).max() < tol:
                return q_new
            q = q_new
        return q

    def greedy_policy(self, q: np.ndarray) -> np.ndarray:
        """Greedy action per state from a Q array."""
        return np.argmax(q, axis=1).astype(np.int32)
