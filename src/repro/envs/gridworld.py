"""The paper's grid-world robotics application (§VI-A, Fig. 2).

The environment is a grid of cells; the agent is a robot that starts in a
random free cell and must reach a goal cell while avoiding obstacles
(unreachable cells) and the grid boundary.  States are bit-packed (x, y)
coordinates, actions are the 2-bit/3-bit direction encodings of §VI-B.
Entering the goal yields the maximum reward (+255); bumping a wall or an
obstacle yields the negative reward (-255) and leaves the robot in place.

All Table I sizes are powers of four, i.e. square power-of-two grids, up
to 512 x 512 (``|S| = 262144``).  Construction is fully vectorised so the
largest case (2M state-action pairs) builds in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import DenseMdp, GridEncoding, action_vectors


@dataclass(frozen=True)
class GridWorldSpec:
    """Parameters of a grid world instance."""

    side: int
    num_actions: int = 4
    goal_reward: float = 255.0
    wall_penalty: float = -255.0
    step_reward: float = 0.0


class GridWorld:
    """A square grid world producing a :class:`DenseMdp`.

    Parameters
    ----------
    side:
        Grid side length; must be a power of two (bit-packed addressing).
    num_actions:
        4 (left/up/right/down) or 8 (adds diagonals), per §VI-B.
    goal:
        ``(x, y)`` of the goal cell.  Defaults to the bottom-right corner.
    obstacles:
        Iterable of ``(x, y)`` unreachable cells.
    rewards:
        ``goal_reward`` on transitions *into* the goal, ``wall_penalty`` on
        blocked moves (agent stays in place), ``step_reward`` otherwise.
    """

    def __init__(
        self,
        side: int,
        num_actions: int = 4,
        *,
        goal: tuple[int, int] | None = None,
        obstacles: "set[tuple[int, int]] | frozenset[tuple[int, int]] | None" = None,
        goal_reward: float = 255.0,
        wall_penalty: float = -255.0,
        step_reward: float = 0.0,
    ):
        self.encoding = GridEncoding.square(side)
        self.side = side
        self.num_actions = num_actions
        self.vectors = action_vectors(num_actions)
        self.goal = goal if goal is not None else (side - 1, side - 1)
        self.obstacles = frozenset(obstacles or ())
        if self.goal in self.obstacles:
            raise ValueError("goal cell cannot be an obstacle")
        for ox, oy in self.obstacles:
            if not (0 <= ox < side and 0 <= oy < side):
                raise ValueError(f"obstacle {(ox, oy)} outside grid")
        self.spec = GridWorldSpec(side, num_actions, goal_reward, wall_penalty, step_reward)
        self._mdp: DenseMdp | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, side: int, num_actions: int = 4, **kw) -> "GridWorld":
        """Obstacle-free grid with the goal at the bottom-right corner."""
        return cls(side, num_actions, **kw)

    @classmethod
    def random(
        cls,
        side: int,
        num_actions: int = 4,
        *,
        obstacle_density: float = 0.15,
        seed: int = 0,
        **kw,
    ) -> "GridWorld":
        """Random obstacle layout with a guaranteed-reachable goal.

        Obstacles are drawn i.i.d.; cells from which the goal is
        unreachable are simply excluded from the start-state set, matching
        how a map would be deployed in practice.
        """
        if not 0.0 <= obstacle_density < 1.0:
            raise ValueError("obstacle_density must be in [0, 1)")
        rng = np.random.default_rng(seed)
        goal = kw.pop("goal", (side - 1, side - 1))
        mask = rng.random((side, side)) < obstacle_density
        # Keep the goal and its neighbourhood clear so it has at least one
        # approach; a map whose free region still cannot reach the goal is
        # rejected by to_mdp().
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                gx, gy = goal[0] + dx, goal[1] + dy
                if 0 <= gx < side and 0 <= gy < side:
                    mask[gx, gy] = False
        obstacles = {(int(x), int(y)) for x, y in zip(*np.nonzero(mask))}
        return cls(side, num_actions, goal=goal, obstacles=obstacles, **kw)

    # ------------------------------------------------------------------ #
    # MDP construction (vectorised)
    # ------------------------------------------------------------------ #

    def to_mdp(self) -> DenseMdp:
        """Build (and cache) the dense MDP tables."""
        if self._mdp is not None:
            return self._mdp
        enc = self.encoding
        side = self.side
        n_states = enc.num_states
        states = np.arange(n_states, dtype=np.int64)
        sx = states >> enc.y_bits
        sy = states & (side - 1)

        obstacle = np.zeros(n_states, dtype=bool)
        for ox, oy in self.obstacles:
            obstacle[enc.encode(ox, oy)] = True
        goal_code = enc.encode(*self.goal)

        next_state = np.empty((n_states, self.num_actions), dtype=np.int32)
        rewards = np.empty((n_states, self.num_actions), dtype=np.float64)
        for a, (dx, dy) in enumerate(self.vectors):
            nx = sx + dx
            ny = sy + dy
            in_bounds = (nx >= 0) & (nx < side) & (ny >= 0) & (ny < side)
            target = np.where(in_bounds, (nx << enc.y_bits) | ny, states)
            blocked = ~in_bounds | obstacle[target]
            ns = np.where(blocked, states, target)
            r = np.full(n_states, self.spec.step_reward)
            r[blocked] = self.spec.wall_penalty
            r[(~blocked) & (ns == goal_code)] = self.spec.goal_reward
            next_state[:, a] = ns
            rewards[:, a] = r

        # Obstacle cells are unreachable address holes: self-loop, zero
        # reward, never started from.  The goal is terminal.
        next_state[obstacle, :] = states[obstacle, None].astype(np.int32)
        rewards[obstacle, :] = 0.0
        terminal = np.zeros(n_states, dtype=bool)
        terminal[goal_code] = True

        start_mask = ~obstacle & ~terminal & self._reaches_goal(next_state, goal_code)
        start_states = states[start_mask].astype(np.int32)
        if start_states.size == 0:
            raise ValueError("no free cell can reach the goal; regenerate the map")

        self._mdp = DenseMdp(
            next_state=next_state,
            rewards=rewards,
            terminal=terminal,
            start_states=start_states,
            name=f"grid{side}x{side}a{self.num_actions}",
            metadata={
                "goal": self.goal,
                "obstacles": len(self.obstacles),
                "encoding": enc,
                "spec": self.spec,
            },
        )
        return self._mdp

    def _reaches_goal(self, next_state: np.ndarray, goal_code: int) -> np.ndarray:
        """Mask of states with a path to the goal (reverse BFS).

        Obstacle-free grids are fully connected by construction, so the
        graph search only runs when there are obstacles.  The search uses
        ``scipy.sparse.csgraph`` on the reversed edge list, which keeps the
        512 x 512 case in the tens of milliseconds.
        """
        n = next_state.shape[0]
        if not self.obstacles:
            return np.ones(n, dtype=bool)
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import breadth_first_order

        src = np.repeat(np.arange(n, dtype=np.int64), next_state.shape[1])
        dst = next_state.ravel().astype(np.int64)
        moved = src != dst
        src, dst = src[moved], dst[moved]
        # Reverse graph: edge dst -> src, so BFS from the goal finds every
        # state that can reach it.
        rev = csr_matrix(
            (np.ones(src.size, dtype=np.int8), (dst, src)), shape=(n, n)
        )
        order = breadth_first_order(rev, goal_code, directed=True, return_predecessors=False)
        reach = np.zeros(n, dtype=bool)
        reach[order] = True
        return reach

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def render(self, policy: np.ndarray | None = None) -> str:
        """ASCII map; with a policy, free cells show their greedy arrow."""
        arrows4 = "<^>v"
        arrows8 = "<\\^/>/v\\"  # rough glyphs for the 8-action rose
        glyphs = arrows4 if self.num_actions == 4 else arrows8
        enc = self.encoding
        rows = []
        for y in range(self.side):
            row = []
            for x in range(self.side):
                if (x, y) == self.goal:
                    row.append("G")
                elif (x, y) in self.obstacles:
                    row.append("#")
                elif policy is not None:
                    row.append(glyphs[int(policy[enc.encode(x, y)])])
                else:
                    row.append(".")
            rows.append(" ".join(row))
        return "\n".join(rows)

    def __repr__(self) -> str:
        return (
            f"GridWorld(side={self.side}, actions={self.num_actions}, "
            f"goal={self.goal}, obstacles={len(self.obstacles)})"
        )
