"""Multi-armed bandit environments (paper §VII-B).

The paper positions QTAccel as a pathway to energy-efficient MAB
accelerators for 5G applications (distributed channel selection,
opportunistic spectrum access), with rewards drawn from per-arm
distributions — normal by default, synthesised on chip by summing LFSR
uniforms.  This module provides the arm models, the stateless bandit
environment, a stateful variant (each arm carries a small Markov state,
§VII-B "Stateful Bandits"), and a 5G channel-selection scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rtl.lfsr import Lfsr
from ..rtl.rng import CltNormal, UniformSource


@dataclass(frozen=True)
class NormalArm:
    """An arm paying ``Normal(mean, std)`` rewards."""

    mean: float
    std: float = 1.0

    def expected(self) -> float:
        return self.mean


@dataclass(frozen=True)
class BernoulliArm:
    """An arm paying 1 with probability ``p`` else 0."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")

    def expected(self) -> float:
        return self.p


class BanditEnv:
    """A stateless multi-armed bandit with LFSR-driven reward sampling.

    Normal arms draw through the CLT sampler (sum of LFSR uniforms) and
    Bernoulli arms through a threshold comparison — the two circuits §VII-B
    sketches.  One LFSR per arm keeps the streams independent and
    reproducible.
    """

    def __init__(self, arms, *, seed: int = 1, lfsr_width: int = 24, clt_k: int = 12):
        self.arms = tuple(arms)
        if not self.arms:
            raise ValueError("need at least one arm")
        self._samplers = []
        for i, arm in enumerate(self.arms):
            lfsr = Lfsr(lfsr_width, seed=seed + 0x1000 * (i + 1))
            if isinstance(arm, NormalArm):
                self._samplers.append(CltNormal(lfsr, k=clt_k, mean=arm.mean, std=arm.std))
            elif isinstance(arm, BernoulliArm):
                self._samplers.append(UniformSource(lfsr))
            else:
                raise TypeError(f"unsupported arm type {type(arm).__name__}")
        self.pulls = np.zeros(len(self.arms), dtype=np.int64)

    @property
    def num_arms(self) -> int:
        return len(self.arms)

    @property
    def best_arm(self) -> int:
        return int(np.argmax([a.expected() for a in self.arms]))

    @property
    def best_mean(self) -> float:
        return max(a.expected() for a in self.arms)

    def pull(self, arm: int) -> float:
        """Sample one reward from ``arm``."""
        self.pulls[arm] += 1
        sampler = self._samplers[arm]
        if isinstance(sampler, CltNormal):
            return sampler.sample()
        return 1.0 if sampler.threshold(self.arms[arm].p) else 0.0

    def regret_of(self, chosen: np.ndarray) -> np.ndarray:
        """Cumulative pseudo-regret of a sequence of chosen arms."""
        means = np.array([a.expected() for a in self.arms])
        inst = self.best_mean - means[np.asarray(chosen)]
        return np.cumsum(inst)


class StatefulBanditEnv:
    """Arms with internal two-state Markov chains (§VII-B stateful bandits).

    Each arm alternates between a "good" and a "bad" state with switching
    probability ``flip_p``; the paid mean depends on the arm state.  The
    joint state (the concatenation of per-arm bits, as the paper suggests)
    is exposed so a Q-table over ``2**M`` states can be trained.
    """

    def __init__(
        self,
        good_means,
        bad_means,
        *,
        std: float = 1.0,
        flip_p: float = 0.05,
        seed: int = 1,
        lfsr_width: int = 24,
    ):
        self.good_means = np.asarray(good_means, dtype=np.float64)
        self.bad_means = np.asarray(bad_means, dtype=np.float64)
        if self.good_means.shape != self.bad_means.shape:
            raise ValueError("good/bad mean arrays must match")
        self.num_arms = int(self.good_means.size)
        self.flip_p = flip_p
        self.std = std
        self._flip_rng = UniformSource(Lfsr(lfsr_width, seed=seed))
        self._noise = CltNormal(Lfsr(lfsr_width, seed=seed + 0xBEEF), std=std)
        self.arm_states = np.zeros(self.num_arms, dtype=np.int8)  # 0 good, 1 bad

    @property
    def joint_state(self) -> int:
        """Concatenated per-arm state bits (the Q-table row index)."""
        code = 0
        for i, s in enumerate(self.arm_states):
            code |= int(s) << i
        return code

    @property
    def num_joint_states(self) -> int:
        return 1 << self.num_arms

    def expected(self, arm: int) -> float:
        means = self.bad_means if self.arm_states[arm] else self.good_means
        return float(means[arm])

    def pull(self, arm: int) -> float:
        """Sample a reward, then let every arm's chain evolve one step."""
        reward = self.expected(arm) + self._noise.sample()
        for i in range(self.num_arms):
            if self._flip_rng.threshold(self.flip_p):
                self.arm_states[i] ^= 1
        return reward


def channel_selection_env(
    num_channels: int = 8, *, snr_db_range: tuple[float, float] = (2.0, 20.0), seed: int = 7
) -> BanditEnv:
    """The 5G distributed channel-selection scenario of §VII-B.

    Each channel is an arm whose mean reward is the Shannon rate for an
    SNR drawn from ``snr_db_range``; fast fading appears as normal noise.
    """
    rng = np.random.default_rng(seed)
    snrs_db = rng.uniform(*snr_db_range, size=num_channels)
    rates = np.log2(1.0 + 10.0 ** (snrs_db / 10.0))  # bits/s/Hz
    arms = [NormalArm(mean=float(r), std=0.5) for r in rates]
    return BanditEnv(arms, seed=seed)
