"""Multi-agent world wrappers (paper §VII-A, Figs. 8 and 9).

Two deployment modes:

* **State-sharing learners** — two agents explore the *same* environment
  and update a shared Q-table through the two ports of dual-port BRAM.
  No partitioning is needed; collisions on simultaneous same-address
  writes are arbitrated by overwrite.
* **Independent learners** — N agents each own a sub-environment and a
  private memory region.  :func:`partition_grid` splits a grid world into
  quadrant tiles, each a self-contained :class:`DenseMdp` with its own
  goal, exactly the "multiple rovers, each responsible for a subset of
  the state space" deployment the paper describes.
"""

from __future__ import annotations

import math

import numpy as np

from .base import DenseMdp
from .gridworld import GridWorld


def partition_grid(
    side: int,
    num_parts: int,
    num_actions: int = 4,
    *,
    obstacle_density: float = 0.0,
    seed: int = 0,
) -> list[DenseMdp]:
    """Split a ``side x side`` world into ``num_parts`` square tiles.

    ``num_parts`` must be a power of four (tiles stay square with
    power-of-two sides, preserving the bit-packed addressing inside each
    tile).  Each tile gets its own goal in its bottom-right corner and an
    independent obstacle draw.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    k = round(math.sqrt(num_parts))
    if k * k != num_parts or (k & (k - 1)) != 0:
        raise ValueError(f"num_parts must be a power of four, got {num_parts}")
    tile_side = side // k
    if tile_side * k != side or tile_side < 2:
        raise ValueError(f"cannot tile side={side} into {num_parts} parts")
    mdps = []
    for i in range(num_parts):
        if obstacle_density > 0.0:
            world = GridWorld.random(
                tile_side,
                num_actions,
                obstacle_density=obstacle_density,
                seed=seed + i,
            )
        else:
            world = GridWorld.empty(tile_side, num_actions)
        mdp = world.to_mdp()
        mdp.name = f"tile{i}_{mdp.name}"
        mdps.append(mdp)
    return mdps


def shared_world(side: int, num_actions: int = 4, **kw) -> DenseMdp:
    """A single world for the two state-sharing learners of Fig. 8."""
    return GridWorld.empty(side, num_actions, **kw).to_mdp()


def collision_probability(num_states: int, samples: int = 0) -> float:
    """Expected per-cycle probability that two independent uniformly
    exploring agents occupy the same state (the §VII-A collision-rate
    argument: rare for any realistically sized world)."""
    if num_states <= 0:
        raise ValueError("num_states must be positive")
    return 1.0 / num_states


def measure_collisions(states_a: np.ndarray, states_b: np.ndarray) -> float:
    """Observed fraction of cycles two agent trajectories collide."""
    a = np.asarray(states_a)
    b = np.asarray(states_b)
    if a.shape != b.shape:
        raise ValueError("trajectories must have equal length")
    if a.size == 0:
        return 0.0
    return float(np.mean(a == b))
