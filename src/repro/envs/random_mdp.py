"""Synthetic dense MDPs for property-based tests and ablations.

Random MDPs exercise the accelerator on transition structure a grid world
never produces (arbitrary fan-in, dense revisit patterns, many terminals),
which is exactly what the hazard-forwarding logic must survive.  High
revisit probability makes back-to-back updates of the same state-action
pair likely, stressing every forwarding path.
"""

from __future__ import annotations

import numpy as np

from .base import DenseMdp


def random_dense_mdp(
    num_states: int,
    num_actions: int,
    *,
    seed: int = 0,
    reward_scale: float = 255.0,
    terminal_fraction: float = 0.05,
    self_loop_bias: float = 0.0,
    name: str | None = None,
) -> DenseMdp:
    """A uniformly random tabular MDP.

    Parameters
    ----------
    reward_scale:
        Rewards are uniform on ``[-reward_scale, reward_scale]`` (matching
        the paper's +/-255 dynamic range by default).
    terminal_fraction:
        Fraction of states marked terminal (at least the start states stay
        non-terminal).
    self_loop_bias:
        Probability mass moved onto self-transitions, to raise the rate of
        consecutive same-pair updates (hazard stress knob).
    """
    if num_states < 2:
        raise ValueError("need at least 2 states")
    if not 0.0 <= terminal_fraction < 1.0:
        raise ValueError("terminal_fraction must be in [0, 1)")
    if not 0.0 <= self_loop_bias <= 1.0:
        raise ValueError("self_loop_bias must be in [0, 1]")
    rng = np.random.default_rng(seed)
    next_state = rng.integers(0, num_states, size=(num_states, num_actions), dtype=np.int32)
    if self_loop_bias > 0.0:
        loop = rng.random((num_states, num_actions)) < self_loop_bias
        next_state = np.where(loop, np.arange(num_states, dtype=np.int32)[:, None], next_state)
    rewards = rng.uniform(-reward_scale, reward_scale, size=(num_states, num_actions))

    terminal = np.zeros(num_states, dtype=bool)
    n_term = int(terminal_fraction * num_states)
    if n_term:
        terminal[rng.choice(num_states, size=n_term, replace=False)] = True
    start_states = np.nonzero(~terminal)[0].astype(np.int32)

    return DenseMdp(
        next_state=next_state,
        rewards=rewards,
        terminal=terminal,
        start_states=start_states,
        name=name or f"random{num_states}x{num_actions}s{seed}",
        metadata={"seed": seed, "self_loop_bias": self_loop_bias},
    )


def chain_mdp(length: int, num_actions: int = 2, *, reward: float = 255.0) -> DenseMdp:
    """A deterministic corridor: action 0 advances, others stay in place.

    The optimal policy and Q* are known in closed form, which makes this
    the sharpest convergence oracle in the test suite.
    """
    if length < 2:
        raise ValueError("length must be >= 2")
    if num_actions < 2:
        raise ValueError("need at least 2 actions")
    states = np.arange(length, dtype=np.int32)
    next_state = np.tile(states[:, None], (1, num_actions)).astype(np.int32)
    next_state[:-1, 0] = states[:-1] + 1
    rewards = np.zeros((length, num_actions))
    rewards[length - 2, 0] = reward  # the step into the terminal end
    terminal = np.zeros(length, dtype=bool)
    terminal[length - 1] = True
    start_states = states[:-1]
    return DenseMdp(
        next_state=next_state,
        rewards=rewards,
        terminal=terminal,
        start_states=start_states,
        name=f"chain{length}",
        metadata={"reward": reward},
    )
