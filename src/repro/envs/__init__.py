"""Environments: grid worlds, synthetic MDPs, bandit problems, and
multi-agent world wrappers.

Every environment reduces to a :class:`~repro.envs.base.DenseMdp` — the
transition-function / reward-table / start-state triple QTAccel keeps on
chip — except bandits, which have their own reward-sampling interface
matching the paper's §VII-B customisation.
"""

from .cliff import cliff_mdp, edge_hug_fraction
from .base import ACTIONS_4, ACTIONS_8, DenseMdp, GridEncoding, action_vectors, bits_for
from .bandits import (
    BanditEnv,
    BernoulliArm,
    NormalArm,
    StatefulBanditEnv,
    channel_selection_env,
)
from .gridworld import GridWorld, GridWorldSpec
from .multi_agent import (
    collision_probability,
    measure_collisions,
    partition_grid,
    shared_world,
)
from .random_mdp import chain_mdp, random_dense_mdp

__all__ = [
    "DenseMdp",
    "GridEncoding",
    "ACTIONS_4",
    "ACTIONS_8",
    "action_vectors",
    "bits_for",
    "cliff_mdp",
    "edge_hug_fraction",
    "GridWorld",
    "GridWorldSpec",
    "random_dense_mdp",
    "chain_mdp",
    "BanditEnv",
    "NormalArm",
    "BernoulliArm",
    "StatefulBanditEnv",
    "channel_selection_env",
    "partition_grid",
    "shared_world",
    "collision_probability",
    "measure_collisions",
]
